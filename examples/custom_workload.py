#!/usr/bin/env python3
"""Writing your own persistent workload against the public API.

Implements a persistent append-only log (the building block of most
NVM-native storage engines) directly with the Program/Op API, runs it
under every barrier design, and crash-checks it.  Shows the three things
a workload author controls:

1. the data layout (via :class:`~repro.workloads.heap.PersistentHeap`),
2. the persist-barrier discipline (record must be durable before the
   commit pointer exposes it -- the same pattern as Figure 10),
3. the transaction boundaries the throughput metric counts.

Run:  python examples/custom_workload.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.recovery import check_epoch_order, run_with_crash
from repro.workloads.base import Program, store_span
from repro.workloads.heap import PersistentHeap

RECORD_SIZE = 256
RECORDS = 120


def build_log_program(thread_id: int, line_size: int = 64) -> Program:
    """An append-only log: write record, barrier, bump commit pointer,
    barrier."""
    heap = PersistentHeap(0x1000_0000 + thread_id * 0x0100_0000,
                          1 << 20, line_size)
    commit_ptr = heap.alloc(line_size)
    region = heap.alloc(RECORDS * RECORD_SIZE)
    program = Program()
    for i in range(RECORDS):
        record = region + i * RECORD_SIZE
        program.extend(store_span(record, RECORD_SIZE, line_size,
                                  value=("rec", thread_id, i)))
        program.barrier()                               # record durable...
        program.store(commit_ptr, 8, value=("commit", thread_id, i + 1))
        program.barrier()                               # ...before visible
        program.txn_mark()
        program.compute(80)
    return program


def main() -> None:
    print(f"append-only log: {RECORDS} records x {RECORD_SIZE}B, "
          "2 threads\n")
    baseline = None
    for design in (BarrierDesign.LB, BarrierDesign.LB_PP):
        config = MachineConfig.tiny(
            persistency=PersistencyModel.BEP, barrier_design=design,
        )
        machine = Multicore(config)
        result = machine.run([build_log_program(t) for t in range(2)])
        if baseline is None:
            baseline = result.throughput
        print(f"{design.value:5s} throughput={result.throughput:.3f} "
              f"txn/kcycle ({result.throughput / baseline:.2f}x)  "
              f"conflicting epochs={result.conflict_epoch_pct:.0f}%")

    print("\ncrash-checking the log under LB++ ...")
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
    )
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True)
    outcome = run_with_crash(
        machine, [build_log_program(t) for t in range(2)],
        crash_cycle=40_000,
    )
    checked = check_epoch_order(outcome)
    # Recover: the commit pointer must never exceed the durable records.
    for thread_id in range(2):
        heap_base = 0x1000_0000 + thread_id * 0x0100_0000
        commit_line = heap_base
        commit = outcome.image.values.get(commit_line, {}).get(0)
        committed = commit[2] if commit else 0
        region = heap_base + 64  # first alloc after the pointer line
        for i in range(committed):
            record = region + i * RECORD_SIZE
            for offset in range(0, RECORD_SIZE, 64):
                values = outcome.image.values.get(record + offset)
                assert values and all(
                    v == ("rec", thread_id, i) for v in values.values()
                ), f"record {i} torn!"
        print(f"  thread {thread_id}: {committed} committed records, "
              "all durable and intact")
    print(f"  ({checked} persists verified in epoch order)")


if __name__ == "__main__":
    main()
