#!/usr/bin/env python3
"""BSP in bulk mode: hardware epochs, undo logging, checkpoints.

Runs an unmodified multithreaded workload (the ssca2 stand-in) under
buffered strict persistency: the hardware persistence engine closes an
epoch every N stores, checkpoints the register file, and undo-logs the
first modification of every line so a crash can roll back partially
persisted epochs (section 5.2 of the paper).

The demo shows:

* the cost ladder NP -> LB++NOLOG -> LB++ -> LB (what logging and lazy
  flushing each cost);
* that at a random crash point every partially persisted epoch is
  covered by durable undo-log entries (epoch atomicity).

Run:  python examples/bsp_checkpointing.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.recovery import (
    check_bsp_recoverable,
    check_epoch_order,
    run_with_crash,
)
from repro.workloads.apps import app_programs

THREADS = 4
MEM_OPS = 4_000
EPOCH_STORES = 300


def machine_config(design, undo_logging=True,
                   persistency=PersistencyModel.BSP):
    return MachineConfig.small(
        num_cores=THREADS,
        persistency=persistency,
        barrier_design=design,
        bsp_epoch_stores=EPOCH_STORES,
        undo_logging=undo_logging,
    )


def timed_run(design, undo_logging=True,
              persistency=PersistencyModel.BSP):
    machine = Multicore(machine_config(design, undo_logging, persistency))
    programs = app_programs("ssca2", THREADS, MEM_OPS, seed=11)
    return machine.run(programs)


def main() -> None:
    print(f"ssca2 stand-in, {THREADS} threads, hardware epochs of "
          f"{EPOCH_STORES} stores\n")
    baseline = timed_run(BarrierDesign.LB,
                         persistency=PersistencyModel.NP)
    rows = [
        ("NP (no persistence)", baseline),
        ("LB++ no logging", timed_run(BarrierDesign.LB_PP,
                                      undo_logging=False)),
        ("LB++ (full BSP)", timed_run(BarrierDesign.LB_PP)),
        ("LB   (full BSP)", timed_run(BarrierDesign.LB)),
    ]
    for name, result in rows:
        nvram = result.stats.domain("nvram")
        print(f"{name:20s} {result.cycles_durable:>9} cycles "
              f"({result.cycles_durable / baseline.cycles_durable:4.2f}x)  "
              f"epochs={result.total_epochs:<4d} "
              f"writes: data={nvram.get('writes_data')} "
              f"log={nvram.get('writes_log')} "
              f"ckpt={nvram.get('writes_checkpoint')}")

    from repro.harness.analysis import overhead_breakdown
    print("\nWhere LB's overhead goes:")
    print(overhead_breakdown(rows[3][1], baseline).describe())

    print("\nCrashing full-BSP runs mid-flight...")
    for crash_cycle in range(15_000, 160_000, 11_000):
        machine = Multicore(
            machine_config(BarrierDesign.LB_PP),
            track_values=True, track_persist_order=True,
            keep_epoch_log=True,
        )
        outcome = run_with_crash(
            machine, app_programs("ssca2", THREADS, MEM_OPS, seed=11),
            crash_cycle=crash_cycle,
        )
        checked = check_epoch_order(outcome)
        covered = check_bsp_recoverable(outcome)
        print(f"  crash @ {outcome.crash_cycle:>7}: {checked:4d} persists "
              f"in valid epoch order; {covered:3d} lines of torn epochs "
              "covered by durable undo-log entries")
    print("Recovery can roll every torn epoch back and restart from the "
          "last checkpoint.")


if __name__ == "__main__":
    main()
