#!/usr/bin/env python3
"""Debugging persistence behaviour with the tracer.

Attaches a :class:`~repro.sim.trace.Tracer` to a machine and replays the
paper's Figure 3 scenarios, printing the exact sequence of conflicts,
splits, IDT edges, flushes and persists the hardware would see.

Run:  python examples/trace_debugging.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.sim.trace import Tracer
from repro.workloads.base import Program


def run_scenario(title: str, programs, design: BarrierDesign) -> None:
    print(f"=== {title} (design: {design.value}) ===")
    tracer = Tracer()
    config = MachineConfig.tiny(
        barrier_design=design, persistency=PersistencyModel.BEP,
    )
    machine = Multicore(config, tracer=tracer)
    machine.run(programs)
    print(tracer.dump())
    print()


def figure_3a_inter_thread(design: BarrierDesign):
    """T0: St X, St Y | barrier | Ld Y', St C, St D  -- where Y' was
    written by T1's unpersisted epoch (Figure 3a, adapted)."""
    t0 = Program()
    t0.store(0x1000, 8).store(0x1040, 8).barrier()          # E00
    t0.compute(2500)
    t0.load(0x2040)                                          # Y: T1's line
    t0.store(0x1080, 8).store(0x10C0, 8).barrier()           # E01
    t1 = Program()
    t1.store(0x2000, 8).barrier()                            # E10
    t1.store(0x2040, 8).barrier()                            # E11 writes Y
    return [t0, t1]


def figure_3b_intra_thread():
    """T0: St A, St B | barrier | St B', St C | barrier | Ld A, St B
    (Figure 3b): the second St B conflicts with E00."""
    t0 = Program()
    t0.store(0x1000, 8).store(0x1040, 8).barrier()           # E00: A, B
    t0.store(0x2000, 8).barrier()                            # E01
    t0.load(0x1000)                                          # Ld A: no conflict
    t0.store(0x1040, 8).barrier()                            # St B: conflict!
    return [t0]


def figure_5_deadlock_scenario(design: BarrierDesign):
    """Mutual reads of each other's ongoing epochs (Figure 5): the split
    mechanism keeps the dependence graph acyclic."""
    ta = Program().store(0x1000, 8).compute(1200).load(0x2000)
    ta.store(0x3000, 8).barrier()
    tb = Program().store(0x2000, 8).compute(1200).load(0x1000)
    tb.store(0x4000, 8).barrier()
    return [ta, tb]


def main() -> None:
    run_scenario("Figure 3b: intra-thread conflict",
                 figure_3b_intra_thread(), BarrierDesign.LB)
    run_scenario("Figure 3a: inter-thread conflict, plain LB",
                 figure_3a_inter_thread(BarrierDesign.LB),
                 BarrierDesign.LB)
    run_scenario("Figure 3a: inter-thread conflict, with IDT",
                 figure_3a_inter_thread(BarrierDesign.LB_IDT),
                 BarrierDesign.LB_IDT)
    run_scenario("Figure 5: circular dependence avoided by splitting",
                 figure_5_deadlock_scenario(BarrierDesign.LB_IDT),
                 BarrierDesign.LB_IDT)


if __name__ == "__main__":
    main()
