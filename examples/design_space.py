#!/usr/bin/env python3
"""Design-space exploration with the public API.

Sweeps three hardware parameters the paper fixes (section 4.3) and shows
their sensitivity on the queue microbenchmark under LB++:

* in-flight epoch window (the 3-bit epoch-ID limit of 8),
* IDT register pairs per epoch (4 in the paper),
* NVRAM write bandwidth (memory-controller occupancy).

Run:  python examples/design_space.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.workloads.micro import make_benchmark

THREADS = 4
TRANSACTIONS = 80


def throughput(**overrides) -> float:
    config = MachineConfig.small(
        num_cores=THREADS,
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
        **overrides,
    )
    machine = Multicore(config)
    programs = [
        make_benchmark("queue", thread_id=tid, seed=3,
                       line_size=config.line_size).ops(TRANSACTIONS)
        for tid in range(THREADS)
    ]
    return machine.run(programs).throughput


def sweep(title: str, param: str, values) -> None:
    print(title)
    base = None
    for value in values:
        thpt = throughput(**{param: value})
        if base is None:
            base = thpt
        print(f"  {param}={value:<6} throughput={thpt:7.3f} txn/kcycle "
              f"({thpt / base:4.2f}x)")
    print()


def main() -> None:
    sweep(
        "In-flight epoch window (paper: 8 = 3-bit epoch IDs). Too small a "
        "window\nstalls the core waiting for the oldest epoch to persist:",
        "max_inflight_epochs", [2, 4, 8, 16],
    )
    sweep(
        "IDT register pairs per epoch (paper: 4). Overflow falls back to "
        "online\nflushes:",
        "idt_registers_per_epoch", [1, 2, 4, 8],
    )
    sweep(
        "NVRAM write occupancy per controller (cycles/line; lower = more "
        "write\nbandwidth). Persist bandwidth bounds every buffered design:",
        "mc_write_occupancy", [96, 48, 24, 12],
    )


if __name__ == "__main__":
    main()
