#!/usr/bin/env python3
"""Quickstart: run a persistent hash table under two persist barriers.

Builds an 8-core machine with NVRAM (Table 1 of the paper, scaled to
laptop size), runs the `hash` microbenchmark on every core under
buffered epoch persistency, and compares the state-of-the-art lazy
barrier (LB) against the paper's LB++ (IDT + proactive flushing).

Run:  python examples/quickstart.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.workloads.micro import HashTableWorkload

TRANSACTIONS_PER_THREAD = 100


def run(design: BarrierDesign):
    config = MachineConfig.small(
        persistency=PersistencyModel.BEP,
        barrier_design=design,
    )
    machine = Multicore(config)
    programs = [
        HashTableWorkload(thread_id=tid, seed=42,
                          line_size=config.line_size).ops(
            TRANSACTIONS_PER_THREAD
        )
        for tid in range(config.num_cores)
    ]
    return machine.run(programs)


def main() -> None:
    print(f"{'design':8s} {'txn/kcycle':>11s} {'conflict %':>11s} "
          f"{'intra':>6s} {'inter':>6s} {'NVRAM writes':>13s}")
    baseline = None
    for design in (BarrierDesign.LB, BarrierDesign.LB_IDT,
                   BarrierDesign.LB_PF, BarrierDesign.LB_PP):
        result = run(design)
        if baseline is None:
            baseline = result.throughput
        speedup = result.throughput / baseline
        print(f"{design.value:8s} {result.throughput:11.3f} "
              f"{result.conflict_epoch_pct:10.1f}% "
              f"{result.intra_conflicts:6d} {result.inter_conflicts:6d} "
              f"{result.nvram_writes:13d}   ({speedup:.2f}x vs LB)")
    print("\nLB++ wins by keeping epoch persists out of the critical "
          "path: proactive\nflushing shrinks the window in which a hot "
          "line's old epoch is still dirty,\nand IDT turns inter-thread "
          "conflicts into background ordering edges.")


if __name__ == "__main__":
    main()
