#!/usr/bin/env python3
"""Crash-consistency demo: the Figure 10 queue under power failure.

Runs the copy-while-locked queue (insert = barrier; copy entry; barrier;
bump head; barrier), crashes the machine at a series of arbitrary
cycles, and inspects what actually reached NVRAM:

* the epoch-order checker proves no line ever persisted ahead of its
  happens-before predecessors;
* the queue checker proves the durable head cursor never exposes a
  torn entry -- an insert is either invisible or complete after the
  crash, exactly the guarantee the paper's barrier placement provides;
* as a negative control, the same durable image with a forged head
  cursor is shown to *fail* the check, so the oracle is real.

Run:  python examples/crash_recovery.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.recovery import (
    ConsistencyViolation,
    check_epoch_order,
    check_queue_recoverable,
    run_with_crash,
)
from repro.workloads.micro import QueueWorkload

CRASH_POINTS = [2_000, 10_000, 40_000, 120_000]


def crash_once(crash_cycle: int):
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
    )
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True)
    queues = [QueueWorkload(thread_id=t, seed=7) for t in range(2)]
    outcome = run_with_crash(machine, [q.ops(80) for q in queues],
                             crash_cycle)
    persists = check_epoch_order(outcome)
    heads = [check_queue_recoverable(outcome, q) for q in queues]
    return outcome, persists, heads, queues


def main() -> None:
    print("Crashing the queue workload at arbitrary cycles...\n")
    last = None
    for crash_cycle in CRASH_POINTS:
        outcome, persists, heads, queues = crash_once(crash_cycle)
        print(f"crash @ {outcome.crash_cycle:>7} cycles: "
              f"{persists:4d} data persists checked, "
              f"durable queue heads = {heads}  -> consistent")
        last = (outcome, queues)

    # Negative control: forge the durable head one slot past reality.
    outcome, queues = last
    queue = queues[0]
    head_line = queue.head_addr & ~(queue.line_size - 1)
    values = outcome.image.values.setdefault(head_line, {})
    offset = queue.head_addr - head_line
    _tag, tid, count = values.get(offset, ("head", 0, 0))
    values[offset] = ("head", tid, count + 5)
    print("\nNegative control: forging a durable head 5 entries ahead...")
    try:
        check_queue_recoverable(outcome, queue)
    except ConsistencyViolation as exc:
        print(f"  checker caught it: {exc}")
    else:
        raise SystemExit("checker failed to detect the forged head!")


if __name__ == "__main__":
    main()
