#!/usr/bin/env python3
"""Strand persistency: independent persist streams within one thread.

The paper builds on Pelley et al.'s persistency models and evaluates
strict and epoch persistency; this example exercises the third model --
*strand persistency* -- which this library implements as an extension.
Epochs of different strands of one thread carry no mutual ordering, so
work that is logically independent no longer shares a persist fate.

The workload where this matters is *asymmetric*: a thread maintains a
small hot structure (a persistent counter updated every transaction)
alongside a bulky one (a log that appends a 1KB record every other
transaction).  With a single strand, every counter update that
conflicts with its own previous epoch must first flush the big log
epochs sitting earlier in the thread's epoch order -- the bulk work is
in the hot path's critical path.  With the log in its own strand, the
counter's conflicts flush only counter epochs: under lazy LB the
conflict-stall cycles drop by ~2x.  (Under LB++ the strands change
nothing -- proactive flushing already persists each epoch eagerly, so
there is no cross-structure backlog to decouple.  Strands and PF are
alternative answers to the same coupling.)  How much of the stall
reduction reaches end-to-end throughput depends on how much of it the
write buffer was hiding.

Run:  python examples/strand_persistency.py
"""

from repro import BarrierDesign, MachineConfig, Multicore, PersistencyModel
from repro.recovery import check_epoch_order, run_with_crash
from repro.workloads.base import Program, store_span

COUNTER = 0x1000_0000
LOG_BASE = 0x1800_0000
LOG_RECORD = 1024            # 16 lines per append
TXNS = 100


def build_program(use_strands: bool) -> Program:
    p = Program()
    appended = 0
    for i in range(TXNS):
        if i % 2 == 0:
            # Bulk work: append a big record to the log.
            if use_strands:
                p.strand(1)
            p.extend(store_span(LOG_BASE + appended * LOG_RECORD,
                                LOG_RECORD, 64, value=("rec", appended)))
            p.barrier()
            appended += 1
        # Hot work: bump the persistent counter (conflicts with its own
        # previous epoch almost every time under LB).
        if use_strands:
            p.strand(0)
        p.store(COUNTER, 8, value=("count", i + 1))
        p.barrier()
        p.txn_mark()
        p.compute(20)
    return p


def run(use_strands: bool, design: BarrierDesign):
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP, barrier_design=design,
    )
    machine = Multicore(config)
    return machine.run([build_program(use_strands)], drain=False)


def main() -> None:
    print(f"one thread: hot counter updates + 1KB log appends "
          f"({TXNS} txns)\n")
    for design in (BarrierDesign.LB, BarrierDesign.LB_PP):
        base = run(False, design)
        stranded = run(True, design)
        speedup = stranded.throughput / base.throughput
        print(f"{design.value:5s}  one strand: {base.throughput:5.3f} "
              f"txn/kcycle   two strands: {stranded.throughput:5.3f} "
              f"-> {speedup:4.2f}x "
              f"(conflict stalls "
              f"{base.stats.domain('conflicts').total('online_stall_cycles'):>7.0f}"
              f" -> "
              f"{stranded.stats.domain('conflicts').total('online_stall_cycles'):>7.0f}"
              " cycles)")

    print("\ncrash-checking the two-strand run (strand-aware "
          "happens-before)...")
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
    )
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True)
    outcome = run_with_crash(machine, [build_program(True)],
                             crash_cycle=30_000)
    checked = check_epoch_order(outcome)
    counter = outcome.image.values.get(COUNTER, {}).get(0)
    print(f"  crash @ {outcome.crash_cycle}: {checked} persists verified; "
          f"durable counter = {counter}")


if __name__ == "__main__":
    main()
