"""Processor models: cores and their write buffers."""

from repro.cpu.processor import Core, WriteBufferEntry

__all__ = ["Core", "WriteBufferEntry"]
