"""The core model: an out-of-order core abstracted to its memory stream.

Persist-barrier behaviour is governed by the cache/epoch machinery, not
by pipeline microarchitecture, so cores are modeled at memory-operation
granularity:

* loads block until data returns (with store-buffer forwarding);
* stores retire into a finite FIFO write buffer (Table 1: 32 entries)
  that drains through the L1 in the background -- the stand-in for the
  OoO window's ability to hide store latency;
* persist barriers travel through the write buffer as markers, so --
  exactly as in Condit et al.'s design -- a store is tagged with the
  epoch that is current *when it completes at the L1*.  An epoch closes
  when its barrier marker reaches the head of the buffer, at which point
  none of its stores can still be in flight: closed epochs are complete
  epochs, which is what makes the split-based deadlock-avoidance
  argument of section 3.3 sound.

The core also implements the persistency models' visibility rules:

* ``NP``      -- barriers ignored, no epoch tagging.
* ``SP``      -- every store persists synchronously before the next
  drains (write-through behaviour, Figure 1a).
* ``EP``      -- the core stalls at each barrier until the closed epoch
  has fully persisted (Figure 1b).
* ``BEP``     -- barriers close epochs and execution continues.
* ``BSP``     -- the hardware persistence engine closes an epoch every
  ``bsp_epoch_stores`` dynamic stores and checkpoints the register file
  (section 5.2).
* ``BSP_WT``  -- the naive write-through BSP the paper measures at ~8x.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional, Tuple

from repro.core.epoch import EpochStatus
from repro.sim.config import PersistencyModel
from repro.workloads.base import Op, OpKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import Multicore


class WriteBufferEntry:
    """A store awaiting drain, or a persist-barrier/strand marker."""

    __slots__ = ("line", "values", "is_barrier", "ep_wait", "strand")

    def __init__(self, line: int = 0,
                 values: Optional[Dict[int, object]] = None,
                 is_barrier: bool = False, ep_wait: bool = False,
                 strand: Optional[int] = None) -> None:
        self.line = line
        self.values = values
        self.is_barrier = is_barrier
        # EP model: the core is parked until this barrier's epoch persists.
        self.ep_wait = ep_wait
        # Strand-switch marker (None for stores/barriers): like barriers,
        # the switch takes effect when it reaches the L1, keeping the
        # store->strand mapping consistent with tag-at-completion.
        self.strand = strand


_EPOCH_MODELS = (
    PersistencyModel.BEP,
    PersistencyModel.BSP,
    PersistencyModel.EP,
)

# Bound on nested inline compute continuations (each nesting level is a
# handful of Python stack frames; the cap keeps compute streaks from
# growing the stack unboundedly, like the machine's inline-depth cap).
_MAX_COMPUTE_INLINE = 16


class Core:
    """One simulated core executing one thread's op stream."""

    def __init__(self, core_id: int, machine: "Multicore",
                 ops: Iterable[Op]) -> None:
        self.core_id = core_id
        self._machine = machine
        self._engine = machine.engine
        self._config = machine.config
        self._it: Iterator[Op] = iter(ops)
        self.stats = machine.stats.domain(f"core{core_id}")
        self._model = machine.config.persistency
        self._uses_epochs = self._model in _EPOCH_MODELS
        self._mgr = machine.managers[core_id]
        self._ckpt = machine.checkpoints[core_id]
        # Hot-path accounting: these counters are bumped on every memory
        # op, so they live as plain attributes and are merged into the
        # stat domain once, at run end (flush_hot_stats), instead of
        # paying a dict lookup per op.  Reference mode (REPRO_SLOW_ENGINE)
        # takes the per-op ``stats.bump`` path instead, so the shortcut
        # itself is covered by the determinism-digest tests.
        self._fast = machine.engine.fast
        self._n_loads = 0
        self._n_stores = 0
        self._n_barriers = 0
        self._n_wb_forwards = 0
        self._n_txns = 0
        self._n_wb_full = 0
        self._n_window_stalls = 0
        # line_of is a single mask op; cache the mask so the per-op path
        # skips the config attribute and method dispatch.  The issue
        # width and write-buffer capacity are read per op too.
        self._line_mask = ~(machine.config.line_size - 1)
        self._issue_cycles = machine.config.issue_width_cycles
        self._wb_capacity = machine.config.write_buffer_entries
        self._track_values = machine.track_values
        self._compute_depth = 0
        # Fast-forward drain sessions (_ff_try): fast mode only, and only
        # for the epoch-tagged models whose drain chain dominates the
        # event count.  _ff_active marks a session in progress so
        # _issue_store virtualizes its issue-width continuation instead
        # of scheduling it; _ff_issue_slot carries that (time, seq) pair
        # back to the session loop.
        self._ff_on = self._fast and self._uses_epochs
        self._ff_active = False
        self._ff_issue_slot: Optional[Tuple[int, int]] = None
        # Session accounting, exposed for tests and diagnostics.  Plain
        # attributes that are never merged into a stat domain: reference
        # mode has no sessions, so folding these into digested stats
        # would break fast-vs-reference digest equality by construction.
        self.ff_batches = 0
        self.ff_stores = 0
        self.ff_fallbacks = 0

        self.wb: deque[WriteBufferEntry] = deque()
        self._wb_stores = 0
        self._wb_lines: Dict[int, int] = {}
        self._draining = False
        # Epoch of the single store the drain loop has in flight at the
        # L1 (the drain is strictly one-at-a-time), so the completion
        # callback is a prebound method instead of a per-store lambda.
        self._drain_epoch = None
        self._pending_push: Optional[Op] = None
        self._wt_outstanding = 0
        self.done = False
        self._stream_done = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._engine.call_soon(self._next)

    def flush_hot_stats(self) -> None:
        """Merge the attribute-held hot counters into the stat domain.

        Called by the machine at run end (and idempotent: counters reset
        to zero as they merge), so readers of ``stats`` after a run see
        exactly what per-op ``bump`` calls would have produced.
        """
        stats = self.stats
        if self._n_loads:
            stats.bump("loads", self._n_loads)
            self._n_loads = 0
        if self._n_stores:
            stats.bump("stores", self._n_stores)
            self._n_stores = 0
        if self._n_barriers:
            stats.bump("barriers", self._n_barriers)
            self._n_barriers = 0
        if self._n_wb_forwards:
            stats.bump("wb_forwards", self._n_wb_forwards)
            self._n_wb_forwards = 0
        if self._n_txns:
            stats.bump("txns", self._n_txns)
            self._n_txns = 0
        if self._n_wb_full:
            stats.bump("wb_full_stalls", self._n_wb_full)
            self._n_wb_full = 0
        if self._n_window_stalls:
            stats.bump("epoch_window_stalls", self._n_window_stalls)
            self._n_window_stalls = 0

    def _next(self, _time: Optional[int] = None) -> None:
        try:
            op = next(self._it)
        except StopIteration:
            self._stream_done = True
            self._check_done()
            return
        kind = op.kind
        # Dispatch order follows op-stream frequency: dense workloads are
        # nearly all loads and stores, with compute/marker ops between.
        if kind is OpKind.LOAD:
            self._issue_load(op)
        elif kind is OpKind.STORE:
            self._issue_store(op)
        elif kind is OpKind.COMPUTE:
            eng = self._engine
            if self._fast:
                # Same clock-claim check as the machine's fused request
                # paths: when the end of the compute burst would be the
                # very next event, advance the clock and continue
                # synchronously instead of round-tripping the heap.
                done = eng.now + op.cycles
                queue = eng._queue
                if (
                    self._compute_depth < _MAX_COMPUTE_INLINE
                    and eng._in_run
                    and not eng._stopped
                    and not eng.advance_holds
                    and not eng._ready
                    and (not queue or queue[0][0] > done)
                    and (eng._until is None or done <= eng._until)
                ):
                    eng.now = done
                    self._compute_depth += 1
                    try:
                        self._next()
                    finally:
                        self._compute_depth -= 1
                    return
            eng.schedule_call(op.cycles, self._next)
        elif kind is OpKind.TXN_MARK:
            if self._fast:
                self._n_txns += 1
            else:
                self.stats.bump("txns")
            self._engine.call_soon(self._next)
        elif kind is OpKind.BARRIER:
            self._issue_barrier()
        elif kind is OpKind.STRAND:
            self._issue_strand(op)
        else:  # pragma: no cover - exhaustive over OpKind
            raise ValueError(f"unknown op kind {kind}")

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _issue_load(self, op: Op) -> None:
        line = op.addr & self._line_mask
        if self._fast:
            self._n_loads += 1
        else:
            self.stats.bump("loads")
        if self._wb_lines.get(line):
            # Store-to-load forwarding out of the write buffer.
            if self._fast:
                self._n_wb_forwards += 1
            else:
                self.stats.bump("wb_forwards")
            self._engine.schedule_call(1, self._next)
            return
        self._machine.load(self.core_id, line, on_done=self._next)

    # ------------------------------------------------------------------
    # Stores and barriers (issue side)
    # ------------------------------------------------------------------
    def _issue_store(self, op: Op) -> None:
        if self._wb_stores + self._wt_outstanding >= self._wb_capacity:
            # A store stalls here nearly every cycle of a streaming burst
            # (drain is slower than issue), so the stall counter is hot.
            if self._fast:
                self._n_wb_full += 1
            else:
                self.stats.bump("wb_full_stalls")
            self._pending_push = op
            return
        line = op.addr & self._line_mask
        values: Optional[Dict[int, object]] = None
        if self._track_values:
            values = {op.addr - line: op.value}
        # _push, inlined: this is the hottest call site (twice per store
        # on a streaming burst, once at issue and once resumed after the
        # stall), and the barrier/strand paths keep using the helper.
        self.wb.append(WriteBufferEntry(line, values))
        if not self._draining:
            self._draining = True
            self._engine.call_soon(self._drain)
        self._wb_stores += 1
        self._wb_lines[line] = self._wb_lines.get(line, 0) + 1
        if self._fast:
            self._n_stores += 1
        else:
            self.stats.bump("stores")
        if self._ff_active:
            # Inside a fast-forward session the issue-width advance
            # becomes the session's virtual issue event; the session
            # merges it against the queues by (time, seq), which is the
            # scheduled path's ordering by construction.  The sequence
            # allocation is ff_take_seq, inlined.
            eng = self._engine
            seq = eng._seq
            eng._seq = seq + 1
            self._ff_issue_slot = (eng.now + self._issue_cycles, seq)
            return
        # NOTE: the issue-width advance must stay a scheduled event.  An
        # inline try_advance here is unsound: _issue_store can run mid-
        # chain (resumed from _pop_store), and the enclosing caller may
        # still schedule same-cycle work after it returns, which the
        # clock claim would reorder.
        self._engine.schedule_call(self._issue_cycles, self._next)

    def _issue_barrier(self) -> None:
        if self._fast:
            self._n_barriers += 1
        else:
            self.stats.bump("barriers")
        if not self._uses_epochs or self._model is PersistencyModel.BSP:
            # NP/SP/WT ignore explicit barriers; under BSP bulk mode the
            # hardware inserts its own.
            self._engine.call_soon(self._next)
            return
        ep_wait = self._model is PersistencyModel.EP
        self._push(WriteBufferEntry(is_barrier=True, ep_wait=ep_wait))
        if not ep_wait:
            self._engine.call_soon(self._next)
        # For EP the core parks here; the marker's drain handler resumes
        # it once the epoch persists (rule E2 of section 2.1).

    def _issue_strand(self, op: Op) -> None:
        if self._uses_epochs:
            self._push(WriteBufferEntry(strand=op.value))
        self._engine.call_soon(self._next)

    def _push(self, entry: WriteBufferEntry) -> None:
        self.wb.append(entry)
        if not self._draining:
            self._draining = True
            self._engine.call_soon(self._drain)

    # ------------------------------------------------------------------
    # Write-buffer drain (epoch tagging happens here)
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        if not self.wb:
            self._draining = False
            self._check_done()
            return
        entry = self.wb[0]
        if entry.is_barrier:
            self._drain_barrier(entry)
            return
        if entry.strand is not None:
            self.wb.popleft()
            self._mgr.set_strand(entry.strand)
            self._engine.call_soon(self._drain)
            return
        if self._model is PersistencyModel.SP:
            self._machine.store(
                self.core_id, entry.line, entry.values, None,
                on_done=self._drained, persist_sync=True,
            )
            return
        if self._model is PersistencyModel.BSP_WT or not self._uses_epochs:
            if self._model is PersistencyModel.BSP_WT:
                self._wt_outstanding += 1
                self._machine.store(
                    self.core_id, entry.line, entry.values, None,
                    on_done=self._drained, wt_async=True,
                    on_persist_ack=self._wt_acked,
                )
            else:
                self._machine.store(
                    self.core_id, entry.line, entry.values, None,
                    on_done=self._drained,
                )
            return

        # Epoch-tagged store path (EP / BEP / BSP).
        if self._ff_on and self._ff_try():
            return
        # ``mgr.current``, inlined: one property plus one descriptor hop
        # per drained store is measurable on the contended path.
        mgr = self._mgr
        current = mgr._ongoing.get(mgr.active_strand)
        if current is not None and current.status is not EpochStatus.ONGOING:
            current = None
        if (
            self._model is PersistencyModel.BSP
            and current is not None
            and current.num_stores + current.pending_stores
            >= self._config.bsp_epoch_stores
        ):
            # Bulk mode: the persistence engine closes the epoch after N
            # dynamic stores and checkpoints processor state (section 5.2).
            self._hardware_barrier()
            current = None
        if current is None and not mgr.can_open_epoch():
            # All 2^3 epoch IDs are in flight (section 4.3): no store may
            # begin a new epoch until the oldest persists.
            if self._fast:
                self._n_window_stalls += 1
            else:
                self.stats.bump("epoch_window_stalls")
            oldest = mgr.oldest_unpersisted()
            oldest.on_persist(self._drain)
            self._machine.arbiters[self.core_id].request_flush_upto(
                oldest, online=True, mark_conflict=False
            )
            return
        epoch = mgr.tag_store()
        self._drain_epoch = epoch
        self._machine.store(
            self.core_id, entry.line, entry.values, epoch,
            on_done=self._drained_epoch,
        )

    # ------------------------------------------------------------------
    # Fast-forward drain sessions
    # ------------------------------------------------------------------
    # The drain chain is the simulator's dominant event class: every
    # store costs an issue-width continuation plus an L1 completion,
    # each a heap round-trip.  A session replaces both with *virtual*
    # events -- (time, seq) pairs held in locals -- and advances the
    # clock analytically, firing any interleaved queued event through
    # Engine.ff_dispatch_one in exact (time, priority, seq) order.  Every
    # state mutation mirrors the event-per-op path line for line, so an
    # observer of stats, cycle counts, or the NVRAM image cannot tell a
    # fast-forwarded stretch from a stepped one; the moment any
    # precondition fails the session re-materializes its outstanding
    # virtual events under their original sequence numbers and yields to
    # the event-per-op path.

    def _ff_try(self) -> bool:
        """Try to fast-forward the drain from the current buffer head.

        Returns True when the session consumed the drain step (the
        caller's _drain invocation is done); False to continue on the
        event-per-op path with nothing changed.
        """
        if self._machine.faults is not None:
            # Fault injection draws splitmix64 coordinates keyed by
            # per-event attempt counts; fast-forwarding a faulty machine
            # could shift a draw.  Conservative: never claim a window
            # when an injector is configured.
            self.ff_fallbacks += 1
            return False
        eng = self._engine
        if not eng.ff_begin():
            self.ff_fallbacks += 1
            return False
        self._ff_active = True
        try:
            outcome = self._ff_run()
        finally:
            eng.ff_end()
            self._ff_active = False
        if outcome == 0:
            self.ff_fallbacks += 1
            return False
        if outcome == 1:
            # The session stopped at work the event-per-op path owns (a
            # barrier marker, a window stall, a potential conflict); run
            # it now, at the cycle the session advanced to.
            self._drain()
        return True

    def _ff_run(self) -> int:
        """The session loop.

        Returns 0 when the first drain step refused (no observable side
        effects; the caller continues per-op), 1 when the session
        advanced work and then reached a step the event-per-op path must
        handle, or 2 when stop()/until interrupted it.  For 1 and 2
        every outstanding virtual event has been re-materialized into
        the heap under its original sequence number.
        """
        eng = self._engine
        machine = self._machine
        mgr = self._mgr
        wb = self.wb
        is_bsp = self._model is PersistencyModel.BSP
        bsp_limit = self._config.bsp_epoch_stores if is_bsp else 0
        core_id = self.core_id
        cur = mgr.current
        d_slot = None   # (time, seq, epoch): store completion in flight
        n_slot = None   # (time, seq): pending issue-width continuation
        stores = 0
        # Hoisted queue handles: compaction mutates these objects in
        # place (never replaces them), so the bindings stay valid across
        # any event the session dispatches.
        queue = eng._queue
        ready = eng._ready
        until = eng._until
        ff_store_try = machine.ff_store_try
        wb_popleft = wb.popleft
        wb_lines = self._wb_lines
        ongoing_s = EpochStatus.ONGOING
        closed_s = EpochStatus.CLOSED

        while True:
            if d_slot is None:
                # -- drain step: claim the write-buffer head store -----
                # Mirrors _drain's epoch-tagged path; any condition the
                # event-per-op path owns ends the session (or refuses
                # it, when nothing has been advanced yet).
                if not wb:
                    break
                head = wb[0]
                if head.is_barrier or head.strand is not None:
                    break
                # The current-epoch lookup is cached across the burst; a
                # barrier or split flips `ongoing`, so staleness is one
                # attribute check away.
                if cur is None or cur.status is not ongoing_s:
                    cur = mgr.current
                if (
                    is_bsp
                    and cur is not None
                    and cur.num_stores + cur.pending_stores >= bsp_limit
                ):
                    break
                if cur is None:
                    if not mgr.can_open_epoch():
                        break
                    # Same epoch the per-op tag_store would open, at the
                    # same cycle with the same stats.
                    cur = mgr.current_or_new()
                lat = ff_store_try(core_id, head.line, head.values, cur)
                if lat < 0:
                    break
                cur.pending_stores += 1
                seq = eng._seq
                eng._seq = seq + 1
                d_slot = (eng.now + lat, seq, cur)
                stores += 1
                continue

            # -- fire the earliest of {queued event, completion, issue} --
            t_d = d_slot[0]
            s_d = d_slot[1]
            if n_slot is not None and (
                n_slot[0] < t_d or (n_slot[0] == t_d and n_slot[1] < s_d)
            ):
                v_time = n_slot[0]
                v_seq = n_slot[1]
                v_is_issue = True
            else:
                v_time = t_d
                v_seq = s_d
                v_is_issue = False
            # Inline ff_next_key: decide whether a foreign queued event
            # precedes the virtual one without building key tuples.  A
            # ready entry carries key (now, 0, seq) and now <= v_time
            # always holds, so when the clocks tie only the seq decides;
            # for the until-bound both candidate times are <= now <=
            # until, so f_time only matters for the heap case.
            if (ready and ready[0][3] is not None
                    and ready[0][3].cancelled) or (
                    queue and queue[0][3] is not None
                    and queue[0][3].cancelled):
                eng._discard_cancelled_head()
            f_time = -1
            if ready:
                if eng.now < v_time or ready[0][0] < v_seq:
                    f_time = eng.now
            if f_time < 0 and queue:
                head2 = queue[0]
                h0 = head2[0]
                if h0 < v_time or (
                    h0 == v_time
                    and (head2[1] < 0
                         or (head2[1] == 0 and head2[2] < v_seq))
                ):
                    f_time = h0
            if f_time >= 0:
                if eng._stopped or (until is not None and f_time > until):
                    self._ff_rematerialize(d_slot, n_slot)
                    self.ff_batches += 1
                    self.ff_stores += stores
                    return 2
                eng.ff_dispatch_one()
                if self._ff_issue_slot is not None:
                    n_slot = self._ff_issue_slot
                    self._ff_issue_slot = None
                continue
            if eng._stopped or (until is not None and v_time > until):
                self._ff_rematerialize(d_slot, n_slot)
                self.ff_batches += 1
                self.ff_stores += stores
                return 2
            # The comparison against fkey guarantees the ready deque is
            # empty whenever v_time > now, so this is the same heap-head
            # clock advance run() performs.
            eng.now = v_time
            if v_is_issue:
                n_slot = None
                self._next()
                if self._ff_issue_slot is not None:
                    n_slot = self._ff_issue_slot
                    self._ff_issue_slot = None
                continue
            # Store completion: mirror _drained_epoch + _pop_store,
            # with EpochManager.store_drained inlined (resolve split
            # redirects, retire the pending store, complete a closed
            # epoch that just emptied).
            epoch = d_slot[2]
            d_slot = None
            while epoch.redirect is not None:
                epoch = epoch.redirect
            pending = epoch.pending_stores - 1
            epoch.pending_stores = pending
            epoch.num_stores += 1
            if pending <= 0:
                if pending < 0:
                    raise RuntimeError(
                        f"store accounting underflow on {epoch}"
                    )
                if epoch.status is closed_s:
                    mgr._complete(epoch)
            entry = wb_popleft()
            self._wb_stores -= 1
            count = wb_lines[entry.line] - 1
            if count:
                wb_lines[entry.line] = count
            else:
                del wb_lines[entry.line]
            op = self._pending_push
            if op is not None:
                # _resume_pending_push, inlined: the pop above freed a
                # buffer slot, so only outstanding write-throughs can
                # still hold the op back.
                if self._wb_stores + self._wt_outstanding < self._wb_capacity:
                    self._pending_push = None
                    self._issue_store(op)
                    if self._ff_issue_slot is not None:
                        n_slot = self._ff_issue_slot
                        self._ff_issue_slot = None

        if not stores:
            # Drain-step refusal before any work: a clean refuse (no
            # issue continuation can exist yet either).
            return 0
        self._ff_rematerialize(None, n_slot)
        self.ff_batches += 1
        self.ff_stores += stores
        return 1

    def _ff_rematerialize(self, d_slot, n_slot) -> None:
        """Push outstanding virtual events back into the heap under
        their original sequence numbers, recreating exactly the entries
        the scheduled path would have queued."""
        eng = self._engine
        if n_slot is not None:
            heapq.heappush(
                eng._queue,
                (n_slot[0], 0, n_slot[1], None, self._next, ()),
            )
            eng._live += 1
        if d_slot is not None:
            self._drain_epoch = d_slot[2]
            heapq.heappush(
                eng._queue,
                (d_slot[0], 0, d_slot[1], None,
                 self._drained_epoch, (d_slot[0],)),
            )
            eng._live += 1

    def _drain_barrier(self, entry: WriteBufferEntry) -> None:
        self.wb.popleft()
        closed = self._mgr.close_current()
        if self._model is PersistencyModel.EP and entry.ep_wait:
            if closed is None:
                self._engine.call_soon(self._next)
            else:
                self.stats.bump("ep_barrier_stalls")
                closed.on_persist(self._next)
                self._machine.arbiters[self.core_id].request_flush_upto(
                    closed, online=True, mark_conflict=False
                )
        self._engine.call_soon(self._drain)

    def _hardware_barrier(self) -> None:
        """BSP bulk mode: hardware-inserted barrier + register checkpoint."""
        closed = self._mgr.close_current()
        if closed is not None:
            self.stats.bump("hw_barriers")
            self._ckpt.capture(closed)

    # -- drain completions ------------------------------------------------
    def _drained_epoch(self, _time: int) -> None:
        epoch, self._drain_epoch = self._drain_epoch, None
        self._mgr.store_drained(epoch)
        self._pop_store()

    def _drained(self, _time: int) -> None:
        self._pop_store()

    def _pop_store(self) -> None:
        entry = self.wb.popleft()
        self._wb_stores -= 1
        count = self._wb_lines[entry.line] - 1
        if count:
            self._wb_lines[entry.line] = count
        else:
            del self._wb_lines[entry.line]
        if self._pending_push is not None:
            self._resume_pending_push()
        self._drain()

    def _wt_acked(self, _time: int) -> None:
        self._wt_outstanding -= 1
        self._resume_pending_push()
        self._check_done()

    def _resume_pending_push(self) -> None:
        if self._pending_push is None:
            return
        if self._wb_stores + self._wt_outstanding >= self._wb_capacity:
            return
        op, self._pending_push = self._pending_push, None
        self._issue_store(op)

    # ------------------------------------------------------------------
    def _check_done(self) -> None:
        if (
            not self.done
            and self._stream_done
            and not self.wb
            and self._wt_outstanding == 0
        ):
            self.done = True
            if (
                self._model is PersistencyModel.BSP
                and self._mgr.current is not None
            ):
                # Close the trailing hardware epoch so it checkpoints and
                # persists like any other.
                self._hardware_barrier()
            self._machine.core_finished(self.core_id)
