"""The multicore machine: wiring and the memory-request state machine.

:class:`Multicore` assembles the substrate (cores, L1s, banked LLC,
directory, mesh, memory controllers, NVRAM image) with the persistence
machinery (epoch managers, arbiters, IDT, undo logs, checkpoint engines)
and implements the per-request flow where the paper's conflicts are
detected and resolved:

* **intra-thread conflict** -- a store hits a line dirty under an older,
  unpersisted epoch of the same core: the request stalls while epochs up
  to and including the source are flushed online (section 3.2).
* **inter-thread conflict** -- a load or store hits a line dirty under
  another core's unpersisted epoch: with IDT the dependence is recorded
  (splitting the source epoch first if it is ongoing, section 3.3) and
  the request completes; without IDT, or on IDT register overflow, the
  source epoch chain is flushed online (section 3.1).
* **eviction conflict** -- replacing a dirty unpersisted LLC line, or
  writing an L1 victim back onto a different unpersisted LLC version,
  requires the ordering-predecessor epochs to persist first.

State transitions are atomic at well-defined event times; latency is
accounted by scheduling the completion callback.  A request that hits a
conflict is parked and re-executed from scratch when the blocking epochs
persist -- re-classification keeps the decision consistent with whatever
changed while it waited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.arbiter import Arbiter
from repro.core.checkpoint import CheckpointEngine
from repro.core.epoch import Epoch, EpochManager
from repro.core.idt import IDTracker
from repro.core.undo_log import UndoLog
from repro.cpu.processor import Core
from repro.mem.address import AddressMap
from repro.mem.cache import CacheEntry, SetAssociativeCache
from repro.mem.coherence import Directory, ReferenceDirectory
from repro.mem.interconnect import Mesh, _LazyRows
from repro.mem.nvram import MemoryController, NVRAMImage
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.config import MachineConfig, PersistencyModel
from repro.sim.engine import Engine
from repro.sim.stats import HandshakeStats, Stats
from repro.sim.trace import Tracer

_MAX_REQUEST_RETRIES = 1000

# Bound on nested inline completions: a streak of conflict-free L1 hits
# re-enters the request machinery recursively (completion -> next op ->
# hit -> completion ...); past this depth the completion falls back to
# the scheduler so the Python stack stays shallow.
_MAX_INLINE_DEPTH = 32


class SimulationError(RuntimeError):
    """An internal invariant was violated (a simulator bug, not a model
    property)."""


class _Request:
    """One in-flight memory request."""

    __slots__ = (
        "core_id", "line", "is_store", "values", "epoch", "on_done",
        "persist_sync", "wt_async", "on_persist_ack", "retries",
        "issue_time",
    )

    def __init__(self, core_id: int, line: int, is_store: bool,
                 values: Optional[Dict[int, object]],
                 epoch: Optional[Epoch],
                 on_done: Callable[[int], None]) -> None:
        self.core_id = core_id
        self.line = line
        self.is_store = is_store
        self.values = values
        self.epoch = epoch
        self.on_done = on_done
        self.persist_sync = False
        self.wt_async = False
        self.on_persist_ack: Optional[Callable[[int], None]] = None
        self.retries = 0
        self.issue_time = 0


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    cycles_visible: Optional[int]
    cycles_durable: Optional[int]
    stats: Stats
    config: MachineConfig
    finished: bool

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        return self.stats.total("txns")

    @property
    def throughput(self) -> float:
        """Transactions per kilo-cycle (Figure 11's metric before
        normalization)."""
        if not self.cycles_visible:
            return 0.0
        return 1000.0 * self.transactions / self.cycles_visible

    @property
    def total_epochs(self) -> int:
        return self.stats.total("epochs_persisted")

    @property
    def conflict_epoch_pct(self) -> float:
        """Percentage of epochs flushed because of a conflict (Figure 12)."""
        total = self.total_epochs
        if not total:
            return 0.0
        return 100.0 * self.stats.total("epochs_conflict_flushed") / total

    @property
    def intra_conflicts(self) -> int:
        return self.stats.domain("conflicts").get("intra_thread")

    @property
    def inter_conflicts(self) -> int:
        return self.stats.domain("conflicts").get("inter_thread")

    @property
    def nvram_writes(self) -> int:
        return self.stats.total("writes")


class Multicore:
    """The simulated machine of Figure 2."""

    def __init__(
        self,
        config: MachineConfig,
        *,
        track_values: bool = False,
        track_persist_order: bool = False,
        keep_epoch_log: bool = False,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultConfig] = None,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.engine = Engine()
        self.stats = Stats()
        self.track_values = track_values
        self.amap = AddressMap(config)
        self.mesh = Mesh(config)
        # Fault injection must exist before the components that consult
        # it (memory controllers, flush operations) are built.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(faults) if faults is not None else None
        )
        self.image = NVRAMImage(
            track_order=track_persist_order,
            reorder_window=(faults.reorder_window if faults is not None
                            else 0),
        )

        mc_stats = self.stats.domain("nvram")
        self.mcs: List[MemoryController] = [
            MemoryController(i, config, self.engine, self.image, mc_stats,
                             faults=self.faults)
            for i in range(config.num_memory_controllers)
        ]
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(
                f"L1.{i}", config.l1_sets, config.l1_assoc,
                config.line_size, self.stats.domain(f"l1.{i}"),
            )
            for i in range(config.num_cores)
        ]
        llc_stats = self.stats.domain("llc")
        self.llc_banks: List[SetAssociativeCache] = [
            SetAssociativeCache(
                f"LLC.B{b}", config.llc_bank_sets, config.llc_assoc,
                config.line_size, llc_stats,
            )
            for b in range(config.llc_banks)
        ]
        # Fast mode uses the flat owner/sharer-bitmask directory; the
        # reference mode keeps the seed's per-line-entry form as the
        # executable specification (see mem/coherence.py).
        self.directory = (
            Directory() if self.engine.fast else ReferenceDirectory()
        )

        self.managers: List[EpochManager] = []
        self.arbiters: List[Arbiter] = []
        self.undo_logs: List[UndoLog] = []
        self.checkpoints: List[CheckpointEngine] = []
        self.idt = IDTracker(
            config.idt_registers_per_epoch, self.stats.domain("idt")
        )
        # Per-core handshake message accounting -- digest-invisible by
        # construction (plain attributes, never a StatDomain; see
        # sim/stats.py).  Built before the arbiters so the pooled flush
        # operations can capture the list.
        self.handshake: List[HandshakeStats] = [
            HandshakeStats() for _ in range(config.num_cores)
        ]
        for core_id in range(config.num_cores):
            mgr = EpochManager(
                core_id, self.engine, self.stats.domain(f"core{core_id}"),
                config.max_inflight_epochs,
            )
            mgr.keep_retired = keep_epoch_log
            mgr.persist_check = self.maybe_persist
            mgr.handshake = self.handshake[core_id]
            self.managers.append(mgr)
            self.arbiters.append(Arbiter(core_id, self, mgr))
            self.undo_logs.append(UndoLog(core_id, self))
            self.checkpoints.append(CheckpointEngine(core_id, self))

        if config.barrier_design.uses_pf and config.persistency.buffered:
            for mgr in self.managers:
                mgr.completion_hook = self._proactive_flush

        self._logging_on = (
            config.undo_logging
            and config.persistency is PersistencyModel.BSP
        )
        self.cores: List[Core] = []
        self._active_cores = 0
        self._finish_time: Optional[int] = None
        self._conflict_stats = self.stats.domain("conflicts")
        # Hot-path caches: stat domains resolved once instead of via an
        # f-string dict lookup per request, and the core->bank leg of the
        # request latency precomputed per (core, bank) pair.
        self._core_domains = [
            self.stats.domain(f"core{i}") for i in range(config.num_cores)
        ]
        self._l1_domains = [
            self.stats.domain(f"l1.{i}") for i in range(config.num_cores)
        ]
        self._llc_domain = llc_stats
        # Lazily-materialized per-core rows (like the mesh's own
        # tables): only the cores that actually issue requests pay for
        # their row, which matters at 64 cores x 64 banks.
        round_trip = config.l1_latency + config.llc_latency
        self._base_lat = _LazyRows(config.num_cores, lambda core: tuple(
            round_trip + 2 * lat for lat in self.mesh.c2b[core]
        ))
        # One-way L1->bank travel leg of a memory fill, per (core, bank);
        # the bank->MC leg is added from the mesh's b2mc table per line.
        self._fill_travel = _LazyRows(config.num_cores, lambda core: tuple(
            round_trip + lat for lat in self.mesh.c2b[core]
        ))
        self._inline_depth = 0
        # Per-line epoch tags (fast mode): line -> the epoch holding the
        # *newest* unpersisted dirty version of the line, maintained on
        # store (_tag_line) and persist (_untag_line).  Membership alone
        # answers "does any window epoch hold an unpersisted version of
        # this line?" in one dict probe -- the conflict guard of the
        # fused store path.  At most two unpersisted versions of a line
        # can coexist (the IDT case: the older one written back to the
        # LLC, the newer in the requester's L1), and the older version
        # always leaves the dirty domain first, so a single
        # newest-pointer plus a sparse depth count is exact; audit()
        # cross-checks the map against the window line sets.
        self._epoch_tags: Dict[int, Epoch] = {}
        self._tag_depth: Dict[int, int] = {}
        # Per-request accounting hoists (reference mode takes the
        # seed-faithful per-op path instead: f-string domain lookups and
        # a bump/record per request).  L1 hit counts, LLC access counts,
        # flush counts and memory-latency samples accumulate in plain
        # attributes and merge into the stat domains once, at run end
        # (_flush_hot_stats).
        self._fast = self.engine.fast
        self._l1_lat = config.l1_latency
        # Bank resolution inlined in the fused paths: one shift and one
        # modulo instead of an AddressMap method call per access.
        self._bank_shift = config.offset_bits
        self._n_banks = config.llc_banks
        n = config.num_cores
        self._l1_hit_counts = [0] * n
        self._lat_sums = [0] * n
        self._lat_counts = [0] * n
        self._lat_maxes = [0] * n
        self._n_llc_hits = 0
        self._n_llc_misses = 0
        self._n_llc_forwards = 0
        self._n_llc_fill_races = 0
        self._n_llc_dirty_evictions = 0
        self._flush_domain = self.stats.domain("flush")
        self._n_epoch_flushes = 0
        self._fel_sum = 0
        self._fel_count = 0
        self._fel_max = 0

    # ------------------------------------------------------------------
    # Public request API (called by cores)
    # ------------------------------------------------------------------
    # The fused fast paths below collapse the conflict-free L1-hit case
    # of load/store into the entry call: no _Request allocation, no
    # dispatcher hops, the clock-claim check from Engine.try_advance
    # inlined (conservatively: a cancelled ready-queue head refuses
    # instead of reaping, which only falls back to the scheduled path).
    # Every state transition and every count matches the general path
    # bit for bit -- the determinism-digest tests compare against the
    # reference mode, which always takes the general path.

    def load(self, core_id: int, line: int,
             on_done: Callable[[int], None]) -> None:
        if self._fast:
            l1 = self.l1s[core_id]
            if line == l1._last_line:
                entry = l1._last_entry
            else:
                entry = l1.lookup(line)
            if entry is not None:
                l1._tick = tick = l1._tick + 1
                entry._lru = tick
                self._l1_hit_counts[core_id] += 1
                lat = self._l1_lat
                self._lat_sums[core_id] += lat
                self._lat_counts[core_id] += 1
                if lat > self._lat_maxes[core_id]:
                    self._lat_maxes[core_id] = lat
                eng = self.engine
                done = eng.now + lat
                queue = eng._queue
                if (
                    self._inline_depth < _MAX_INLINE_DEPTH
                    and eng._in_run
                    and not eng._stopped
                    and not eng.advance_holds
                    and not eng._ready
                    and (not queue or queue[0][0] > done)
                    and (eng._until is None or done <= eng._until)
                ):
                    eng.now = done
                    self._inline_depth += 1
                    try:
                        on_done(done)
                    finally:
                        self._inline_depth -= 1
                    return
                eng.schedule_call(lat, on_done, done)
                return
            # Fused L1-miss/LLC-hit path: a conflict-free fill from the
            # LLC completes without a request object, mirroring the hit
            # fast path above.  Conflict-free means: no foreign M owner,
            # the LLC copy (if dirty) is not another core's unpersisted
            # version, and the L1 victim (if any) is clean.  Anything
            # else falls through to the general classifier.
            bank = (line >> self._bank_shift) % self._n_banks
            owner = self.directory.owner_of(line)
            if owner is None or owner == core_id:
                bank_cache = self.llc_banks[bank]
                llc_entry = bank_cache.lookup(line)
                if llc_entry is not None and not (
                    llc_entry.dirty
                    and llc_entry.epoch is not None
                    and llc_entry.epoch.core_id != core_id
                    and not llc_entry.epoch.persisted
                ):
                    filled = l1.clean_fill(line)
                    if filled is not None:
                        # Same end state as the general path: LLC
                        # touched, victim out, fill in, sharer added.
                        entry, victim_line = filled
                        bank_cache._tick = btick = bank_cache._tick + 1
                        llc_entry._lru = btick
                        if self.track_values:
                            if llc_entry.values is not None:
                                entry.values = dict(llc_entry.values)
                            else:
                                stored = self.image.values.get(line)
                                entry.values = dict(stored) if stored else {}
                        self.directory.refill_sharer(line, victim_line,
                                                     core_id)
                        self._n_llc_hits += 1
                        lat = self._base_lat[core_id][bank]
                        self._lat_sums[core_id] += lat
                        self._lat_counts[core_id] += 1
                        if lat > self._lat_maxes[core_id]:
                            self._lat_maxes[core_id] = lat
                        eng = self.engine
                        done = eng.now + lat
                        if (
                            self._inline_depth < _MAX_INLINE_DEPTH
                            and eng.try_advance(done)
                        ):
                            self._inline_depth += 1
                            try:
                                on_done(done)
                            finally:
                                self._inline_depth -= 1
                            return
                        eng.schedule_call(lat, on_done, done)
                        return
                if llc_entry is None and owner is None:
                    # Fused full-miss path: an unowned, uncached line
                    # fills from NVRAM without a request object.  All
                    # fill-time hazards (races, dirty victims) are
                    # re-checked at completion by _fused_miss_done,
                    # which falls back to the request machinery there.
                    self._n_llc_misses += 1
                    mc_id = self.amap.mc_of(line)
                    bank_mc = self.mesh.b2mc[bank][mc_id]
                    travel = self._fill_travel[core_id][bank] + bank_mc
                    delivery = bank_mc + self.mesh.c2b[core_id][bank]
                    self.engine.schedule_call(
                        travel, self._fused_miss_at_mc,
                        mc_id, core_id, line, bank, delivery, on_done,
                        self.engine.now, None, None,
                    )
                    return
        req = _Request(core_id, line, False, None, None, on_done)
        req.issue_time = self.engine.now
        self._try_access(req)

    def store(
        self,
        core_id: int,
        line: int,
        values: Optional[Dict[int, object]],
        epoch: Optional[Epoch],
        on_done: Callable[[int], None],
        persist_sync: bool = False,
        wt_async: bool = False,
        on_persist_ack: Optional[Callable[[int], None]] = None,
    ) -> None:
        if (
            self._fast
            and epoch is not None
            and not persist_sync
            and not wt_async
        ):
            resolved = epoch.resolve()
            l1 = self.l1s[core_id]
            if line == l1._last_line:
                entry = l1._last_entry
            else:
                entry = l1.lookup(line)
            if entry is not None and entry.dirty and entry.epoch is resolved:
                # Same-epoch store to an owned M-state line: no logging
                # (the line is already dirty under this epoch), no
                # conflict checks, ownership already held.
                self.directory.set_owner(line, core_id)
                resolved.lines.add(line)
                resolved.all_lines.add(line)
                if self.track_values and values:
                    if entry.values is None:
                        entry.values = {}
                    entry.values.update(values)
                l1._tick = tick = l1._tick + 1
                entry._lru = tick
                lat = self._l1_lat
                self._lat_sums[core_id] += lat
                self._lat_counts[core_id] += 1
                if lat > self._lat_maxes[core_id]:
                    self._lat_maxes[core_id] = lat
                eng = self.engine
                done = eng.now + lat
                queue = eng._queue
                if (
                    self._inline_depth < _MAX_INLINE_DEPTH
                    and eng._in_run
                    and not eng._stopped
                    and not eng.advance_holds
                    and not eng._ready
                    and (not queue or queue[0][0] > done)
                    and (eng._until is None or done <= eng._until)
                ):
                    eng.now = done
                    self._inline_depth += 1
                    try:
                        on_done(done)
                    finally:
                        self._inline_depth -= 1
                    return
                eng.schedule_call(lat, on_done, done)
                return
            # Fused store miss/upgrade path: a conflict-free store to a
            # line this core does not hold in M completes without a
            # request object.  Two shapes share the tail: an S-state L1
            # hit upgraded in place, and an L1 miss filled from a
            # conflict-free LLC copy.  Undo logging, any unpersisted LLC
            # version, foreign owners/sharers, or a dirty L1 victim fall
            # through to the general classifier.
            if not self._logging_on and (entry is None or not entry.dirty):
                # The epoch-tag probe subsumes the seed's LLC-version
                # check: a line absent from the tag map has no
                # unpersisted dirty version anywhere (an unpersisted
                # dirty copy in a foreign L1 would also fail
                # exclusive_ok, and one in this core's own L1 was
                # excluded by the dirty-hit branch above), so the store
                # cannot conflict.  A tagged line falls through to the
                # general classifier, which re-derives the source epoch
                # from the cache entries.
                if (
                    line not in self._epoch_tags
                    and self.directory.exclusive_ok(line, core_id)
                ):
                    bank = (line >> self._bank_shift) % self._n_banks
                    viable = entry is not None
                    if viable:
                        self.directory.set_owner(line, core_id)
                    else:
                        llc_entry = self.llc_banks[bank].lookup(line)
                        if llc_entry is None:
                            # Fused full-miss path (write-allocate): the
                            # guard proved the line unowned, untagged and
                            # uncached, so the fill can run without a
                            # request object; fill-time hazards are
                            # re-checked at completion.  Stores do not
                            # bump the LLC miss counter (the general
                            # classifier does not either).
                            mc_id = self.amap.mc_of(line)
                            bank_mc = self.mesh.b2mc[bank][mc_id]
                            travel = (self._fill_travel[core_id][bank]
                                      + bank_mc)
                            delivery = (bank_mc
                                        + self.mesh.c2b[core_id][bank])
                            self.engine.schedule_call(
                                travel, self._fused_miss_at_mc,
                                mc_id, core_id, line, bank, delivery,
                                on_done, self.engine.now, values, resolved,
                            )
                            return
                        if llc_entry is not None:
                            # Same end state as _try_store -> _fill_l1
                            # for the clean-victim fill.
                            filled = l1.clean_fill(line)
                            if filled is not None:
                                entry, victim_line = filled
                                if self.track_values:
                                    if llc_entry.values is not None:
                                        entry.values = dict(
                                            llc_entry.values)
                                    else:
                                        stored = self.image.values.get(
                                            line)
                                        entry.values = (dict(stored)
                                                        if stored else {})
                                self.directory.refill_owner(
                                    line, victim_line, core_id)
                                viable = True
                    if viable:
                        entry.dirty = True
                        entry.epoch = resolved
                        # The guard proved no prior unpersisted version,
                        # so the tag is a plain insert (no depth).
                        resolved.lines.add(line)
                        self._epoch_tags[line] = resolved
                        resolved.all_lines.add(line)
                        if self.track_values and values:
                            if entry.values is None:
                                entry.values = {}
                            entry.values.update(values)
                        l1._tick = tick = l1._tick + 1
                        entry._lru = tick
                        lat = self._base_lat[core_id][bank]
                        self._lat_sums[core_id] += lat
                        self._lat_counts[core_id] += 1
                        if lat > self._lat_maxes[core_id]:
                            self._lat_maxes[core_id] = lat
                        eng = self.engine
                        done = eng.now + lat
                        if (
                            self._inline_depth < _MAX_INLINE_DEPTH
                            and eng.try_advance(done)
                        ):
                            self._inline_depth += 1
                            try:
                                on_done(done)
                            finally:
                                self._inline_depth -= 1
                            return
                        eng.schedule_call(lat, on_done, done)
                        return
        req = _Request(core_id, line, True, values, epoch, on_done)
        req.persist_sync = persist_sync
        req.wt_async = wt_async
        req.on_persist_ack = on_persist_ack
        req.issue_time = self.engine.now
        self._try_access(req)

    def ff_store_try(self, core_id: int, line: int,
                     values: Optional[Dict[int, object]],
                     resolved: Epoch) -> int:
        """Fast-forward drain step: apply one epoch-tagged store if it
        is conflict-free, returning its latency, or -1 with no
        observable side effect.

        Mirrors the two fused shapes of :meth:`store` -- the same-epoch
        dirty hit and the clean miss/upgrade -- state change for state
        change and count for count, but never schedules the completion:
        the caller (the core's fast-forward session) accounts it as a
        virtual event.  The epoch-tag probe doubles as the session's
        flush-in-window guard: a line whose previous version belongs to
        any unpersisted epoch (closed, flushing, or foreign) is still in
        the tag map, so the store returns -1 and the event-per-op drain
        re-derives the conflict through the general classifier.
        ``resolved`` must be the core's ongoing epoch, already resolved.
        """
        l1 = self.l1s[core_id]
        if line == l1._last_line:
            entry = l1._last_entry
        else:
            entry = l1.lookup(line)
        if entry is not None and entry.dirty and entry.epoch is resolved:
            self.directory.set_owner(line, core_id)
            resolved.lines.add(line)
            resolved.all_lines.add(line)
            if self.track_values and values:
                if entry.values is None:
                    entry.values = {}
                entry.values.update(values)
            l1._tick = tick = l1._tick + 1
            entry._lru = tick
            lat = self._l1_lat
        elif (
            not self._logging_on
            and entry is not None
            and entry.dirty
            and (entry.epoch is None or entry.epoch.persisted)
            and line not in self._epoch_tags
        ):
            # Re-dirtying a line whose previous version already
            # persisted: the general classifier's dirty-hit fast path
            # (``_try_store`` -> ``_finish_store``) with no conflict
            # possible -- the old version left the dirty domain, the
            # line is still M-state in this L1, and the tag is a plain
            # insert.  This is the first store of every transaction in
            # re-touch workloads (pingpong mailboxes, zipfian hot keys).
            self.directory.set_owner(line, core_id)
            entry.dirty = True
            entry.epoch = resolved
            resolved.lines.add(line)
            self._epoch_tags[line] = resolved
            resolved.all_lines.add(line)
            if self.track_values and values:
                if entry.values is None:
                    entry.values = {}
                entry.values.update(values)
            l1._tick = tick = l1._tick + 1
            entry._lru = tick
            lat = self._l1_lat
        elif (
            not self._logging_on
            and (entry is None or not entry.dirty)
            and line not in self._epoch_tags
            and self.directory.exclusive_ok(line, core_id)
        ):
            bank = (line >> self._bank_shift) % self._n_banks
            if entry is not None:
                self.directory.set_owner(line, core_id)
            else:
                llc_entry = self.llc_banks[bank].lookup(line)
                if llc_entry is None:
                    return -1
                filled = l1.clean_fill(line)
                if filled is None:
                    return -1
                entry, victim_line = filled
                if self.track_values:
                    if llc_entry.values is not None:
                        entry.values = dict(llc_entry.values)
                    else:
                        stored = self.image.values.get(line)
                        entry.values = dict(stored) if stored else {}
                self.directory.refill_owner(line, victim_line, core_id)
            entry.dirty = True
            entry.epoch = resolved
            resolved.lines.add(line)
            self._epoch_tags[line] = resolved
            resolved.all_lines.add(line)
            if self.track_values and values:
                if entry.values is None:
                    entry.values = {}
                entry.values.update(values)
            l1._tick = tick = l1._tick + 1
            entry._lru = tick
            lat = self._base_lat[core_id][bank]
        else:
            return -1
        self._lat_sums[core_id] += lat
        self._lat_counts[core_id] += 1
        if lat > self._lat_maxes[core_id]:
            self._lat_maxes[core_id] = lat
        return lat

    # ------------------------------------------------------------------
    # Fused full-miss continuations
    # ------------------------------------------------------------------
    def _fused_miss_at_mc(self, mc_id: int, core_id: int, line: int,
                          bank: int, delivery: int,
                          on_done: Callable[[int], None], issue_time: int,
                          values: Optional[Dict[int, object]],
                          epoch: Optional[Epoch]) -> None:
        # Same controller interaction as _mem_at_mc: the read consults
        # and mutates MC state at the simulated arrival time.
        self.mcs[mc_id].read(line, self._fused_miss_done, core_id, line,
                             bank, delivery, on_done, issue_time, values,
                             epoch)

    def _fused_miss_done(self, core_id: int, line: int, bank: int,
                         delivery: int, on_done: Callable[[int], None],
                         issue_time: int,
                         values: Optional[Dict[int, object]],
                         epoch: Optional[Epoch], time: int) -> None:
        """Completion of a fused full-miss fill (``epoch`` set for
        stores, None for loads).

        Mirrors :meth:`_mem_fill_done` plus the simple-victim tails of
        ``_make_room_llc`` / ``_fill_l1`` / ``_finish_store`` /
        ``_complete``.  Any fill-time hazard -- a race with another
        core, a dirty LLC victim, a dirty L1 victim -- builds the
        request object the scheduled path would have carried and
        delegates to :meth:`_mem_fill_done`, which re-derives everything
        from live state (``retries = 1`` matches the one classifier pass
        the scheduled path took at issue)."""
        bank_cache = self.llc_banks[bank]
        raced = bank_cache.lookup(line)
        l1 = self.l1s[core_id]
        llc_victim = None
        l1_entry = None
        l1_victim = None
        simple = (
            self.directory.owner_of(line) is None
            and (raced is None or not raced.unpersisted)
        )
        if simple and raced is None:
            llc_victim = bank_cache.victim_for(line)
            if llc_victim is not None and llc_victim.dirty:
                simple = False
        if simple:
            l1_entry = l1.lookup(line)
            if l1_entry is None:
                l1_victim = l1.victim_for(line)
                if l1_victim is not None and l1_victim.dirty:
                    simple = False
        if not simple:
            req = _Request(core_id, line, epoch is not None, values,
                           epoch, on_done)
            req.issue_time = issue_time
            req.retries = 1
            self._mem_fill_done(req, bank, delivery, time)
            return
        if raced is None:
            if llc_victim is not None:
                bank_cache.remove(llc_victim.line)
            llc_entry = bank_cache.insert(line)
            if self.track_values:
                stored = self.image.values.get(line)
                llc_entry.values = dict(stored) if stored else {}
        else:
            llc_entry = raced
        if l1_entry is None:
            if l1_victim is not None:
                l1_entry = l1.swap_in(line, l1_victim)
                self.directory.drop_core(l1_victim.line, core_id)
            else:
                l1_entry = l1.swap_in(line)
            if self.track_values:
                if llc_entry.values is not None:
                    l1_entry.values = dict(llc_entry.values)
                else:
                    stored = self.image.values.get(line)
                    l1_entry.values = dict(stored) if stored else {}
        if epoch is not None:
            self.directory.set_owner(line, core_id)
            resolved = epoch.resolve()
            l1_entry.dirty = True
            l1_entry.epoch = resolved
            self._tag_line(resolved, line)
            resolved.all_lines.add(line)
            if self.track_values and values:
                if l1_entry.values is None:
                    l1_entry.values = {}
                l1_entry.values.update(values)
            l1.touch(l1_entry)
        else:
            self.directory.add_sharer(line, core_id)
        eng = self.engine
        done = eng.now + delivery
        sample = done - issue_time
        self._lat_sums[core_id] += sample
        self._lat_counts[core_id] += 1
        if sample > self._lat_maxes[core_id]:
            self._lat_maxes[core_id] = sample
        if (
            self._inline_depth < _MAX_INLINE_DEPTH
            and eng.try_advance(done)
        ):
            self._inline_depth += 1
            try:
                on_done(done)
            finally:
                self._inline_depth -= 1
            return
        eng.schedule_call(delivery, on_done, done)

    # ------------------------------------------------------------------
    # Request state machine
    # ------------------------------------------------------------------
    def _try_access(self, req: _Request) -> None:
        req.retries += 1
        if req.retries > _MAX_REQUEST_RETRIES:
            raise SimulationError(
                f"request for 0x{req.line:x} by core {req.core_id} "
                f"retried {req.retries} times; likely a livelock bug"
            )
        if req.is_store:
            if req.epoch is not None:
                # A split may have moved this in-flight store into the
                # remainder epoch (section 3.3).
                req.epoch = req.epoch.resolve()
            self._try_store(req)
        else:
            self._try_load(req)

    def _complete(self, req: _Request, latency: int) -> None:
        done = self.engine.now + latency
        if not self._fast:
            # Reference path: the straightforward per-request form --
            # domain resolved by f-string, one record per completion, a
            # heap event for the continuation.
            domain = self.stats.domain(f"core{req.core_id}")
            domain.record("mem_latency", done - req.issue_time)
            self.engine.schedule(latency, req.on_done, done)
            return
        sample = done - req.issue_time
        core_id = req.core_id
        self._lat_sums[core_id] += sample
        self._lat_counts[core_id] += 1
        if sample > self._lat_maxes[core_id]:
            self._lat_maxes[core_id] = sample
        # Synchronous fast path: when this completion would be the very
        # next event anyway (nothing else pending at or before ``done``),
        # skip the scheduler round-trip and invoke it inline.  The
        # engine's try_advance enforces exactness -- the firing order is
        # identical to the scheduled path -- and the depth guard keeps
        # hit streaks from growing the Python stack unboundedly.
        if (
            self._inline_depth < _MAX_INLINE_DEPTH
            and self.engine.try_advance(done)
        ):
            self._inline_depth += 1
            try:
                req.on_done(done)
            finally:
                self._inline_depth -= 1
            return
        self.engine.schedule_call(latency, req.on_done, done)

    # -- loads -----------------------------------------------------------
    def _try_load(self, req: _Request) -> None:
        core_id, line = req.core_id, req.line
        l1 = self.l1s[core_id]
        entry = l1.lookup(line)
        if entry is not None:
            l1.touch(entry)
            if self._fast:
                self._l1_hit_counts[core_id] += 1
            else:
                self.stats.domain(f"l1.{core_id}").bump("hits")
            self._complete(req, self.config.l1_latency)
            return

        bank = self.amap.bank_of(line)
        if self._fast:
            base_lat = self._base_lat[core_id][bank]
        else:
            base_lat = (
                self.config.l1_latency
                + 2 * self.mesh.core_to_bank(core_id, bank)
                + self.config.llc_latency
            )
        owner = self.directory.owner_of(line)
        if owner is not None and owner != core_id:
            o_entry = self.l1s[owner].lookup(line)
            if o_entry is not None and o_entry.dirty:
                if o_entry.unpersisted and not self._clear_remote_dependence(
                    req, o_entry.epoch
                ):
                    return
                if not self._writeback_to_llc(owner, o_entry, req,
                                              invalidate=False):
                    return
                self.directory.clear_owner(line)
                if not self._fill_l1(core_id, line, req):
                    return
                self.directory.add_sharer(line, core_id)
                if self._fast:
                    lat = base_lat + 2 * self.mesh.c2c[owner][core_id]
                    self._n_llc_forwards += 1
                else:
                    lat = base_lat + 2 * self.mesh.core_to_core(
                        owner, core_id)
                    self.stats.domain("llc").bump("forwards")
                self._complete(req, lat)
                return
            # Stale ownership record (the dirty copy was cleaned/evicted).
            self.directory.clear_owner(line)

        llc_entry = self.llc_banks[bank].lookup(line)
        if llc_entry is not None:
            if (
                llc_entry.unpersisted
                and llc_entry.epoch.core_id != core_id
                and not self._clear_remote_dependence(req, llc_entry.epoch)
            ):
                return
            self.llc_banks[bank].touch(llc_entry)
            if not self._fill_l1(core_id, line, req, source=llc_entry):
                return
            self.directory.add_sharer(line, core_id)
            if self._fast:
                self._n_llc_hits += 1
            else:
                self.stats.domain("llc").bump("hits")
            self._complete(req, base_lat)
            return

        if self._fast:
            self._n_llc_misses += 1
        else:
            self.stats.domain("llc").bump("misses")
        self._mem_read_fill(req, bank)

    # -- stores ----------------------------------------------------------
    def _try_store(self, req: _Request) -> None:
        core_id, line = req.core_id, req.line
        l1 = self.l1s[core_id]
        entry = l1.lookup(line)

        if entry is not None and entry.dirty:
            # Fast path: this core already owns the line in M state.
            if entry.unpersisted and entry.epoch is not req.epoch:
                self._conflict_stats.bump("intra_thread")
                if self.tracer:
                    self.tracer.record(
                        self.engine.now, "conflict", core_id,
                        type="intra", line=hex(line),
                        source=str(entry.epoch),
                    )
                self._stall_for_flush(req, entry.epoch)
                return
            self._finish_store(req, entry, self.config.l1_latency)
            return

        bank = self.amap.bank_of(line)
        if self._fast:
            base_lat = self._base_lat[core_id][bank]
        else:
            base_lat = (
                self.config.l1_latency
                + 2 * self.mesh.core_to_bank(core_id, bank)
                + self.config.llc_latency
            )
        owner = self.directory.owner_of(line)
        extra_lat = 0
        if owner is not None and owner != core_id:
            o_entry = self.l1s[owner].lookup(line)
            if o_entry is not None and o_entry.dirty:
                if o_entry.unpersisted and not self._clear_remote_dependence(
                    req, o_entry.epoch
                ):
                    return
                # The remote version is written back to the LLC (where it
                # can still persist with its own epoch) and the remote
                # copy is invalidated.
                if not self._writeback_to_llc(owner, o_entry, req,
                                              invalidate=True):
                    return
                if self._fast:
                    extra_lat = 2 * self.mesh.c2c[owner][core_id]
                else:
                    extra_lat = 2 * self.mesh.core_to_core(owner, core_id)
            else:
                if o_entry is not None:
                    self.l1s[owner].remove(line)
                self.directory.drop_core(line, owner)

        llc_entry = self.llc_banks[bank].lookup(line)
        if llc_entry is not None and llc_entry.unpersisted:
            src = llc_entry.epoch
            if src.core_id != core_id:
                if not self._clear_remote_dependence(req, src):
                    return
                # With IDT the old version stays dirty in the LLC and will
                # persist with its own epoch; the new version lives in the
                # requester's L1 under the requester's epoch.
            elif src is not req.epoch:
                self._conflict_stats.bump("intra_thread")
                if self.tracer:
                    self.tracer.record(
                        self.engine.now, "conflict", core_id,
                        type="intra", line=hex(line), source=str(src),
                    )
                self._stall_for_flush(req, src)
                return
            else:
                # Our own current epoch's version fell back to the LLC
                # (L1 replacement); pull the dirty state back up so the
                # line persists from exactly one place.
                llc_entry.dirty = False
                llc_entry.epoch = None

        # Invalidate other sharers and take ownership.
        for sharer in self.directory.sharers_of(line):
            if sharer != core_id:
                self.l1s[sharer].remove(line)

        if entry is None:
            if llc_entry is not None:
                if not self._fill_l1(core_id, line, req, source=llc_entry):
                    return
                entry = l1.lookup(line)
                self.directory.set_owner(line, core_id)
                self._finish_store(req, entry, base_lat + extra_lat)
                return
            # Miss all the way to memory (write-allocate).
            self._mem_read_fill(req, bank, extra_lat=extra_lat)
            return

        # Shared hit upgraded to M.
        self.directory.set_owner(line, core_id)
        self._finish_store(req, entry, base_lat + extra_lat)

    def _finish_store(self, req: _Request, entry: CacheEntry,
                      latency: int) -> None:
        epoch = req.epoch
        if epoch is not None:
            # The epoch may have been split while this store was away at
            # the memory controller; an uncompleted store always lands in
            # the live remainder epoch.
            epoch = req.epoch = epoch.resolve()
        line = req.line
        core_id = req.core_id
        if (
            self._logging_on
            and epoch is not None
            and (not entry.dirty or entry.epoch is not epoch)
        ):
            # First modification of this line in this epoch: undo-log the
            # old value (section 5.2.1).
            old = dict(entry.values) if entry.values is not None else None
            self.undo_logs[core_id].record(epoch, line, old)

        self.directory.set_owner(line, core_id)
        if epoch is not None:
            entry.dirty = True
            entry.epoch = epoch
            self._tag_line(epoch, line)
            epoch.all_lines.add(line)
        elif req.persist_sync or req.wt_async:
            # SP / write-through BSP: the value goes straight to NVRAM;
            # the cached copy is clean.
            entry.dirty = False
            entry.epoch = None
        else:
            entry.dirty = True
            entry.epoch = None
        if self.track_values and req.values:
            if entry.values is None:
                entry.values = {}
            entry.values.update(req.values)
        self.l1s[core_id].touch(entry)

        if req.persist_sync:
            self._persist_through(req, entry, latency, sync=True)
        elif req.wt_async:
            self._persist_through(req, entry, latency, sync=False)
        else:
            self._complete(req, latency)

    def _persist_through(self, req: _Request, entry: CacheEntry,
                         latency: int, sync: bool) -> None:
        line = req.line
        values = dict(entry.values) if entry.values is not None else None
        mc_id = self.amap.mc_of(line)
        mc = self.mcs[mc_id]
        travel = self.mesh.core_to_mc(req.core_id, mc_id)

        if sync:
            self.engine.schedule_call(
                latency + travel, self._issue_write_through,
                mc, line, req.core_id, values, req.on_done,
            )
        else:
            self.engine.schedule_call(
                latency + travel, self._issue_write_through,
                mc, line, req.core_id, values, req.on_persist_ack,
            )
            self._complete(req, latency)

    @staticmethod
    def _issue_write_through(
        mc: MemoryController,
        line: int,
        core_id: int,
        values: Optional[Dict[int, object]],
        callback: Optional[Callable[[int], None]],
    ) -> None:
        mc.write(line, core_id, -1, "data", values, callback=callback)

    # ------------------------------------------------------------------
    # Conflict resolution
    # ------------------------------------------------------------------
    def _clear_remote_dependence(self, req: _Request,
                                 source: Epoch) -> bool:
        """Handle an inter-thread conflict against ``source``.

        Returns True when the request may proceed now (IDT recorded the
        dependence), False when it was parked behind an online flush.
        """
        self._conflict_stats.bump("inter_thread")
        if self.tracer:
            self.tracer.record(
                self.engine.now, "conflict", req.core_id,
                type="inter", line=hex(req.line), source=str(source),
            )
        design = self.config.barrier_design
        src_mgr = self.managers[source.core_id]
        if design.uses_idt:
            if source.ongoing:
                # Deadlock avoidance (section 3.3): split the ongoing
                # source so the dependence lands on a completed prefix.
                self._traced_split(src_mgr, source)

            dependent = self.managers[req.core_id].current_or_new()
            if source.persisted:
                return True
            if self.idt.try_record(source, dependent):
                self._conflict_stats.bump("idt_tracked")
                if self.tracer:
                    self.tracer.record(
                        self.engine.now, "idt_edge", req.core_id,
                        source=str(source), dependent=str(dependent),
                    )
                return True
        if source.ongoing:
            # Without IDT (or on register overflow) the source chain must
            # flush online; split first so the flush can actually finish.
            self._traced_split(src_mgr, source)
        self._stall_for_flush(req, source)
        return False

    def _traced_split(self, src_mgr, source: Epoch) -> None:
        src_mgr.split_epoch(source)
        if self.tracer:
            self.tracer.record(
                self.engine.now, "epoch_split", source.core_id,
                epoch=str(source),
            )

    def _stall_for_flush(self, req: _Request, target: Epoch) -> None:
        """Park ``req`` until ``target`` (and its predecessors) persist."""
        self._conflict_stats.bump("online_flush_stalls")
        start = self.engine.now
        if self.tracer:
            self.tracer.record(
                start, "stall", req.core_id,
                line=hex(req.line), target=str(target),
            )

        def resume() -> None:
            self._conflict_stats.record(
                "online_stall_cycles", self.engine.now - start
            )
            self._try_access(req)

        target.on_persist(resume)
        self.arbiters[target.core_id].request_flush_upto(target, online=True)

    def _retry_after_all(self, req: _Request, blockers: List[Epoch]) -> None:
        remaining = [len(blockers)]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._try_access(req)

        for epoch in blockers:
            epoch.on_persist(one_done)

    def _eviction_allowed(self, victim_epoch: Epoch,
                          req: _Request) -> bool:
        """Check whether a line of ``victim_epoch`` may persist now.

        Replacement of a dirty unpersisted line is an *offline persist* --
        but only if every happens-before predecessor of the line's epoch
        has already persisted; otherwise the line would reach NVRAM ahead
        of older epochs (the Figure 7 violation).  When blocked, the
        predecessors are flushed online and ``req`` retried.
        """
        mgr = self.managers[victim_epoch.core_id]
        blockers: List[Epoch] = []
        prev = mgr.predecessor_of(victim_epoch)
        if prev is not None:
            blockers.append(prev)
        blockers.extend(
            src for src in victim_epoch.idt_sources if not src.persisted
        )
        if not blockers:
            return True
        self._conflict_stats.bump("eviction_conflicts")
        for blocker in blockers:
            self.arbiters[blocker.core_id].request_flush_upto(
                blocker, online=True
            )
        self._retry_after_all(req, blockers)
        return False

    # ------------------------------------------------------------------
    # Movement helpers
    # ------------------------------------------------------------------
    def _writeback_to_llc(self, owner: int, o_entry: CacheEntry,
                          req: _Request, invalidate: bool) -> bool:
        """Write a dirty L1 line back into the LLC, keeping its epoch tag.

        Returns False when the writeback hit a persist-ordering conflict
        and ``req`` was parked.
        """
        line = o_entry.line
        bank_cache = self.llc_banks[self.amap.bank_of(line)]
        llc_entry = bank_cache.lookup(line)
        if llc_entry is None:
            if not self._make_room_llc(bank_cache, line, req):
                return False
            llc_entry = bank_cache.insert(line)
        elif (
            llc_entry.unpersisted
            and llc_entry.epoch is not o_entry.epoch
        ):
            # Two-version collision: the LLC's older version must persist
            # before it can be overwritten.
            self._conflict_stats.bump("version_collisions")
            self._stall_for_flush(req, llc_entry.epoch)
            return False

        if o_entry.values is not None:
            if llc_entry.values is None:
                llc_entry.values = {}
            llc_entry.values.update(o_entry.values)
        llc_entry.dirty = o_entry.dirty
        llc_entry.epoch = o_entry.epoch
        bank_cache.touch(llc_entry)
        if invalidate:
            self.l1s[owner].remove(line)
            self.directory.drop_core(line, owner)
        else:
            o_entry.dirty = False
            o_entry.epoch = None
        return True

    def _make_room_llc(self, bank_cache: SetAssociativeCache, line: int,
                       req: _Request) -> bool:
        victim = bank_cache.victim_for(line)
        if victim is None:
            return True
        if victim.dirty:
            if victim.unpersisted:
                if not self._eviction_allowed(victim.epoch, req):
                    return False
                self._note_dirty_eviction()
                self.persist_line(victim, victim.epoch, kind="eviction")
                return True
            self._note_dirty_eviction()
            self.persist_line(victim, None, kind="eviction",
                              evictor_core=req.core_id)
            return True
        bank_cache.remove(victim.line)
        return True

    def _fill_l1(self, core_id: int, line: int, req: _Request,
                 source: Optional[CacheEntry] = None) -> bool:
        l1 = self.l1s[core_id]
        if l1.lookup(line) is not None:
            return True
        victim = l1.victim_for(line)
        if victim is not None and victim.dirty:
            if not self._writeback_to_llc(core_id, victim, req,
                                          invalidate=True):
                return False
            victim = None  # the writeback already removed it
        if victim is not None:
            entry = l1.swap_in(line, victim)
            self.directory.drop_core(victim.line, core_id)
        else:
            entry = l1.swap_in(line)
        if self.track_values:
            if source is not None and source.values is not None:
                entry.values = dict(source.values)
            else:
                stored = self.image.values.get(line)
                entry.values = dict(stored) if stored else {}
        return True

    def _mem_read_fill(self, req: _Request, bank: int,
                       extra_lat: int = 0) -> None:
        line = req.line
        mc_id = self.amap.mc_of(line)
        if self._fast:
            bank_mc = self.mesh.b2mc[bank][mc_id]
            travel = self._fill_travel[req.core_id][bank] + bank_mc
            delivery = bank_mc + self.mesh.c2b[req.core_id][bank] + extra_lat
        else:
            travel = (
                self.config.l1_latency
                + self.mesh.core_to_bank(req.core_id, bank)
                + self.config.llc_latency
                + self.mesh.bank_to_mc(bank, mc_id)
            )
            delivery = (
                self.mesh.bank_to_mc(bank, mc_id)
                + self.mesh.core_to_bank(req.core_id, bank)
                + extra_lat
            )

        self.engine.schedule_call(travel, self._mem_at_mc,
                                  mc_id, req, bank, delivery)

    def _mem_at_mc(self, mc_id: int, req: _Request, bank: int,
                   delivery: int) -> None:
        self.mcs[mc_id].read(req.line, self._mem_fill_done,
                             req, bank, delivery)

    def _mem_fill_done(self, req: _Request, bank: int, delivery: int,
                       _time: int) -> None:
        line = req.line
        bank_cache = self.llc_banks[bank]
        raced_entry = bank_cache.lookup(line)
        if self.directory.owner_of(line) is not None or (
            raced_entry is not None and raced_entry.unpersisted
        ):
            # Another core's store completed (or wrote back a dirty
            # version) while our read was at the memory controller;
            # reclassify from scratch so ownership and conflict
            # checks see the new state.
            if self._fast:
                self._n_llc_fill_races += 1
            else:
                self.stats.domain("llc").bump("fill_races")
            self._try_access(req)
            return
        if raced_entry is None:
            if not self._make_room_llc(bank_cache, line, req):
                return
            llc_entry = bank_cache.insert(line)
            if self.track_values:
                stored = self.image.values.get(line)
                llc_entry.values = dict(stored) if stored else {}
        else:
            llc_entry = bank_cache.lookup(line)
        if not self._fill_l1(req.core_id, line, req, source=llc_entry):
            return
        if req.is_store:
            self.directory.set_owner(line, req.core_id)
            entry = self.l1s[req.core_id].lookup(line)
            self._finish_store(req, entry, delivery)
        else:
            self.directory.add_sharer(line, req.core_id)
            self._complete(req, delivery)

    # ------------------------------------------------------------------
    # Per-line epoch tags
    # ------------------------------------------------------------------
    def _tag_line(self, epoch: Epoch, line: int) -> None:
        """Add ``line`` to ``epoch``'s unpersisted set, tagging the line.

        Every mutation of an ``Epoch.lines`` set goes through here or
        :meth:`_untag_line` so the fast mode's tag map stays exact.  A
        line already tagged by another epoch gains a depth count: the
        IDT case where the older version was written back to the LLC
        while the newer lives in the requester's L1.  The tag always
        points at the newest version's epoch.
        """
        lines = epoch.lines
        if line in lines:
            return
        lines.add(line)
        if self._fast:
            tags = self._epoch_tags
            if line in tags:
                self._tag_depth[line] = self._tag_depth.get(line, 1) + 1
            tags[line] = epoch

    def _untag_line(self, epoch: Epoch, line: int) -> bool:
        """Remove ``line`` from ``epoch``'s unpersisted set.

        Returns False (leaving the tag map untouched) when the epoch no
        longer tracked the line -- the flush walker's "already in
        flight" case.  With stacked versions only the depth drops: the
        older version always leaves the dirty domain first (its flush is
        what the newer version's IDT edge waits for; evictions and
        writeback collisions are gated the same way), so the tag keeps
        pointing at the newest epoch and never needs a rescan.
        """
        lines = epoch.lines
        if line not in lines:
            return False
        lines.remove(line)
        if self._fast:
            depth = self._tag_depth.get(line)
            if depth is None:
                del self._epoch_tags[line]
            elif depth == 2:
                del self._tag_depth[line]
            else:
                self._tag_depth[line] = depth - 1
        return True

    # ------------------------------------------------------------------
    # Persistence primitives
    # ------------------------------------------------------------------
    def line_in_l1(self, core_id: int, line: int, epoch: Epoch) -> bool:
        entry = self.l1s[core_id].lookup(line)
        return entry is not None and entry.dirty and entry.epoch is epoch

    def locate_epoch_line(
        self, epoch: Epoch, line: int
    ) -> Tuple[Optional[CacheEntry], Optional[int]]:
        """Find the cache entry holding ``epoch``'s version of ``line``.

        Returns ``(entry, l1_core)`` -- ``l1_core`` is None for
        LLC-resident lines -- or ``(None, None)`` if the version already
        left the caches (its NVRAM write is in flight).
        """
        entry = self.l1s[epoch.core_id].lookup(line)
        if entry is not None and entry.dirty and entry.epoch is epoch:
            return entry, epoch.core_id
        entry = self.llc_banks[self.amap.bank_of(line)].lookup(line)
        if entry is not None and entry.dirty and entry.epoch is epoch:
            return entry, None
        return None, None

    def flush_line_transition(
        self,
        entry: CacheEntry,
        line: int,
        invalidate: bool,
        from_l1_core: Optional[int],
    ) -> Optional[Dict[int, object]]:
        """Cache-side transition of a line leaving the dirty domain.

        Returns the value snapshot to commit (ownership passes to the
        NVRAM image).  Shared between the flush engine's issue walker and
        :meth:`persist_line`.
        """
        values = dict(entry.values) if entry.values is not None else None
        if invalidate:
            # clflush semantics: every cached copy is invalidated.
            if from_l1_core is not None:
                self.l1s[from_l1_core].remove(line)
            self.llc_banks[self.amap.bank_of(line)].remove(line)
            for sharer in self.directory.sharers_of(line):
                self.l1s[sharer].remove(line)
            owner = self.directory.owner_of(line)
            if owner is not None:
                self.l1s[owner].remove(line)
            self.directory.drop_line(line)
        else:
            # clwb semantics: the copy stays cached, now clean.
            entry.dirty = False
            entry.epoch = None
            if from_l1_core is not None:
                self.directory.clear_owner(line)
                if values is not None:
                    llc_entry = self.llc_banks[
                        self.amap.bank_of(line)].lookup(line)
                    if llc_entry is not None:
                        llc_entry.values = dict(values)
        return values

    def persist_line(
        self,
        entry: CacheEntry,
        epoch: Optional[Epoch],
        kind: str,
        extra_delay: int = 0,
        on_ack: Optional[Callable[[int], None]] = None,
        invalidate: bool = False,
        from_l1_core: Optional[int] = None,
        evictor_core: int = -1,
    ) -> None:
        """Issue a durable write of ``entry``'s current value.

        The cache-side transition happens now (the version leaves the
        dirty domain); the NVRAM image commit and ``on_ack`` fire when the
        memory controller acknowledges the write.  Used by the eviction
        paths; epoch flushes go through the batch machinery in
        :mod:`repro.core.flush` instead.
        """
        line = entry.line
        if epoch is not None:
            self._untag_line(epoch, line)
            epoch.inflight_writes += 1
            core_id, seq = epoch.core_id, epoch.seq
        else:
            core_id, seq = evictor_core, -1

        if kind == "eviction":
            # LLC replacement: only the LLC copy disappears.
            values = dict(entry.values) if entry.values is not None else None
            self.llc_banks[self.amap.bank_of(line)].remove(line)
        else:
            values = self.flush_line_transition(
                entry, line, invalidate, from_l1_core
            )

        mc = self.mcs[self.amap.mc_of(line)]
        if extra_delay:
            self.engine.schedule_call(
                extra_delay, self._issue_persist,
                mc, line, core_id, seq, kind, values, epoch, on_ack,
            )
        else:
            self._issue_persist(
                mc, line, core_id, seq, kind, values, epoch, on_ack
            )

    def _issue_persist(
        self,
        mc: MemoryController,
        line: int,
        core_id: int,
        seq: int,
        kind: str,
        values: Optional[Dict[int, object]],
        epoch: Optional[Epoch],
        on_ack: Optional[Callable[[int], None]],
    ) -> None:
        if epoch is None and on_ack is None:
            mc.write(line, core_id, seq, kind, values)
        else:
            mc.write(line, core_id, seq, kind, values,
                     callback=self._persist_acked, cb_args=(epoch, on_ack))

    def _persist_acked(self, epoch: Optional[Epoch],
                       on_ack: Optional[Callable[[int], None]],
                       time: int) -> None:
        if epoch is not None:
            epoch.inflight_writes -= 1
            self.maybe_persist(epoch)
        if on_ack is not None:
            on_ack(time)

    def maybe_persist(self, epoch: Epoch) -> None:
        """Declare ``epoch`` persisted if every condition now holds."""
        if epoch.persisted or epoch.flush_active:
            return
        if not epoch.complete or not epoch.empty:
            return
        mgr = self.managers[epoch.core_id]
        if not mgr.deps_persisted(epoch):
            return
        mgr.mark_persisted(epoch)
        if self.tracer:
            self.tracer.record(
                self.engine.now, "epoch_persist", epoch.core_id,
                epoch=str(epoch), conflict=epoch.conflict_flush,
            )
        self.arbiters[epoch.core_id].pump()

    def _proactive_flush(self, epoch: Epoch) -> None:
        """PF (section 3.2): flush an epoch as soon as it completes."""
        self.arbiters[epoch.core_id].request_flush_upto(
            epoch, online=False, mark_conflict=False
        )

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def core_finished(self, core_id: int) -> None:
        self._active_cores -= 1
        if self._active_cores == 0:
            self._finish_time = self.engine.now

    def run(
        self,
        programs: List,
        max_cycles: Optional[int] = None,
        drain: bool = True,
    ) -> RunResult:
        """Execute one program per core and return the results.

        ``programs`` is a list of per-thread op iterables, at most one per
        core.  With ``drain`` (the default) all remaining epochs are
        flushed after the last core finishes, yielding the durable
        completion time alongside the visible one.
        """
        if len(programs) > self.config.num_cores:
            raise ValueError(
                f"{len(programs)} programs for {self.config.num_cores} cores"
            )
        if self.cores:
            raise RuntimeError("machine already ran; build a fresh Multicore")
        self.cores = [
            Core(core_id, self, ops) for core_id, ops in enumerate(programs)
        ]
        self._active_cores = len(self.cores)
        for core in self.cores:
            core.start()
        self.engine.run(until=max_cycles)
        for core in self.cores:
            core.flush_hot_stats()

        finished = self._finish_time is not None
        cycles_visible = self._finish_time
        cycles_durable: Optional[int] = None
        if finished and drain:
            for arbiter in self.arbiters:
                arbiter.drain_all()
            self.engine.run(until=max_cycles)
            # A trailing ongoing epoch that never received a store (it
            # exists only because a load recorded an IDT dependence) has
            # nothing to persist and does not count against durability.
            drained = all(
                epoch.ongoing and epoch.num_stores == 0
                and epoch.pending_stores == 0 and epoch.empty
                for mgr in self.managers
                for epoch in mgr.window
            )
            if drained:
                cycles_durable = self.engine.now
        if finished and drain and self.faults is not None:
            # The unsound reorder fault may hold a partial batch of
            # deferred persists; a completed (non-crash) run flushes
            # them so the final image is whole.  Crash captures run with
            # drain=False and deliberately lose them ("in flight").
            self.image.flush_reorder_buffer()
        self._flush_hot_stats()
        return RunResult(
            cycles_visible=cycles_visible,
            cycles_durable=cycles_durable,
            stats=self.stats,
            config=self.config,
            finished=finished,
        )

    def _note_epoch_flush(self, num_lines: int) -> None:
        """Account one epoch flush (called by FlushOperation.start)."""
        if self._fast:
            self._n_epoch_flushes += 1
            self._fel_sum += num_lines
            self._fel_count += 1
            if num_lines > self._fel_max:
                self._fel_max = num_lines
        else:
            self._flush_domain.bump("epoch_flushes")
            self._flush_domain.record("flush_epoch_lines", num_lines)

    def _note_dirty_eviction(self) -> None:
        if self._fast:
            self._n_llc_dirty_evictions += 1
        else:
            self.stats.domain("llc").bump("dirty_evictions")

    def _flush_hot_stats(self) -> None:
        """Merge all attribute-held hot counters into the stat domains.

        Covers the machine's own hoists (L1 hit counts, LLC access and
        flush counts, memory-latency samples), the cache arrays' fill
        counts and the memory controllers'; the cores flush their own
        right after the visible phase.  Idempotent, like the component
        flushes it delegates to.
        """
        for core_id in range(self.config.num_cores):
            hits = self._l1_hit_counts[core_id]
            if hits:
                self._l1_domains[core_id].bump("hits", hits)
                self._l1_hit_counts[core_id] = 0
            count = self._lat_counts[core_id]
            if count:
                self._core_domains[core_id].merge_samples(
                    "mem_latency", self._lat_sums[core_id], count,
                    self._lat_maxes[core_id],
                )
                self._lat_sums[core_id] = 0
                self._lat_counts[core_id] = 0
                self._lat_maxes[core_id] = 0
        llc = self._llc_domain
        for key, value in (
            ("hits", self._n_llc_hits),
            ("misses", self._n_llc_misses),
            ("forwards", self._n_llc_forwards),
            ("fill_races", self._n_llc_fill_races),
            ("dirty_evictions", self._n_llc_dirty_evictions),
        ):
            if value:
                llc.bump(key, value)
        self._n_llc_hits = self._n_llc_misses = 0
        self._n_llc_forwards = self._n_llc_fill_races = 0
        self._n_llc_dirty_evictions = 0
        if self._n_epoch_flushes:
            self._flush_domain.bump("epoch_flushes", self._n_epoch_flushes)
            self._n_epoch_flushes = 0
        if self._fel_count:
            self._flush_domain.merge_samples(
                "flush_epoch_lines", self._fel_sum, self._fel_count,
                self._fel_max,
            )
            self._fel_sum = self._fel_count = self._fel_max = 0
        for cache in self.l1s:
            cache.flush_hot_stats()
        for cache in self.llc_banks:
            cache.flush_hot_stats()
        for mc in self.mcs:
            mc.flush_hot_stats()
        for arbiter in self.arbiters:
            arbiter.flush_hot_stats()

    def handshake_counters(self) -> dict:
        """Machine-wide handshake message totals (digest-invisible).

        The aggregate of every core's :class:`HandshakeStats`, plus the
        per-core breakdown -- the payload the bench harness records for
        the messages-per-flush scaling curves and compares fast vs
        reference (the counters are bumped identically in both engine
        modes; this accessor is the parity probe).
        """
        total = HandshakeStats()
        for hs in self.handshake:
            total.merge(hs)
        out = total.as_dict()
        out["per_core"] = [hs.as_dict() for hs in self.handshake]
        return out

    # ------------------------------------------------------------------
    # Invariant auditing (used by the test suite)
    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Check cross-structure invariants; raises AssertionError."""
        for mgr in self.managers:
            mgr.audit()
            for epoch in mgr.window:
                for line in epoch.lines:
                    entry, _ = self.locate_epoch_line(epoch, line)
                    if entry is None:
                        raise AssertionError(
                            f"{epoch} tracks 0x{line:x} but no cache holds it"
                        )
                if epoch.inflight_writes < 0 or epoch.pending_stores < 0:
                    raise AssertionError(f"negative accounting on {epoch}")
        for core_id, l1 in enumerate(self.l1s):
            for entry in l1.dirty_entries():
                if entry.epoch is not None:
                    if entry.epoch.core_id != core_id:
                        raise AssertionError(
                            f"L1.{core_id} holds foreign-epoch dirty line "
                            f"0x{entry.line:x}"
                        )
                    if entry.line not in entry.epoch.lines:
                        raise AssertionError(
                            f"dirty 0x{entry.line:x} missing from "
                            f"{entry.epoch}"
                        )
        for bank in self.llc_banks:
            for entry in bank.dirty_entries():
                if entry.epoch is not None and not entry.epoch.persisted:
                    if entry.line not in entry.epoch.lines:
                        raise AssertionError(
                            f"LLC dirty 0x{entry.line:x} missing from "
                            f"{entry.epoch}"
                        )
        if self._fast:
            # The epoch-tag map must be exactly the union of the window
            # epochs' line sets, with the depth dict matching every
            # line's version multiplicity and each tag naming an epoch
            # that actually holds the line.
            counts: Dict[int, int] = {}
            holders: Dict[int, List[Epoch]] = {}
            for mgr in self.managers:
                for epoch in mgr.window:
                    for line in epoch.lines:
                        counts[line] = counts.get(line, 0) + 1
                        holders.setdefault(line, []).append(epoch)
            if counts.keys() != self._epoch_tags.keys():
                stale = self._epoch_tags.keys() - counts.keys()
                missing = counts.keys() - self._epoch_tags.keys()
                raise AssertionError(
                    f"epoch-tag map out of sync: stale="
                    f"{[hex(l) for l in stale]} missing="
                    f"{[hex(l) for l in missing]}"
                )
            for line, n in counts.items():
                if self._epoch_tags[line] not in holders[line]:
                    raise AssertionError(
                        f"tag for 0x{line:x} names an epoch not holding it"
                    )
                depth = self._tag_depth.get(line)
                if (depth or 1) != n:
                    raise AssertionError(
                        f"0x{line:x} has {n} versions but depth {depth}"
                    )
            for line in self._tag_depth:
                if line not in counts:
                    raise AssertionError(
                        f"stale depth entry for 0x{line:x}"
                    )
