"""Sharded serving: cross-shard ownership migration at high core counts.

The scaling sweep needs a workload where handshake volume comes from
*real* cross-thread handoff, not just a private hotset -- the Durable
Queues result (PAPERS.md) is that contended cross-thread transfer is
where persist-barrier message traffic actually bites.  This variant
shards a single shared keyspace across threads:

* **Shared keyspace, home shards.**  All threads address one keyspace
  at a fixed base (unlike the per-thread private heaps of the Table 2
  micros).  Shard ``s`` owns the contiguous slot range
  ``[s * keys_per_shard, (s+1) * keys_per_shard)`` and thread ``t``'s
  home shard is ``t % num_shards``; in-shard traffic stays thread-local
  exactly like ``serving``.
* **Cross-shard ownership migration.**  With probability
  ``migrate_fraction`` a PUT targets a *remote* shard: the thread
  claims the shard by a read-modify-write of its ownership word (one
  cache line per shard, so claims collide), rewrites the entry, and
  publishes -- the persist-then-publish idiom across a line another
  core's epoch just wrote.  Each migration drags entry + index +
  ownership lines between L1s, which is precisely the inter-thread
  conflict / IDT / handshake traffic the message-accounting counters
  meter.
* **Per-transaction durability**, same PUT/GET shape as ``serving``:
  a PUT rewrites the 512-byte entry, publishes through an 8-byte index
  slot, and closes with a persist barrier; a GET follows the index to
  the entry.

Registered with the micro factory as ``sharded_serving`` so the bench
scaling sweep can name it like any Table 2 benchmark.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register

# Fixed shared layout: every thread computes the same addresses.  Sits
# between the shared-statistics region (0x0800_0000) and the private
# thread heaps (0x1000_0000+); entries, then index slots, then one
# ownership line per shard.
_KEYSPACE_BASE = 0x0900_0000


@register
class ShardedServingWorkload(MicroBenchmark):
    name = "sharded_serving"

    def __init__(
        self,
        *args,
        num_keys: int = 1024,
        num_shards: int = 4,
        migrate_fraction: float = 0.2,
        put_fraction: float = 0.5,
        think_cycles: int = 0,
        shared_update_every: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            *args,
            think_cycles=think_cycles,
            shared_update_every=shared_update_every,
            **kwargs,
        )
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if num_keys < num_shards:
            raise ValueError("need at least one key per shard")
        if not 0.0 <= migrate_fraction <= 1.0:
            raise ValueError("migrate_fraction must be within [0, 1]")
        if not 0.0 <= put_fraction <= 1.0:
            raise ValueError("put_fraction must be within [0, 1]")
        self.num_keys = num_keys
        self.num_shards = num_shards
        self.migrate_fraction = migrate_fraction
        self.put_fraction = put_fraction
        self.keys_per_shard = num_keys // num_shards
        self.home_shard = self.thread_id % num_shards

        self._entries = _KEYSPACE_BASE
        self._index = self._entries + num_keys * ENTRY_SIZE
        index_end = self._index + num_keys * 8
        # Ownership words on line boundaries: one line per shard.
        self._owners = (
            (index_end + self.line_size - 1) & ~(self.line_size - 1)
        )

    # ------------------------------------------------------------------
    def _draw_slot(self, shard: int) -> int:
        """Uniform slot within ``shard``'s contiguous range."""
        return (shard * self.keys_per_shard
                + self.rng.randrange(self.keys_per_shard))

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        # Like serving: no warm-up population -- a GET of a never-written
        # key legally reads the zeroed NVRAM image.
        return iter(())

    def transaction(self) -> Iterator[Op]:
        migrate = (self.num_shards > 1
                   and self.rng.random() < self.migrate_fraction)
        if migrate:
            # Ownership migration: claim a remote shard, then PUT into
            # it.  The claim is a RMW of the shard's ownership line --
            # the contended handoff the handshake counters meter.
            shard = self.rng.randrange(self.num_shards - 1)
            if shard >= self.home_shard:
                shard += 1
            owner_addr = self._owners + shard * self.line_size
            yield self.load_field(owner_addr)
            yield self.store_field(
                owner_addr, ("own", self.thread_id, self._txn_counter, shard)
            )
        else:
            shard = self.home_shard
        slot = self._draw_slot(shard)
        entry_addr = self._entries + slot * ENTRY_SIZE
        index_addr = self._index + slot * 8
        if migrate or self.rng.random() < self.put_fraction:
            # PUT (migrations always write): entry body, publish through
            # the index slot, make the group durable.
            yield from self.store_obj(
                entry_addr, ENTRY_SIZE,
                ("put", self.thread_id, self._txn_counter, slot),
            )
            yield self.store_field(
                index_addr, ("idx", self.thread_id, self._txn_counter, slot)
            )
            yield barrier()
        else:
            yield self.load_field(index_addr)
            yield from self.load_obj(entry_addr, ENTRY_SIZE)
