"""Serving: a zipfian key-value store front-end at scale.

The ROADMAP's north-star scenario -- "heavy traffic from millions of
users" hitting a persistent store -- needs a workload whose *statistics*
look like a serving tier rather than a data-structure stress loop:

* **Zipfian key popularity** (``s`` ~ 0.99, the YCSB default): a few hot
  keys dominate while the tail is effectively unbounded.  The keyspace
  (``num_keys`` x 512-byte entries, 2 MB at the default 4096 keys) is
  chosen to dwarf the LLC, so tail traffic misses all the way out while
  hot keys stay cache-resident -- both paths matter.
* **Bursty arrivals**: requests come in bursts of ``burst_length``
  transactions separated by ``burst_gap_cycles`` of idle compute, the
  arrival shape of a batched RPC front-end.  The gaps let in-flight
  epoch flushes complete, so the drain of the next burst begins against
  a quiet persist pipeline -- precisely the window the fast-forward
  engine targets.
* **Mixed read/write with per-transaction durability**: a PUT rewrites
  the whole 512-byte entry, publishes it with an 8-byte index-slot
  store, and closes with a persist barrier (the standard
  persist-then-publish idiom); a GET reads the index slot and then the
  entry.  ``put_fraction`` defaults to 30% writes.

The op stream is generated lazily (``ops`` is a generator all the way
down), so million-transaction programs run in constant memory.

Registered with the micro factory as ``serving`` so the bench / crash
sweep plumbing can name it like any Table 2 benchmark, but it lives in
``workloads.apps`` because it models an application tier, not a data
structure.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List

from repro.workloads.base import Op, barrier, compute
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register


@register
class ServingWorkload(MicroBenchmark):
    name = "serving"

    def __init__(
        self,
        *args,
        num_keys: int = 4096,
        zipf_s: float = 0.99,
        put_fraction: float = 0.3,
        burst_length: int = 64,
        burst_gap_cycles: int = 2000,
        think_cycles: int = 0,
        shared_update_every: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            *args,
            think_cycles=think_cycles,
            shared_update_every=shared_update_every,
            **kwargs,
        )
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        if not 0.0 <= put_fraction <= 1.0:
            raise ValueError("put_fraction must be within [0, 1]")
        self.num_keys = num_keys
        self.zipf_s = zipf_s
        self.put_fraction = put_fraction
        self.burst_length = burst_length
        self.burst_gap_cycles = burst_gap_cycles

        # Zipf(s) over ranks 1..num_keys as a cumulative table; a draw
        # is one uniform variate and a bisect.  Popularity rank is
        # decoupled from storage position by a one-time shuffle so hot
        # keys scatter across the keyspace instead of clustering at the
        # low addresses.
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, num_keys + 1):
            total += 1.0 / rank ** zipf_s
            cdf.append(total)
        self._cdf = cdf
        self._cdf_total = total
        slots = list(range(num_keys))
        self.rng.shuffle(slots)
        self._rank_to_slot = slots

        self._entries = self.heap.alloc(num_keys * ENTRY_SIZE)
        self._index = self.heap.alloc(num_keys * 8)

    # ------------------------------------------------------------------
    def _draw_key(self) -> int:
        """One zipfian draw: storage slot of the chosen key."""
        u = self.rng.random() * self._cdf_total
        rank = bisect_left(self._cdf, u)
        if rank >= self.num_keys:
            rank = self.num_keys - 1
        return self._rank_to_slot[rank]

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        # No warm-up population: a GET of a never-written key legally
        # reads the zeroed NVRAM image, and pre-touching a 2 MB keyspace
        # would dominate short runs.
        return iter(())

    def transaction(self) -> Iterator[Op]:
        if self.burst_length and self._txn_counter and (
            self._txn_counter % self.burst_length == 0
        ):
            # Inter-burst gap: the front-end waits for the next batch.
            yield compute(self.burst_gap_cycles)
        slot = self._draw_key()
        entry_addr = self._entries + slot * ENTRY_SIZE
        index_addr = self._index + slot * 8
        if self.rng.random() < self.put_fraction:
            # PUT: write the entry body, then publish it through the
            # index slot, then make the pair durable.
            yield from self.store_obj(
                entry_addr, ENTRY_SIZE,
                ("put", self.thread_id, self._txn_counter, slot),
            )
            yield self.store_field(
                index_addr, ("idx", self.thread_id, self._txn_counter, slot)
            )
            yield barrier()
        else:
            # GET: follow the index slot to the entry body.
            yield self.load_field(index_addr)
            yield from self.load_obj(entry_addr, ENTRY_SIZE)
