"""Synthetic stand-ins for the PARSEC / SPLASH-2 / STAMP workloads.

The paper evaluates BSP on canneal, dedup, freqmine (PARSEC), barnes,
cholesky, radix (SPLASH-2) and intruder, ssca2, vacation (STAMP).  We
cannot run the real binaries inside a Python trace-driven simulator, so
each benchmark is replaced by a trace generator calibrated to the
traffic properties that drive the BSP results: store intensity, working
set size, access locality, and -- critically, since 86% of BSP conflicts
are inter-thread -- the amount and granularity of inter-thread sharing.
See DESIGN.md section 2 for the substitution rationale.
"""

from repro.workloads.apps.generator import AppWorkload, app_programs
from repro.workloads.apps.profiles import APP_PROFILES, AppProfile

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "AppWorkload",
    "app_programs",
    "ServingWorkload",
    "ShardedServingWorkload",
]


def __getattr__(name):
    # Lazy: serving subclasses MicroBenchmark, and importing it here
    # eagerly would drag workloads.micro into every apps import.
    if name == "ServingWorkload":
        from repro.workloads.apps.serving import ServingWorkload
        return ServingWorkload
    if name == "ShardedServingWorkload":
        from repro.workloads.apps.sharded import ShardedServingWorkload
        return ShardedServingWorkload
    raise AttributeError(name)
