"""Per-benchmark traffic profiles.

Each profile captures the qualitative characterization of its benchmark
from the PARSEC / SPLASH-2 / STAMP literature, reduced to the parameters
that matter for persist-barrier behaviour:

* ``store_fraction``    -- stores as a fraction of memory operations.
* ``working_set_lines`` -- per-thread private working set (cache lines).
* ``hot_lines`` / ``hot_bias`` -- temporal locality: ``hot_bias`` of
  private accesses land on ``hot_lines`` hot cache lines.  This is the
  write-coalescing lever: within one epoch, repeated stores to a hot
  line persist once, so larger epochs persist fewer lines per store
  (the effect behind Figure 13).
* ``shared_fraction``   -- probability a memory op targets the global
  shared pool rather than private data.
* ``shared_lines``      -- size of the shared pool; smaller pools mean
  finer-grained (more conflict-prone) sharing.
* ``shared_write_fraction`` -- stores among shared accesses; read-write
  sharing of recently written lines is what creates inter-thread
  persist dependencies (86% of BSP conflicts in the paper).
* ``compute_per_op``    -- average non-memory cycles between memory ops
  (an IPC proxy; lower = more memory-intensive).

ssca2 is the outlier by design: the paper singles it out as "a write
intensive benchmark with fine grained interaction between threads" whose
epoch-persist count is very high (4.22x under LB, 2.62x under LB++).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class AppProfile:
    name: str
    suite: str
    store_fraction: float
    working_set_lines: int
    hot_lines: int
    hot_bias: float
    shared_fraction: float
    shared_lines: int
    shared_write_fraction: float
    compute_per_op: int

    def __post_init__(self) -> None:
        for frac in (self.store_fraction, self.hot_bias,
                     self.shared_fraction, self.shared_write_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"{self.name}: fraction out of range")
        if min(self.working_set_lines, self.shared_lines,
               self.hot_lines) < 1:
            raise ValueError(f"{self.name}: need non-empty regions")
        if self.hot_lines > self.working_set_lines:
            raise ValueError(f"{self.name}: hot set larger than working set")


APP_PROFILES: Dict[str, AppProfile] = {
    profile.name: profile
    for profile in [
        # PARSEC -------------------------------------------------------
        AppProfile(
            name="canneal", suite="parsec",
            store_fraction=0.30, working_set_lines=4096,
            hot_lines=96, hot_bias=0.70,
            shared_fraction=0.030, shared_lines=1024,
            shared_write_fraction=0.25, compute_per_op=12,
        ),
        AppProfile(
            name="dedup", suite="parsec",
            store_fraction=0.30, working_set_lines=2048,
            hot_lines=64, hot_bias=0.75,
            shared_fraction=0.025, shared_lines=512,   # pipeline hand-off
            shared_write_fraction=0.30, compute_per_op=14,
        ),
        AppProfile(
            name="freqmine", suite="parsec",
            store_fraction=0.28, working_set_lines=2048,
            hot_lines=64, hot_bias=0.80,              # FP-tree reuse
            shared_fraction=0.004, shared_lines=1024,
            shared_write_fraction=0.20, compute_per_op=16,
        ),
        # SPLASH-2 -----------------------------------------------------
        AppProfile(
            name="barnes", suite="splash2",
            store_fraction=0.30, working_set_lines=2048,
            hot_lines=96, hot_bias=0.70,
            shared_fraction=0.008, shared_lines=512,   # tree bodies
            shared_write_fraction=0.30, compute_per_op=14,
        ),
        AppProfile(
            name="cholesky", suite="splash2",
            store_fraction=0.25, working_set_lines=1024,
            hot_lines=48, hot_bias=0.85,              # blocked reuse
            shared_fraction=0.003, shared_lines=512,
            shared_write_fraction=0.25, compute_per_op=16,
        ),
        AppProfile(
            name="radix", suite="splash2",
            store_fraction=0.45, working_set_lines=4096,
            hot_lines=256, hot_bias=0.55,             # streaming
            shared_fraction=0.002, shared_lines=512,
            shared_write_fraction=0.50, compute_per_op=10,
        ),
        # STAMP --------------------------------------------------------
        AppProfile(
            name="intruder", suite="stamp",
            store_fraction=0.35, working_set_lines=1024,
            hot_lines=64, hot_bias=0.75,
            shared_fraction=0.040, shared_lines=256,   # shared queues
            shared_write_fraction=0.30, compute_per_op=10,
        ),
        AppProfile(
            name="ssca2", suite="stamp",
            store_fraction=0.45, working_set_lines=2048,
            hot_lines=128, hot_bias=0.55,
            shared_fraction=0.10, shared_lines=256,   # fine-grained graph
            shared_write_fraction=0.30, compute_per_op=8,
        ),
        AppProfile(
            name="vacation", suite="stamp",
            store_fraction=0.30, working_set_lines=2048,
            hot_lines=80, hot_bias=0.70,              # reservation trees
            shared_fraction=0.030, shared_lines=512,
            shared_write_fraction=0.35, compute_per_op=12,
        ),
    ]
}

APP_NAMES = list(APP_PROFILES)
