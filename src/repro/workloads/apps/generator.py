"""Trace generation from an :class:`AppProfile`.

Each thread interleaves compute with memory operations drawn from two
regions:

* a per-thread private region with a hot/cold split (``hot_bias`` of
  accesses hit the hottest ``hot_fraction`` of lines), and
* a global shared pool.  To model read-write sharing realistically, a
  shared *store* publishes the line to a small recently-written window;
  shared *loads* preferentially consume lines from that window, which is
  exactly the access pattern that creates inter-thread persist
  dependencies (a consumer reading a producer's unpersisted epoch).

Under BSP the hardware inserts the epoch boundaries, so the generated
streams contain no explicit barriers -- the benchmarks run unmodified,
as in the paper.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.workloads.apps.profiles import APP_PROFILES, AppProfile
from repro.workloads.base import Op, compute, load, store

_PRIVATE_BASE = 0x4000_0000
_PRIVATE_STRIDE = 0x0200_0000
_SHARED_BASE = 0x2000_0000


class _SharedPool:
    """Shared-region state coordinating the threads of one workload."""

    def __init__(self, lines: int, line_size: int, window: int = 64) -> None:
        self.lines = lines
        self.line_size = line_size
        self.recently_written: Deque[int] = deque(maxlen=window)

    def addr_of(self, index: int) -> int:
        return _SHARED_BASE + index * self.line_size


class AppWorkload:
    """One thread of a synthetic application."""

    def __init__(
        self,
        profile: AppProfile,
        thread_id: int,
        pool: _SharedPool,
        seed: int = 0,
        line_size: int = 64,
    ) -> None:
        self.profile = profile
        self.thread_id = thread_id
        self.pool = pool
        self.rng = random.Random((seed << 16) ^ (thread_id << 4) ^ 0x5BD1)
        self.line_size = line_size
        self._private_base = _PRIVATE_BASE + thread_id * _PRIVATE_STRIDE
        self._hot_lines = profile.hot_lines

    # ------------------------------------------------------------------
    def _private_addr(self) -> int:
        p = self.profile
        if self.rng.random() < p.hot_bias:
            index = self.rng.randrange(self._hot_lines)
        else:
            index = self.rng.randrange(p.working_set_lines)
        return self._private_base + index * self.line_size

    def _shared_access(self, is_store: bool) -> int:
        pool = self.pool
        if is_store:
            index = self.rng.randrange(pool.lines)
            pool.recently_written.append(index)
            return pool.addr_of(index)
        # Consumers read recently produced lines half of the time.
        if pool.recently_written and self.rng.random() < 0.5:
            index = self.rng.choice(pool.recently_written)
        else:
            index = self.rng.randrange(pool.lines)
        return pool.addr_of(index)

    # ------------------------------------------------------------------
    def ops(self, num_mem_ops: int) -> Iterator[Op]:
        p = self.profile
        rng = self.rng
        for _ in range(num_mem_ops):
            if p.compute_per_op:
                # Geometric-ish spacing around the mean, cheaply.
                yield compute(rng.randrange(2 * p.compute_per_op + 1))
            shared = rng.random() < p.shared_fraction
            if shared:
                is_store = rng.random() < p.shared_write_fraction
                addr = self._shared_access(is_store)
            else:
                is_store = rng.random() < p.store_fraction
                addr = self._private_addr()
            if is_store:
                yield store(addr, 8, value=("w", self.thread_id))
            else:
                yield load(addr, 8)


def app_programs(
    name: str,
    num_threads: int,
    mem_ops_per_thread: int,
    seed: int = 0,
    line_size: int = 64,
    profile: Optional[AppProfile] = None,
) -> List[Iterator[Op]]:
    """Build one op stream per thread for the named benchmark."""
    if profile is None:
        profile = APP_PROFILES.get(name)
        if profile is None:
            raise KeyError(
                f"unknown app workload {name!r}; "
                f"choose from {sorted(APP_PROFILES)}"
            )
    pool = _SharedPool(profile.shared_lines, line_size)
    return [
        AppWorkload(profile, tid, pool, seed=seed, line_size=line_size).ops(
            mem_ops_per_thread
        )
        for tid in range(num_threads)
    ]
