"""Scalable directed graph (SDG) microbenchmark.

An adjacency-list directed graph: a fixed set of vertices, each with a
header line (edge-list head pointer + degree) and 512-byte edge records
``[target | next | payload...]`` chained off the vertex, allocated from
the persistent heap.

* **insert edge** -- write the edge record, persist barrier, link it at
  the source vertex's list head (read head, write edge.next, write
  head), persist barrier.
* **delete edge** -- walk the source's edge list, unlink (rewrite the
  predecessor edge's next pointer or the vertex head), persist barrier,
  free.
* **search** -- walk an edge list testing for a target.

Vertex selection is skewed (a few hub vertices absorb most updates),
which keeps the per-vertex header lines hot across epochs -- the
intra-thread conflict pattern of graph update workloads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register


@register
class SDGWorkload(MicroBenchmark):
    name = "sdg"

    def __init__(self, *args, num_vertices: int = 64,
                 initial_edges: int = 128, hub_fraction: float = 0.125,
                 hub_bias: float = 0.7, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.num_vertices = num_vertices
        self.initial_edges = initial_edges
        self._num_hubs = max(1, int(num_vertices * hub_fraction))
        self._hub_bias = hub_bias
        # One header line per vertex.
        self._vertex_base = self.heap.alloc(num_vertices * self.line_size)
        # Shadow adjacency: vertex -> list of (target, edge_addr).
        self._adj: Dict[int, List[Tuple[int, int]]] = {
            v: [] for v in range(num_vertices)
        }
        self.num_edges = 0

    # ------------------------------------------------------------------
    def _vertex_addr(self, v: int) -> int:
        return self._vertex_base + v * self.line_size

    def _pick_vertex(self) -> int:
        if self.rng.random() < self._hub_bias:
            return self.rng.randrange(self._num_hubs)
        return self.rng.randrange(self.num_vertices)

    def out_degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_edge_shadow(self, src: int, dst: int) -> bool:
        return any(t == dst for t, _ in self._adj[src])

    # ------------------------------------------------------------------
    def _insert_edge(self, src: int, dst: int) -> Iterator[Op]:
        edge = self.heap.alloc(ENTRY_SIZE)
        yield from self.store_obj(edge, ENTRY_SIZE, ("edge", src, dst))
        yield barrier()
        head = self._vertex_addr(src)
        yield self.load_field(head)
        yield self.store_field(edge, ("edge-next", src, dst))
        yield self.store_field(head, ("vhead", src, dst))
        yield barrier()
        self._adj[src].insert(0, (dst, edge))
        self.num_edges += 1

    def _delete_edge(self, src: int) -> Iterator[Op]:
        edges = self._adj[src]
        if not edges:
            return
        head = self._vertex_addr(src)
        yield self.load_field(head)
        victim_idx = self.rng.randrange(len(edges))
        for i, (_dst, addr) in enumerate(edges[: victim_idx + 1]):
            yield self.load_field(addr)
        _dst, victim_addr = edges[victim_idx]
        if victim_idx == 0:
            yield self.store_field(head, ("vhead-unlink", src))
        else:
            prev_addr = edges[victim_idx - 1][1]
            yield self.store_field(prev_addr, ("edge-unlink", src))
        yield barrier()
        edges.pop(victim_idx)
        self.heap.free(victim_addr, ENTRY_SIZE)
        self.num_edges -= 1

    def _search(self, src: int, dst: int) -> Iterator[Op]:
        yield self.load_field(self._vertex_addr(src))
        for target, addr in self._adj[src]:
            yield self.load_field(addr)
            if target == dst:
                yield from self.load_obj(addr, ENTRY_SIZE)
                return

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        for _ in range(self.initial_edges):
            yield from self._insert_edge(
                self._pick_vertex(), self.rng.randrange(self.num_vertices)
            )

    def transaction(self) -> Iterator[Op]:
        roll = self.rng.random()
        if roll < 0.4 or self.num_edges < 8:
            yield from self._insert_edge(
                self._pick_vertex(), self.rng.randrange(self.num_vertices)
            )
        elif roll < 0.8:
            # Find a vertex with edges to delete from, hub-biased.
            for _ in range(8):
                src = self._pick_vertex()
                if self._adj[src]:
                    yield from self._delete_edge(src)
                    return
        else:
            yield from self._search(
                self._pick_vertex(), self.rng.randrange(self.num_vertices)
            )
