"""Copy-while-locked queue microbenchmark (Figure 10 of the paper).

A circular buffer of 512-byte entries plus a header line holding the
head and tail cursors.  Insert follows the paper's pseudo-code exactly::

    QUEUE_INSERT(Head, Entry):
        1. Persist Barrier
        2. Copy(data[Head], Entry)      <- epoch A
        3. Persist Barrier
        4. Head = Head + EntryLen       <- epoch B
        5. Persist Barrier

If the system crashes after epoch A persists but before epoch B, the
new entry is simply ignored on recovery; after epoch B the insert is
complete.  The recovery checker in :mod:`repro.recovery` verifies
exactly this property.  Delete advances the tail cursor symmetrically.

The head-cursor line is rewritten by *every* insert in a fresh epoch --
the canonical intra-thread conflict generator.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register


@register
class QueueWorkload(MicroBenchmark):
    name = "queue"

    def __init__(self, *args, capacity: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.capacity = capacity
        # Header line: head cursor at +0, tail cursor at +8.
        self._header = self.heap.alloc(self.line_size)
        self._data = self.heap.alloc(capacity * ENTRY_SIZE)
        self._head = 0  # next insert slot
        self._tail = 0  # next delete slot
        self._inserted = 0

    # ------------------------------------------------------------------
    @property
    def head_addr(self) -> int:
        return self._header

    @property
    def tail_addr(self) -> int:
        return self._header + 8

    def slot_addr(self, slot: int) -> int:
        return self._data + (slot % self.capacity) * ENTRY_SIZE

    @property
    def occupancy(self) -> int:
        return self._head - self._tail

    # ------------------------------------------------------------------
    def _insert(self) -> Iterator[Op]:
        seq = self._inserted
        yield barrier()                                   # step 1
        addr = self.slot_addr(self._head)
        yield from self.store_obj(addr, ENTRY_SIZE,       # step 2
                                  ("entry", self.thread_id, seq))
        yield barrier()                                   # step 3
        yield self.store_field(self.head_addr,            # step 4
                               ("head", self.thread_id, seq + 1))
        yield barrier()                                   # step 5
        self._head += 1
        self._inserted += 1

    def _delete(self) -> Iterator[Op]:
        addr = self.slot_addr(self._tail)
        yield self.load_field(self.tail_addr)
        yield from self.load_obj(addr, ENTRY_SIZE)
        yield self.store_field(self.tail_addr,
                               ("tail", self.thread_id, self._tail + 1))
        yield barrier()
        self._tail += 1

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        for _ in range(self.capacity // 4):
            yield from self._insert()

    def transaction(self) -> Iterator[Op]:
        # Keep the queue roughly half full.
        if self.occupancy >= self.capacity - 1 or (
            self.occupancy > 0 and self.rng.random() < 0.5
        ):
            yield from self._delete()
        else:
            yield from self._insert()
