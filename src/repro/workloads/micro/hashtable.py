"""Chained hash table microbenchmark (NVHeaps-style).

Layout: a bucket array of 8-byte head pointers (8 per cache line) plus
512-byte chained entries ``[key | next | payload...]`` allocated from
the persistent heap.

* **insert** -- allocate an entry, write it (8 line stores), persist
  barrier, then link it at the bucket head (read head, write entry.next,
  write head), persist barrier.  The entry must be durable before it is
  reachable -- the same discipline as Figure 10's queue.
* **delete** -- walk the chain (key loads), unlink by rewriting the
  predecessor's next pointer (or the bucket head), persist barrier,
  free the entry.
* **search** -- walk the chain, load the payload on a hit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register


@register
class HashTableWorkload(MicroBenchmark):
    name = "hash"

    def __init__(self, *args, num_buckets: int = 64,
                 initial_entries: int = 128, key_space: int = 4096,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.num_buckets = num_buckets
        self.key_space = key_space
        self.initial_entries = initial_entries
        # Bucket array: 8-byte pointers, 8 per line.
        self._bucket_array = self.heap.alloc(num_buckets * 8)
        # Shadow state: bucket index -> list of (key, entry_addr), front
        # of the list is the chain head.
        self._buckets: Dict[int, List[tuple]] = {
            b: [] for b in range(num_buckets)
        }
        self._size = 0

    # ------------------------------------------------------------------
    def _bucket_of(self, key: int) -> int:
        return (key * 2654435761) % self.num_buckets

    def _bucket_ptr_addr(self, bucket: int) -> int:
        return self._bucket_array + bucket * 8

    @property
    def size(self) -> int:
        return self._size

    def lookup_shadow(self, key: int) -> bool:
        """Shadow-state membership test (for test oracles)."""
        bucket = self._bucket_of(key)
        return any(k == key for k, _ in self._buckets[bucket])

    # ------------------------------------------------------------------
    def _insert(self, key: int) -> Iterator[Op]:
        bucket = self._bucket_of(key)
        head_addr = self._bucket_ptr_addr(bucket)
        entry = self.heap.alloc(ENTRY_SIZE)
        # Write the new entry: key+next in the first line, payload after.
        yield from self.store_obj(entry, ENTRY_SIZE, ("entry", key))
        yield barrier()
        # Link: read current head, point entry.next at it, swing the head.
        yield self.load_field(head_addr)
        yield self.store_field(entry, ("next-of", key))
        yield self.store_field(head_addr, ("head", key))
        yield barrier()
        self._buckets[bucket].insert(0, (key, entry))
        self._size += 1

    def _delete(self, key: int) -> Iterator[Op]:
        bucket = self._bucket_of(key)
        chain = self._buckets[bucket]
        head_addr = self._bucket_ptr_addr(bucket)
        yield self.load_field(head_addr)
        for i, (k, addr) in enumerate(chain):
            yield self.load_field(addr)  # key | next line
            if k == key:
                if i == 0:
                    yield self.store_field(head_addr, ("head-unlink", key))
                else:
                    prev_addr = chain[i - 1][1]
                    yield self.store_field(prev_addr, ("next-unlink", key))
                yield barrier()
                chain.pop(i)
                self.heap.free(addr, ENTRY_SIZE)
                self._size -= 1
                return

    def _search(self, key: int) -> Iterator[Op]:
        bucket = self._bucket_of(key)
        yield self.load_field(self._bucket_ptr_addr(bucket))
        for k, addr in self._buckets[bucket]:
            yield self.load_field(addr)
            if k == key:
                yield from self.load_obj(addr, ENTRY_SIZE)
                return

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        for _ in range(self.initial_entries):
            key = self.rng.randrange(self.key_space)
            yield from self._insert(key)

    def transaction(self) -> Iterator[Op]:
        roll = self.rng.random()
        key = self.rng.randrange(self.key_space)
        if roll < 0.4:
            yield from self._insert(key)
        elif roll < 0.8 and self._size:
            # Delete a key that exists to keep the table populated.
            bucket = self.rng.randrange(self.num_buckets)
            for probe in range(self.num_buckets):
                chain = self._buckets[(bucket + probe) % self.num_buckets]
                if chain:
                    victim = chain[self.rng.randrange(len(chain))][0]
                    yield from self._delete(victim)
                    return
        else:
            yield from self._search(key)
