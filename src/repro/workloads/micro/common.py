"""Shared infrastructure for the Table 2 microbenchmarks.

A microbenchmark instance drives one thread.  Threads operate on
*private* structure instances (the NVHeaps benchmarks shard their data
per thread), which is why the paper finds these workloads dominated by
intra-thread conflicts; a light-weight shared-statistics update every
``shared_update_every`` transactions provides the small inter-thread
component (the source of LB+IDT's ~3% on Figure 11).

Benchmarks are generators: each transaction yields the loads/stores that
a real implementation would execute, with persist barriers placed as in
Figure 10, followed by a TXN_MARK and ``think_cycles`` of compute.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, Optional

from repro.workloads.base import (
    Op,
    OpKind,
    barrier,
    compute,
    txn_mark,
)
from repro.workloads.heap import PersistentHeap

# The paper: "The size of data entry (table entries, tree nodes, queue
# entries etc.) for each micro-benchmark is 512 bytes."
ENTRY_SIZE = 512

# Address-space layout: a private heap per thread plus one shared
# statistics region all threads update occasionally.
_THREAD_HEAP_BASE = 0x1000_0000
_THREAD_HEAP_STRIDE = 0x0100_0000
_SHARED_REGION_BASE = 0x0800_0000

# Marker ops carry no per-instance fields; the transaction loop shares
# one of each rather than constructing millions on the lazy-generation
# path.
_BARRIER_OP = barrier()
_TXN_MARK_OP = txn_mark()


class MicroBenchmark:
    """Base class: heap management, op helpers, the transaction loop."""

    name = "micro"

    def __init__(
        self,
        thread_id: int = 0,
        seed: int = 0,
        line_size: int = 64,
        think_cycles: int = 100,
        shared_update_every: int = 4,
    ) -> None:
        self.thread_id = thread_id
        self.rng = random.Random((seed << 8) ^ thread_id)
        self.line_size = line_size
        self.think_cycles = think_cycles
        self.shared_update_every = shared_update_every
        base = _THREAD_HEAP_BASE + thread_id * _THREAD_HEAP_STRIDE
        self.heap = PersistentHeap(base, _THREAD_HEAP_STRIDE, line_size)
        self._txn_counter = 0

    # ------------------------------------------------------------------
    # Op emission helpers
    # ------------------------------------------------------------------
    # These helpers sit on the million-transaction lazy-generation path,
    # so they build ``Op`` directly instead of going through the
    # ``base.store``/``base.load`` convenience wrappers (one call frame
    # per op adds up at tens of millions of ops).
    def store_obj(self, addr: int, size: int,
                  value: Optional[object] = None) -> Iterator[Op]:
        """Stores covering ``size`` bytes starting at ``addr``."""
        end = addr + size
        cursor = addr
        while cursor < end:
            line_end = (cursor & ~(self.line_size - 1)) + self.line_size
            chunk = min(end, line_end) - cursor
            yield Op(OpKind.STORE, cursor, chunk, value)
            cursor += chunk

    def load_obj(self, addr: int, size: int) -> Iterator[Op]:
        end = addr + size
        cursor = addr
        while cursor < end:
            line_end = (cursor & ~(self.line_size - 1)) + self.line_size
            chunk = min(end, line_end) - cursor
            yield Op(OpKind.LOAD, cursor, chunk)
            cursor += chunk

    def store_field(self, addr: int,
                    value: Optional[object] = None) -> Op:
        """A single 8-byte field store (pointer / counter update)."""
        return Op(OpKind.STORE, addr, 8, value)

    def load_field(self, addr: int) -> Op:
        return Op(OpKind.LOAD, addr, 8)

    # ------------------------------------------------------------------
    # Transaction plumbing
    # ------------------------------------------------------------------
    def shared_counter_line(self) -> int:
        """A statistics line shared by all threads of this benchmark."""
        slot = self.rng.randrange(4)
        return _SHARED_REGION_BASE + slot * self.line_size

    def transaction(self) -> Iterator[Op]:
        """One search/insert/delete transaction.  Subclasses override."""
        raise NotImplementedError

    def setup(self) -> Iterator[Op]:
        """Initial population of the structure (part of the run)."""
        return iter(())

    def ops(self, transactions: int) -> Iterator[Op]:
        """The full op stream for this thread."""
        yield from self.setup()
        yield _BARRIER_OP
        for _ in range(transactions):
            yield from self.transaction()
            self._txn_counter += 1
            if (
                self.shared_update_every
                and self._txn_counter % self.shared_update_every == 0
            ):
                # Shared statistics update: read-modify-write of a line
                # other threads also touch -- the inter-thread component.
                line = self.shared_counter_line()
                yield self.load_field(line)
                yield self.store_field(
                    line, ("stat", self.thread_id, self._txn_counter)
                )
                yield _BARRIER_OP
            yield _TXN_MARK_OP
            if self.think_cycles:
                yield compute(self.think_cycles)


def make_benchmark(name: str, thread_id: int = 0, seed: int = 0,
                   **kwargs) -> MicroBenchmark:
    """Factory over the Table 2 benchmark names."""
    cls = MICROBENCHMARKS.get(name)
    if cls is None:
        raise KeyError(
            f"unknown microbenchmark {name!r}; "
            f"choose from {sorted(MICROBENCHMARKS)}"
        )
    return cls(thread_id=thread_id, seed=seed, **kwargs)


# Populated at the bottom of this package's modules to avoid import
# cycles; see micro/__init__.py for the canonical list.
MICROBENCHMARKS: Dict[str, Callable[..., MicroBenchmark]] = {}


def register(cls):
    """Class decorator adding a benchmark to the registry."""
    MICROBENCHMARKS[cls.name] = cls
    return cls
