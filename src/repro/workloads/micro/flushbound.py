"""Flushbound: a streaming miss-heavy loop with a barrier per txn.

The complement of :mod:`repro.workloads.micro.hotset`: where hotset
isolates the L1-hit request path, ``flushbound`` is built to spend its
time in the *flush* critical path and the L1-miss/LLC-hit fill path.
Like hotset it is a simulator benchmark, not a Table 2 structure.

The workload streams over a footprint sized between the private L1 and
the LLC (default 32 entries x 512 B = 16 KiB against the tiny scale's
4 KiB L1 / 64 KiB LLC), so after the first lap:

* every load misses the L1 and hits the LLC -- the fused
  L1-miss/LLC-hit fill path;
* every store upgrades a clean resident line -- the fused store
  upgrade path;
* every transaction ends in a persist barrier, closing an 8-line epoch
  that the LB++ proactive flusher immediately pushes through the
  FlushEpoch/BankAck/PersistCMP handshake and the memory-controller
  write FIFOs.

One transaction scans ``scan_entries`` consecutive entries (8 line
loads each) and stores the first of them back (8 line stores, then a
barrier), advancing the cursor past everything it scanned so the LRU
streams cleanly, evicted victims have already been flushed clean, and
no scanned line is re-touched before a full lap has evicted it.  The
default scan of two entries keeps the op mix miss-dominated (two line
fills per line flushed) while every transaction still closes a small
8-line epoch.  Think time and the shared statistics update are
disabled by default: the run should be dense miss-and-flush traffic,
nothing else.

``flushbound`` is registered with the factory (``make_benchmark``) but,
like hotset, is deliberately *not* part of ``BEP_BENCHMARKS``.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register


@register
class FlushBoundWorkload(MicroBenchmark):
    name = "flushbound"

    def __init__(
        self,
        *args,
        num_entries: int = 32,
        scan_entries: int = 2,
        think_cycles: int = 0,
        shared_update_every: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            *args,
            think_cycles=think_cycles,
            shared_update_every=shared_update_every,
            **kwargs,
        )
        if num_entries < 1:
            raise ValueError("flushbound needs at least one entry")
        if not 1 <= scan_entries <= num_entries:
            raise ValueError("scan_entries must be in [1, num_entries]")
        self.num_entries = num_entries
        self.scan_entries = scan_entries
        self._array = self.heap.alloc(num_entries * ENTRY_SIZE)
        self._cursor = 0
        self.generation = 0

    def entry_addr(self, index: int) -> int:
        return self._array + index * ENTRY_SIZE

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        for index in range(self.num_entries):
            yield from self.store_obj(
                self.entry_addr(index), ENTRY_SIZE, ("init", index)
            )
        yield barrier()

    def transaction(self) -> Iterator[Op]:
        index = self._cursor
        self._cursor += self.scan_entries
        if self._cursor >= self.num_entries:
            self._cursor = 0
            self.generation += 1
        for offset in range(self.scan_entries):
            scanned = (index + offset) % self.num_entries
            yield from self.load_obj(self.entry_addr(scanned), ENTRY_SIZE)
        yield from self.store_obj(
            self.entry_addr(index), ENTRY_SIZE,
            ("gen", self.generation, index),
        )
        yield barrier()
