"""Hotset: a cache-resident read-mostly loop with periodic barriers.

Unlike the Table 2 structures, this workload is a *simulator* benchmark
rather than a paper benchmark: it concentrates its accesses on a hot set
of lines that fits comfortably in the L1, so nearly every operation is a
conflict-free L1 hit.  That is exactly the per-access path the engine
fast paths target, which makes ``hotset`` the headline workload for the
single-run ops/sec benchmark (``python -m repro bench``) -- a run is
dominated by the request hot path instead of by miss handling and epoch
flush machinery, so fast-vs-reference timing isolates the engine.

Shape of one transaction (defaults)::

    64 x  load  of a random line in an 8-line hot set
     4 x  store of a random line in the 4-line write subset
           (one store after every 16th load)
    every 8th transaction: persist barrier

The write subset is part of the hot set, so stores hit lines the loads
keep resident; the barrier cadence keeps epochs small enough that dirty
lines persist promptly and evictions never drag persist ordering into
the run.  Think time and the shared-statistics update are disabled by
default -- the point is a dense, hit-dominated op stream.

``hotset`` is registered with the factory (``make_benchmark``) but is
deliberately *not* part of ``BEP_BENCHMARKS``: the paper's figure sweeps
cover the Table 2 structures only.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import MicroBenchmark, register


@register
class HotSetWorkload(MicroBenchmark):
    name = "hotset"

    def __init__(
        self,
        *args,
        hot_lines: int = 8,
        store_lines: int = 4,
        loads_per_txn: int = 64,
        store_every: int = 16,
        barrier_every: int = 8,
        think_cycles: int = 0,
        shared_update_every: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            *args,
            think_cycles=think_cycles,
            shared_update_every=shared_update_every,
            **kwargs,
        )
        if not 0 < store_lines <= hot_lines:
            raise ValueError("store_lines must be within the hot set")
        self.loads_per_txn = loads_per_txn
        self.store_every = store_every
        self.barrier_every = barrier_every
        base = self.heap.alloc(hot_lines * self.line_size)
        self._hot = [base + i * self.line_size for i in range(hot_lines)]
        self._store_set = self._hot[:store_lines]

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        # Warm the hot set so the measured transactions start from a
        # resident working set (the fills happen once, up front).
        for addr in self._hot:
            yield self.load_field(addr)

    def transaction(self) -> Iterator[Op]:
        rng = self.rng
        hot = self._hot
        store_set = self._store_set
        for i in range(1, self.loads_per_txn + 1):
            yield self.load_field(hot[rng.randrange(len(hot))])
            if self.store_every and i % self.store_every == 0:
                yield self.store_field(
                    store_set[rng.randrange(len(store_set))],
                    ("hot", self.thread_id, self._txn_counter, i),
                )
        if (
            self.barrier_every
            and (self._txn_counter + 1) % self.barrier_every == 0
        ):
            yield barrier()
