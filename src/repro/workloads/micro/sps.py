"""SPS: random swaps between entries in an array.

The classic persistent-memory microbenchmark (used by Pelley et al. and
NVHeaps): an array of 512-byte entries; each transaction picks two
random slots and swaps their contents.  The swap must be failure-atomic
at the pair level, so it is staged through a persistent scratch entry::

    load A, load B                  (read both)
    scratch = A ; persist barrier   (A's old value is safe)
    A = B      ; persist barrier    (B's value lands in A)
    B = scratch; persist barrier    (completes the swap)

Every transaction rewrites the scratch entry -- 8 hot lines reused in a
fresh epoch each time, a dense intra-thread conflict source -- while the
array slots give uniformly random write traffic across a larger set.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register


@register
class SPSWorkload(MicroBenchmark):
    name = "sps"

    def __init__(self, *args, num_entries: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.num_entries = num_entries
        self._array = self.heap.alloc(num_entries * ENTRY_SIZE)
        self._scratch = self.heap.alloc(ENTRY_SIZE)
        # Shadow: slot -> logical value id (initial identity permutation).
        self.shadow: List[int] = list(range(num_entries))
        self.swaps = 0

    def slot_addr(self, slot: int) -> int:
        return self._array + slot * ENTRY_SIZE

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        for slot in range(self.num_entries):
            yield from self.store_obj(
                self.slot_addr(slot), ENTRY_SIZE, ("init", slot)
            )
        yield barrier()

    def transaction(self) -> Iterator[Op]:
        a = self.rng.randrange(self.num_entries)
        b = self.rng.randrange(self.num_entries)
        while b == a:
            b = self.rng.randrange(self.num_entries)
        value_a, value_b = self.shadow[a], self.shadow[b]
        yield from self.load_obj(self.slot_addr(a), ENTRY_SIZE)
        yield from self.load_obj(self.slot_addr(b), ENTRY_SIZE)
        yield from self.store_obj(self._scratch, ENTRY_SIZE,
                                  ("scratch", value_a))
        yield barrier()
        yield from self.store_obj(self.slot_addr(a), ENTRY_SIZE,
                                  ("slot", value_b))
        yield barrier()
        yield from self.store_obj(self.slot_addr(b), ENTRY_SIZE,
                                  ("slot", value_a))
        yield barrier()
        self.shadow[a], self.shadow[b] = value_b, value_a
        self.swaps += 1
