"""Pingpong: contended producer/consumer pairs for the multicore path.

The Table 2 benchmarks shard their data per thread, so inter-thread
conflicts are rare by construction (a shared statistics line every few
transactions).  ``pingpong`` is the opposite extreme, built to exercise
the machinery the paper's *inter-thread* contribution is about: IDT
edges (section 3.1), deadlock-avoiding epoch splits (section 3.3), and
the coherence directory's invalidation/forwarding paths.

Threads form pairs (thread ``t`` with ``t ^ 1``).  Each pair owns a
small shared *mailbox* of line-granular slots; every transaction, under
one persist barrier,

* with probability ``conflict_rate`` (default: always) reads the
  partner's last message from a random mailbox slot and overwrites it
  with an ack -- the contended step, placed *first* so it lands while
  the partner's previous epoch is still flushing or even ongoing;
* then assembles the next message: an entry-sized payload copy
  (``ENTRY_SIZE`` bytes, eight line stores -- the Figure 10 entry copy)
  into the thread's private buffer, and
* stores a sequence token to the thread's private line (so every
  epoch -- including the completed prefix of a split -- carries at
  least one line of its own).

Both sides of a pair mutate the same mailbox lines, and because the ack
leads the transaction while the payload copy stretches the epoch, a
mailbox store routinely hits a line dirty under the partner's
unpersisted -- often still *ongoing* -- epoch: with IDT the dependence
is recorded (splitting the partner's epoch first), without it the
partner's chain is flushed online.  ``conflict_rate`` and ``num_slots``
tune how often and how concentrated the collisions are;
``payload_lines`` scales the per-message copy.

Mailboxes live in a dedicated region between the shared-statistics page
and the per-thread heaps, one stride per pair, so pairs never collide
with each other.  With an odd thread count the last thread keeps a
mailbox to itself and simply measures the uncontended loop.

``pingpong`` is registered with the factory (``make_benchmark``) but,
like hotset and flushbound, is deliberately *not* part of
``BEP_BENCHMARKS``: it is a simulator benchmark for the multicore
fast path, not a Table 2 structure.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Op, OpKind, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register

# Barrier ops are field-free, so the million-transaction generation path
# shares one instance per program stream instead of allocating one per
# transaction.
_BARRIER = barrier()

# One mailbox stride per thread pair; far below the per-thread heaps
# (0x1000_0000 + tid * 0x0100_0000) and above the shared-statistics
# region (0x0800_0000), so no region ever aliases another.
_MAILBOX_BASE = 0x0C00_0000
_MAILBOX_STRIDE = 0x0002_0000


@register
class PingPongWorkload(MicroBenchmark):
    name = "pingpong"

    def __init__(
        self,
        *args,
        num_slots: int = 4,
        conflict_rate: float = 1.0,
        payload_lines: int = 0,
        think_cycles: int = 0,
        shared_update_every: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            *args,
            think_cycles=think_cycles,
            shared_update_every=shared_update_every,
            **kwargs,
        )
        if num_slots < 1:
            raise ValueError("pingpong needs at least one mailbox slot")
        if not 0.0 <= conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be in [0, 1]")
        if payload_lines < 0:
            raise ValueError("payload_lines must be non-negative")
        self.num_slots = num_slots
        self.conflict_rate = conflict_rate
        # Default payload: one 512-byte entry, like the Table 2
        # structures ("the size of data entry ... is 512 bytes").
        self.payload_lines = payload_lines or ENTRY_SIZE // self.line_size
        self.pair_id = self.thread_id // 2
        self._mailbox = _MAILBOX_BASE + self.pair_id * _MAILBOX_STRIDE
        if num_slots * self.line_size > _MAILBOX_STRIDE:
            raise ValueError("mailbox slots exceed the pair stride")
        self._private = self.heap.alloc(self.line_size)
        self._payload = self.heap.alloc(self.line_size * self.payload_lines)
        self._sent = 0

    def slot_addr(self, slot: int) -> int:
        return self._mailbox + slot * self.line_size

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        yield self.store_field(self._private, ("init", self.thread_id))
        if self.thread_id % 2 == 0:
            # The even side of the pair initializes the shared mailbox;
            # the odd side would only recreate the contention the
            # transactions are about to measure anyway.
            for slot in range(self.num_slots):
                yield self.store_field(
                    self.slot_addr(slot), ("init", self.pair_id, slot)
                )
        yield barrier()

    def transaction(self) -> Iterator[Op]:
        # Ops are built directly (not via the store_field/load_field
        # helpers): this generator body runs a million times inside the
        # timed region of the scale benchmark, where a call frame per op
        # is measurable.
        self._sent += 1
        sent = self._sent
        tid = self.thread_id
        if self.rng.random() < self.conflict_rate:
            slot = self.rng.randrange(self.num_slots)
            addr = self.slot_addr(slot)
            # Read the partner's last message, then overwrite it with
            # an ack: the load can raise an inter-thread conflict on
            # its own, and the store collides with whichever
            # unpersisted -- frequently still ongoing -- epoch last
            # wrote the slot.  Leading with the contended access is
            # what makes the collisions land mid-epoch on the partner
            # side (the payload copy below stretches every epoch's
            # lifetime).
            yield Op(OpKind.LOAD, addr, 8)
            yield Op(OpKind.STORE, addr, 8, ("msg", tid, sent))
        # Assemble the next message: an entry-sized private copy, the
        # Figure 10 pattern (eight line stores per 512-byte entry).
        base = self._payload
        line_size = self.line_size
        for i in range(self.payload_lines):
            yield Op(OpKind.STORE, base + i * line_size, 8,
                     ("pay", tid, sent, i))
        # The private token keeps every epoch non-empty even when a
        # split hands the mailbox store to the remainder epoch.
        yield Op(OpKind.STORE, self._private, 8, ("seq", tid, sent))
        yield _BARRIER
