"""Red-black tree microbenchmark.

A textbook (CLRS, sentinel-based) red-black tree: traversals emit a load
of each visited node's header line (key + color + parent/left/right
pointers share the first line of the 512-byte node), insert and delete
emit stores for every pointer or color the algorithm actually mutates,
and rotations touch the nodes they re-link.  The shadow tree lives in
Python, so the address stream is exactly what a pointer-chasing NVM tree
produces -- and the shadow invariants (BST order, no red-red edge, equal
black heights) are checkable by the test suite after any operation mix.

Persist discipline (NVHeaps-style): a new node is written and persisted
*before* it is linked into the tree (epoch A: node body; epoch B: link +
rebalance writes), so a crash between the two leaves an unreachable but
harmless node.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.workloads.base import Op, barrier
from repro.workloads.micro.common import ENTRY_SIZE, MicroBenchmark, register

RED = "red"
BLACK = "black"


class _Node:
    __slots__ = ("key", "color", "parent", "left", "right", "addr")

    def __init__(self, key: int, addr: int, color: str = RED) -> None:
        self.key = key
        self.color = color
        self.parent: "_Node" = self
        self.left: "_Node" = self
        self.right: "_Node" = self
        self.addr = addr


@register
class RBTreeWorkload(MicroBenchmark):
    name = "rbtree"

    def __init__(self, *args, initial_nodes: int = 128,
                 key_space: int = 1 << 20, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.key_space = key_space
        self.initial_nodes = initial_nodes
        # Root pointer and the NIL sentinel share a header line (the
        # sentinel is a real object in NVM tree implementations).
        header = self.heap.alloc(self.line_size)
        self._root_ptr = header
        self._nil = _Node(0, header, color=BLACK)
        self._root: _Node = self._nil
        self._size = 0
        self._found: _Node = self._nil

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def _touch(self, node: _Node) -> Iterator[Op]:
        yield self.load_field(node.addr)

    def _write_header(self, node: _Node, why: str) -> Iterator[Op]:
        """Store to a node's header line (pointer/color mutation)."""
        yield self.store_field(node.addr, (why, node.key))

    def _set_root(self, node: _Node) -> Iterator[Op]:
        self._root = node
        yield self.store_field(self._root_ptr, ("root", node.key))

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------
    def _rotate_left(self, x: _Node) -> Iterator[Op]:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
            yield from self._write_header(y.left, "rot-parent")
        y.parent = x.parent
        if x.parent is self._nil:
            yield from self._set_root(y)
        elif x is x.parent.left:
            x.parent.left = y
            yield from self._write_header(x.parent, "rot-child")
        else:
            x.parent.right = y
            yield from self._write_header(x.parent, "rot-child")
        y.left = x
        x.parent = y
        yield from self._write_header(y, "rot-y")
        yield from self._write_header(x, "rot-x")

    def _rotate_right(self, x: _Node) -> Iterator[Op]:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
            yield from self._write_header(y.right, "rot-parent")
        y.parent = x.parent
        if x.parent is self._nil:
            yield from self._set_root(y)
        elif x is x.parent.right:
            x.parent.right = y
            yield from self._write_header(x.parent, "rot-child")
        else:
            x.parent.left = y
            yield from self._write_header(x.parent, "rot-child")
        y.right = x
        x.parent = y
        yield from self._write_header(y, "rot-y")
        yield from self._write_header(x, "rot-x")

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def _insert(self, key: int) -> Iterator[Op]:
        node = _Node(key, self.heap.alloc(ENTRY_SIZE))
        node.left = node.right = node.parent = self._nil
        # Epoch A: the node body becomes durable before it is reachable.
        yield from self.store_obj(node.addr, ENTRY_SIZE, ("node", key))
        yield barrier()
        # Epoch B: BST descent (loads), link, fixup writes.
        parent = self._nil
        cursor = self._root
        yield self.load_field(self._root_ptr)
        while cursor is not self._nil:
            yield from self._touch(cursor)
            parent = cursor
            cursor = cursor.left if key < cursor.key else cursor.right
        node.parent = parent
        if parent is self._nil:
            yield from self._set_root(node)
        else:
            if key < parent.key:
                parent.left = node
            else:
                parent.right = node
            yield from self._write_header(parent, "link")
        yield from self._insert_fixup(node)
        yield barrier()
        self._size += 1

    def _insert_fixup(self, z: _Node) -> Iterator[Op]:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                yield from self._touch(uncle)
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    yield from self._write_header(z.parent, "recolor")
                    yield from self._write_header(uncle, "recolor")
                    yield from self._write_header(grand, "recolor")
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        yield from self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    yield from self._write_header(z.parent, "recolor")
                    yield from self._write_header(z.parent.parent, "recolor")
                    yield from self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                yield from self._touch(uncle)
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    yield from self._write_header(z.parent, "recolor")
                    yield from self._write_header(uncle, "recolor")
                    yield from self._write_header(grand, "recolor")
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        yield from self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    yield from self._write_header(z.parent, "recolor")
                    yield from self._write_header(z.parent.parent, "recolor")
                    yield from self._rotate_left(z.parent.parent)
        if self._root.color is not BLACK:
            self._root.color = BLACK
            yield from self._write_header(self._root, "root-black")

    # ------------------------------------------------------------------
    # Delete (full CLRS delete + fixup)
    # ------------------------------------------------------------------
    def _find(self, key: int) -> Iterator[Op]:
        cursor = self._root
        yield self.load_field(self._root_ptr)
        while cursor is not self._nil:
            yield from self._touch(cursor)
            if key == cursor.key:
                self._found = cursor
                return
            cursor = cursor.left if key < cursor.key else cursor.right
        self._found = self._nil

    def _minimum(self, node: _Node) -> Iterator[Op]:
        while node.left is not self._nil:
            yield from self._touch(node.left)
            node = node.left
        self._found = node

    def _transplant(self, u: _Node, v: _Node) -> Iterator[Op]:
        if u.parent is self._nil:
            yield from self._set_root(v)
        elif u is u.parent.left:
            u.parent.left = v
            yield from self._write_header(u.parent, "transplant")
        else:
            u.parent.right = v
            yield from self._write_header(u.parent, "transplant")
        v.parent = u.parent
        if v is not self._nil:
            yield from self._write_header(v, "transplant-parent")

    def _delete(self, key: int) -> Iterator[Op]:
        yield from self._find(key)
        z = self._found
        if z is self._nil:
            return
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            yield from self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            yield from self._transplant(z, z.left)
        else:
            yield from self._minimum(z.right)
            y = self._found
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                yield from self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
                yield from self._write_header(y, "del-relink")
                yield from self._write_header(y.right, "del-relink")
            yield from self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
            yield from self._write_header(y, "del-recolor")
            yield from self._write_header(y.left, "del-relink")
        if y_color is BLACK:
            yield from self._delete_fixup(x)
        yield barrier()
        self.heap.free(z.addr, ENTRY_SIZE)
        self._size -= 1

    def _delete_fixup(self, x: _Node) -> Iterator[Op]:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                yield from self._touch(w)
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    yield from self._write_header(w, "fix-recolor")
                    yield from self._write_header(x.parent, "fix-recolor")
                    yield from self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    yield from self._write_header(w, "fix-recolor")
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        yield from self._write_header(w.left, "fix-recolor")
                        yield from self._write_header(w, "fix-recolor")
                        yield from self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    yield from self._write_header(w, "fix-recolor")
                    yield from self._write_header(x.parent, "fix-recolor")
                    yield from self._write_header(w.right, "fix-recolor")
                    yield from self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                yield from self._touch(w)
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    yield from self._write_header(w, "fix-recolor")
                    yield from self._write_header(x.parent, "fix-recolor")
                    yield from self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    yield from self._write_header(w, "fix-recolor")
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        yield from self._write_header(w.right, "fix-recolor")
                        yield from self._write_header(w, "fix-recolor")
                        yield from self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    yield from self._write_header(w, "fix-recolor")
                    yield from self._write_header(x.parent, "fix-recolor")
                    yield from self._write_header(w.left, "fix-recolor")
                    yield from self._rotate_right(x.parent)
                    x = self._root
        if x.color is not BLACK:
            x.color = BLACK
            yield from self._write_header(x, "fix-black")

    # ------------------------------------------------------------------
    def _search(self, key: int) -> Iterator[Op]:
        yield from self._find(key)
        if self._found is not self._nil:
            yield from self.load_obj(self._found.addr, ENTRY_SIZE)

    def _random_present_key(self) -> Optional[int]:
        node = self._root
        if node is self._nil:
            return None
        while True:
            branch = self.rng.random()
            if branch < 0.4 and node.left is not self._nil:
                node = node.left
            elif branch < 0.8 and node.right is not self._nil:
                node = node.right
            else:
                return node.key

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[Op]:
        for _ in range(self.initial_nodes):
            yield from self._insert(self.rng.randrange(self.key_space))

    def transaction(self) -> Iterator[Op]:
        roll = self.rng.random()
        if roll < 0.4 or self._size < 8:
            yield from self._insert(self.rng.randrange(self.key_space))
        elif roll < 0.8:
            key = self._random_present_key()
            if key is not None:
                yield from self._delete(key)
        else:
            yield from self._search(self.rng.randrange(self.key_space))

    # -- oracle helpers for tests ---------------------------------------
    def contains_shadow(self, key: int) -> bool:
        node = self._root
        while node is not self._nil:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def validate_shadow(self) -> int:
        """Check BST + red-black invariants; returns black height."""
        nil = self._nil

        def check(node: _Node, lo: float, hi: float) -> int:
            if node is nil:
                return 1
            if not lo <= node.key <= hi:
                raise AssertionError("BST order violated")
            if node.color is RED:
                if node.left.color is RED or node.right.color is RED:
                    raise AssertionError("red-red violation")
            left = check(node.left, lo, node.key)
            right = check(node.right, node.key, hi)
            if left != right:
                raise AssertionError("black-height mismatch")
            return left + (1 if node.color is BLACK else 0)

        if self._root.color is not BLACK:
            raise AssertionError("root must be black")
        return check(self._root, float("-inf"), float("inf"))
