"""The persistent-data-structure microbenchmarks of Table 2.

Each benchmark implements a real data structure over a simulated
persistent heap -- traversals follow actual pointers, so the emitted
address streams have the locality and dependence structure of the
NVHeaps-style benchmarks the paper uses.  All five use 512-byte entries
(table entries, tree nodes, queue entries, graph edges, array elements)
and perform a search/insert/delete transaction mix, with persist
barriers placed as in Figure 10.

=========  =====================================================
hash       insert/delete entries in a chained hash table
queue      insert/delete entries in a copy-while-locked queue
rbtree     insert/delete nodes in a red-black tree
sdg        insert/delete edges in a scalable directed graph
sps        random swaps between entries in an array
=========  =====================================================

The package also registers three simulator benchmarks that are not part
of Table 2: ``hotset``, a cache-resident read-mostly loop used by the
single-run engine benchmark (:mod:`repro.workloads.micro.hotset`);
``flushbound``, a streaming miss-heavy loop with a barrier per
transaction used by the flush-path benchmark
(:mod:`repro.workloads.micro.flushbound`); and ``pingpong``, contended
producer/consumer pairs used by the multicore conflict-path benchmark
(:mod:`repro.workloads.micro.pingpong`).
"""

from repro.workloads.micro.common import (
    ENTRY_SIZE,
    MicroBenchmark,
    MICROBENCHMARKS,
    make_benchmark,
)
from repro.workloads.micro.flushbound import FlushBoundWorkload
from repro.workloads.micro.hashtable import HashTableWorkload
from repro.workloads.micro.hotset import HotSetWorkload
from repro.workloads.micro.pingpong import PingPongWorkload
from repro.workloads.micro.queue import QueueWorkload
from repro.workloads.micro.rbtree import RBTreeWorkload
from repro.workloads.micro.sdg import SDGWorkload
from repro.workloads.micro.sps import SPSWorkload

# Application-tier workloads registered with the same factory; imported
# last so micro.common is fully initialised first (they subclass
# MicroBenchmark and call @register at import time).
try:
    from repro.workloads.apps.serving import ServingWorkload
    from repro.workloads.apps.sharded import ShardedServingWorkload
except ImportError:  # pragma: no cover - circular entry
    # Someone imported repro.workloads.apps.serving *first*; that module
    # pulled in this package (for MicroBenchmark) before defining its
    # class.  Its own import is still in flight and will define and
    # register the class; only this package's re-export is unavailable.
    ServingWorkload = None  # type: ignore[assignment]
    ShardedServingWorkload = None  # type: ignore[assignment]

__all__ = [
    "ENTRY_SIZE",
    "FlushBoundWorkload",
    "HashTableWorkload",
    "HotSetWorkload",
    "MICROBENCHMARKS",
    "MicroBenchmark",
    "PingPongWorkload",
    "QueueWorkload",
    "RBTreeWorkload",
    "SDGWorkload",
    "SPSWorkload",
    "ServingWorkload",
    "ShardedServingWorkload",
    "make_benchmark",
]
