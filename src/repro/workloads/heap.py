"""A persistent-heap allocator for laying out workload data structures.

Microbenchmarks allocate their nodes/entries/buckets from a
:class:`PersistentHeap`, so the address streams they emit have realistic
layout properties: line-aligned objects, spatial locality within an
object, allocator-metadata reuse after frees.

The heap is a segregated free-list bump allocator: allocations are
rounded up to a multiple of the line size (objects never share a cache
line -- matching NVHeaps-style allocators, and keeping line-granular
epoch tagging meaningful), freed blocks go to per-size free lists and
are reused LIFO.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List


class HeapExhausted(RuntimeError):
    """The heap region is fully allocated."""


class PersistentHeap:
    """Line-aligned segregated-fit allocator over an NVRAM region."""

    def __init__(self, base: int, size: int, line_size: int = 64) -> None:
        if base % line_size:
            raise ValueError("heap base must be line-aligned")
        if size <= 0:
            raise ValueError("heap size must be positive")
        self._base = base
        self._limit = base + size
        self._line_size = line_size
        self._cursor = base
        self._free: Dict[int, List[int]] = defaultdict(list)
        self.allocated_bytes = 0
        self.live_objects = 0

    def _round(self, size: int) -> int:
        line = self._line_size
        return ((size + line - 1) // line) * line

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a line-aligned address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        rounded = self._round(size)
        free_list = self._free[rounded]
        if free_list:
            addr = free_list.pop()
        else:
            if self._cursor + rounded > self._limit:
                raise HeapExhausted(
                    f"heap of {self._limit - self._base} bytes exhausted"
                )
            addr = self._cursor
            self._cursor += rounded
        self.allocated_bytes += rounded
        self.live_objects += 1
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return a block to its size-class free list."""
        rounded = self._round(size)
        if not self._base <= addr < self._limit:
            raise ValueError(f"0x{addr:x} is outside this heap")
        self._free[rounded].append(addr)
        self.allocated_bytes -= rounded
        self.live_objects -= 1

    @property
    def high_water_mark(self) -> int:
        """Bytes of address space consumed (reuse not subtracted)."""
        return self._cursor - self._base
