"""Memory-operation model and program plumbing.

A *program* is, per thread, any iterator of :class:`Op` records.  Cores
pull one op at a time, so programs may be plain lists, generators that
interleave with simulated state, or the data-structure drivers in
:mod:`repro.workloads.micro` (whose generators walk real pointer-based
structures and therefore emit realistic address streams).

Operations:

* ``LOAD`` / ``STORE`` -- a memory access.  Accesses never straddle a
  cache line; helpers split larger regions into per-line ops (which is
  also how the paper's 512-byte entries become 8-line bursts).
* ``BARRIER``  -- a persist barrier (epoch boundary).
* ``COMPUTE``  -- ``cycles`` of non-memory work.
* ``TXN_MARK`` -- marks completion of one transaction, the unit of
  Figure 11's throughput metric.
* ``STRAND``   -- switch the thread's persistence strand (Pelley et
  al.'s NewStrand primitive; strand persistency is the third model of
  the paper's reference [8], which the paper itself does not evaluate).
  Epochs of different strands of one thread persist independently.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional


class OpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    BARRIER = "barrier"
    COMPUTE = "compute"
    TXN_MARK = "txn"
    STRAND = "strand"


class Op:
    """One memory operation.  Treat instances as immutable.

    A hand-rolled slots class rather than a frozen dataclass: million-
    transaction programs construct tens of millions of these, and the
    frozen dataclass ``__init__`` (an ``object.__setattr__`` per field)
    costs several times a plain slot assignment on the lazy-generation
    path, where op construction is interleaved with the timed run.
    """

    __slots__ = ("kind", "addr", "size", "value", "cycles")

    def __init__(self, kind: OpKind, addr: int = 0, size: int = 0,
                 value: Optional[object] = None, cycles: int = 0) -> None:
        self.kind = kind
        self.addr = addr
        self.size = size
        self.value = value
        self.cycles = cycles
        if size <= 0 and (kind is OpKind.LOAD or kind is OpKind.STORE):
            raise ValueError(f"{kind.value} needs a positive size")
        if cycles < 0 and kind is OpKind.COMPUTE:
            raise ValueError("compute cycles must be non-negative")

    def _astuple(self) -> tuple:
        return (self.kind, self.addr, self.size, self.value, self.cycles)

    def __repr__(self) -> str:
        return (f"Op(kind={self.kind!r}, addr={self.addr!r}, "
                f"size={self.size!r}, value={self.value!r}, "
                f"cycles={self.cycles!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Op):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())


def load(addr: int, size: int = 8) -> Op:
    return Op(OpKind.LOAD, addr=addr, size=size)


def store(addr: int, size: int = 8, value: Optional[object] = None) -> Op:
    return Op(OpKind.STORE, addr=addr, size=size, value=value)


def barrier() -> Op:
    return Op(OpKind.BARRIER)


def compute(cycles: int) -> Op:
    return Op(OpKind.COMPUTE, cycles=cycles)


def txn_mark() -> Op:
    return Op(OpKind.TXN_MARK)


def strand(strand_id: int) -> Op:
    """Switch to persistence strand ``strand_id``."""
    if strand_id < 0:
        raise ValueError("strand ids must be non-negative")
    return Op(OpKind.STRAND, value=strand_id)


def span_ops(
    kind: OpKind,
    addr: int,
    size: int,
    line_size: int,
    value: Optional[object] = None,
) -> Iterator[Op]:
    """Split an access of ``size`` bytes into per-line ops.

    This is how multi-line objects (the paper's 512 B entries) turn into
    bursts of line-granular traffic.
    """
    end = addr + size
    cursor = addr
    while cursor < end:
        line_end = (cursor & ~(line_size - 1)) + line_size
        chunk = min(end, line_end) - cursor
        yield Op(kind, addr=cursor, size=chunk, value=value)
        cursor += chunk


def store_span(addr: int, size: int, line_size: int,
               value: Optional[object] = None) -> Iterator[Op]:
    return span_ops(OpKind.STORE, addr, size, line_size, value)


def load_span(addr: int, size: int, line_size: int) -> Iterator[Op]:
    return span_ops(OpKind.LOAD, addr, size, line_size)


class Program:
    """A materialized per-thread op sequence with convenience builders."""

    def __init__(self, ops: Optional[Iterable[Op]] = None) -> None:
        self.ops: List[Op] = list(ops) if ops is not None else []

    # -- builders --------------------------------------------------------
    def load(self, addr: int, size: int = 8) -> "Program":
        self.ops.append(load(addr, size))
        return self

    def store(self, addr: int, size: int = 8,
              value: Optional[object] = None) -> "Program":
        self.ops.append(store(addr, size, value))
        return self

    def barrier(self) -> "Program":
        self.ops.append(barrier())
        return self

    def compute(self, cycles: int) -> "Program":
        self.ops.append(compute(cycles))
        return self

    def txn_mark(self) -> "Program":
        self.ops.append(txn_mark())
        return self

    def strand(self, strand_id: int) -> "Program":
        self.ops.append(strand(strand_id))
        return self

    def extend(self, ops: Iterable[Op]) -> "Program":
        self.ops.extend(ops)
        return self

    # -- iteration -------------------------------------------------------
    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)
