"""Workloads: programs the simulated cores execute.

* :mod:`repro.workloads.base`  -- the memory-operation model (loads,
  stores, persist barriers, compute delays, transaction markers) and
  program-building helpers.
* :mod:`repro.workloads.heap`  -- a persistent-heap allocator laying out
  data structures in the NVRAM address space.
* :mod:`repro.workloads.micro` -- the five persistent-data-structure
  microbenchmarks of Table 2 (hash, queue, rbtree, sdg, sps).
* :mod:`repro.workloads.apps`  -- synthetic stand-ins for the PARSEC /
  SPLASH-2 / STAMP workloads used for the BSP evaluation.
"""

from repro.workloads.base import (
    Op,
    OpKind,
    Program,
    barrier,
    compute,
    load,
    store,
    strand,
    txn_mark,
)

__all__ = [
    "Op",
    "OpKind",
    "Program",
    "barrier",
    "compute",
    "load",
    "store",
    "strand",
    "txn_mark",
]
