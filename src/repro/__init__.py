"""repro: Efficient Persist Barriers for Multicores (MICRO 2015).

A discrete-event reproduction of Joshi et al.'s persist-barrier designs
for NVRAM multicores: the lazy barrier (LB) of Condit et al., the
paper's optimizations -- inter-thread dependence tracking (IDT) and
proactive flushing (PF) -- and their combination, LB++.  The library
implements the full substrate (cores, caches, MSI directory, 2D mesh,
banked LLC, memory controllers, NVRAM image), the persistency models it
enforces (SP, EP, BEP, BSP in bulk mode with undo logging and register
checkpointing), the paper's workloads, and a crash-recovery checker.

Quickstart::

    from repro import MachineConfig, Multicore, BarrierDesign
    from repro.workloads.micro import HashTableWorkload

    config = MachineConfig.small(barrier_design=BarrierDesign.LB_PP)
    machine = Multicore(config)
    programs = [HashTableWorkload(seed=i).program(config, transactions=200)
                for i in range(config.num_cores)]
    result = machine.run(programs)
    print(result.throughput, result.conflict_epoch_pct)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every figure and table.
"""

from repro.sim.config import (
    BarrierDesign,
    FlushMode,
    MachineConfig,
    PersistencyModel,
)
from repro.system import Multicore, RunResult, SimulationError

__version__ = "1.0.0"

__all__ = [
    "BarrierDesign",
    "FlushMode",
    "MachineConfig",
    "Multicore",
    "PersistencyModel",
    "RunResult",
    "SimulationError",
    "__version__",
]
