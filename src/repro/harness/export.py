"""Figure export: CSV files and terminal bar charts.

The paper's figures are grouped bar charts; ``render_bars`` draws the
same shape in a terminal (one block row per benchmark x series), and
``write_csv`` emits the data for external plotting.  Both operate on
:class:`~repro.harness.report.FigureTable`, so every experiment driver
gets them for free.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Union

from repro.harness.report import FigureTable

_BAR_GLYPH = "█"
_PARTIAL_GLYPHS = " ▏▎▍▌▋▊▉"


def write_csv(table: FigureTable, path: Union[str, Path]) -> Path:
    """Write a figure table (rows x series, plus summary) as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark"] + list(table.columns))
        for name, values in table.rows:
            writer.writerow([name] + [f"{v:.6g}" for v in values])
        summary = table.summary_row()
        if summary is not None:
            writer.writerow([summary[0]] + [f"{v:.6g}" for v in summary[1]])
    return path


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    frac = cells - whole
    bar = _BAR_GLYPH * whole
    partial_index = int(frac * (len(_PARTIAL_GLYPHS) - 1))
    if partial_index:
        bar += _PARTIAL_GLYPHS[partial_index]
    return bar


def render_bars(table: FigureTable, width: int = 40,
                baseline: Optional[float] = None) -> str:
    """Render the table as a horizontal grouped bar chart.

    ``baseline`` draws a reference line label (e.g. 1.0 for normalized
    results).  Bars are scaled to the maximum value in the table.
    """
    out = io.StringIO()
    peak = max(
        (value for _name, values in table.rows for value in values),
        default=1.0,
    )
    summary = table.summary_row()
    if summary is not None:
        peak = max([peak] + list(summary[1]))
    label_width = max(len(c) for c in table.columns) + 2
    out.write(table.title + "\n")
    groups = list(table.rows)
    if summary is not None:
        groups.append(summary)
    for name, values in groups:
        out.write(f"{name}\n")
        for column, value in zip(table.columns, values):
            bar = _bar(value, peak, width)
            out.write(f"  {column:<{label_width}}{bar} {value:.3f}\n")
    if baseline is not None:
        offset = int(baseline / peak * width) if peak else 0
        out.write(f"  {'':<{label_width}}{'-' * offset}^ "
                  f"baseline {baseline:g}\n")
    return out.getvalue()
