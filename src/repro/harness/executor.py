"""Parallel sweep executor.

Every figure of the paper is a sweep over independent, deterministic
``Multicore`` runs.  This module turns a sweep into data: a list of
:class:`RunSpec` values describing each run, fanned out across a process
pool and reduced to :class:`RunSummary` carriers in the order the specs
were given, regardless of completion order.

* :class:`RunSpec` -- a frozen, hashable description of one run
  (workload, design, scale, seed, model, epoch size, config overrides).
  Two equal specs produce bit-identical summaries, which is what makes
  the content-addressed cache (:mod:`repro.harness.cache`) sound.
* :class:`RunSummary` -- the slim serializable subset of
  :class:`~repro.system.RunResult` the figures need.  A full
  ``RunResult`` drags the whole ``Stats`` registry (and through it the
  machine) across the process boundary; the summary is a handful of
  ints.
* :func:`run_specs` -- execute a spec list.  ``jobs=1`` runs fully
  in-process (the debugging path); ``jobs>1`` uses a
  ``ProcessPoolExecutor``.  An optional result cache is consulted
  before dispatch and populated afterwards.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.runner import (
    Scale,
    bep_machine_config,
    bsp_machine_config,
    run_bep,
    run_bsp,
    scale_params,
)
from repro.sim.config import (
    BarrierDesign,
    FlushMode,
    MachineConfig,
    PersistencyModel,
)
from repro.system import RunResult

_BSP_DEFAULT_EPOCH_STORES = 10_000


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described.

    ``overrides`` holds extra :class:`MachineConfig` fields as a sorted
    tuple of ``(name, value)`` pairs so the spec stays hashable and its
    canonical form does not depend on keyword order.  ``workload_args``
    holds extra benchmark-constructor keywords the same way (BEP only:
    the microbenchmark factory takes per-workload knobs such as
    pingpong's ``conflict_rate`` / ``num_slots``; the BSP apps are
    profile-driven and take none).
    """

    kind: str                     # "bep" | "bsp"
    workload: str
    design: BarrierDesign
    scale: Scale
    seed: int = 1
    model: Optional[PersistencyModel] = None
    epoch_stores: Optional[int] = None
    undo_logging: bool = True
    flush_mode: FlushMode = FlushMode.CLWB
    transactions: Optional[int] = None    # BEP run length (None = scale default)
    mem_ops: Optional[int] = None         # BSP run length (None = scale default)
    overrides: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    workload_args: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in ("bep", "bsp"):
            raise ValueError(f"unknown run kind {self.kind!r}")
        if self.kind == "bsp" and self.workload_args:
            raise ValueError(
                "workload_args apply to BEP microbenchmarks only; the "
                "BSP apps are profile-driven"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def bep(cls, benchmark: str, design: BarrierDesign, scale: Scale,
            seed: int = 1, transactions: Optional[int] = None,
            flush_mode: FlushMode = FlushMode.CLWB,
            workload_args: Optional[Dict[str, Any]] = None,
            **overrides: Any) -> "RunSpec":
        return cls(
            kind="bep", workload=benchmark, design=design, scale=scale,
            seed=seed, model=PersistencyModel.BEP, flush_mode=flush_mode,
            transactions=transactions,
            overrides=tuple(sorted(overrides.items())),
            workload_args=tuple(sorted((workload_args or {}).items())),
        )

    @classmethod
    def bsp(cls, app: str, design: BarrierDesign, scale: Scale,
            seed: int = 1, epoch_stores: Optional[int] = None,
            undo_logging: bool = True,
            model: PersistencyModel = PersistencyModel.BSP,
            mem_ops: Optional[int] = None,
            **overrides: Any) -> "RunSpec":
        return cls(
            kind="bsp", workload=app, design=design, scale=scale,
            seed=seed, model=model, epoch_stores=epoch_stores,
            undo_logging=undo_logging, mem_ops=mem_ops,
            overrides=tuple(sorted(overrides.items())),
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolved_config(self) -> MachineConfig:
        """The exact :class:`MachineConfig` this spec runs under."""
        overrides = dict(self.overrides)
        if self.kind == "bep":
            return bep_machine_config(
                self.scale, self.design, self.flush_mode, **overrides
            )
        return bsp_machine_config(
            self.scale, self.design,
            epoch_stores=self._resolved_epoch_stores(),
            undo_logging=self.undo_logging,
            persistency=self.model or PersistencyModel.BSP,
            **overrides,
        )

    def _resolved_epoch_stores(self) -> int:
        if self.epoch_stores is not None:
            return self.epoch_stores
        return _BSP_DEFAULT_EPOCH_STORES

    def workload_params(self) -> Dict[str, Any]:
        """Workload-side inputs, with scale defaults resolved, for the
        cache key."""
        params = scale_params(self.scale)
        out: Dict[str, Any] = {
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale.value,
            "seed": self.seed,
            "threads": params.threads,
        }
        if self.kind == "bep":
            out["transactions"] = (
                self.transactions if self.transactions is not None
                else params.bep_transactions
            )
        else:
            out["mem_ops"] = (
                self.mem_ops if self.mem_ops is not None
                else params.bsp_mem_ops
            )
        if self.workload_args:
            # Only when present, so specs without extra knobs keep the
            # same canonical form (and cache key) as before the field
            # existed.
            out["workload_args"] = dict(self.workload_args)
        return out

    def describe(self) -> str:
        model = (self.model or PersistencyModel.BEP).value
        return (f"{self.kind}:{self.workload}/{self.design.value}"
                f"/{model}@{self.scale.value} seed={self.seed}")


@dataclass(frozen=True)
class RunSummary:
    """The serializable subset of :class:`~repro.system.RunResult` the
    figures and the result cache need.

    All fields are plain ints/bools, so equality is bit-exact and JSON
    round-trips losslessly -- both properties the determinism tests and
    the content-addressed cache rely on.
    """

    workload: str
    design: str
    cycles_visible: Optional[int]
    cycles_durable: Optional[int]
    transactions: int
    epochs_persisted: int
    epochs_conflict_flushed: int
    intra_conflicts: int
    inter_conflicts: int
    nvram_writes: int
    finished: bool

    # -- derived metrics, mirroring RunResult --------------------------
    @property
    def throughput(self) -> float:
        if not self.cycles_visible:
            return 0.0
        return 1000.0 * self.transactions / self.cycles_visible

    @property
    def total_epochs(self) -> int:
        return self.epochs_persisted

    @property
    def conflict_epoch_pct(self) -> float:
        if not self.epochs_persisted:
            return 0.0
        return 100.0 * self.epochs_conflict_flushed / self.epochs_persisted

    # -- construction / serialization ----------------------------------
    @classmethod
    def from_result(cls, spec: RunSpec, result: RunResult) -> "RunSummary":
        return cls(
            workload=spec.workload,
            design=spec.design.value,
            cycles_visible=result.cycles_visible,
            cycles_durable=result.cycles_durable,
            transactions=result.transactions,
            epochs_persisted=result.total_epochs,
            epochs_conflict_flushed=result.stats.total(
                "epochs_conflict_flushed"
            ),
            intra_conflicts=result.intra_conflicts,
            inter_conflicts=result.inter_conflicts,
            nvram_writes=result.nvram_writes,
            finished=result.finished,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSummary":
        return cls(**data)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute(spec: RunSpec) -> RunSummary:
    """Run one spec in this process and summarize the result.

    Module-level so it pickles cleanly into pool workers.
    """
    overrides = dict(spec.overrides)
    if spec.kind == "bep":
        result = run_bep(
            spec.workload, spec.design, scale=spec.scale, seed=spec.seed,
            transactions=spec.transactions, flush_mode=spec.flush_mode,
            workload_args=dict(spec.workload_args),
            **overrides,
        )
    else:
        result = run_bsp(
            spec.workload, spec.design, scale=spec.scale, seed=spec.seed,
            epoch_stores=spec._resolved_epoch_stores(),
            undo_logging=spec.undo_logging,
            persistency=spec.model or PersistencyModel.BSP,
            mem_ops=spec.mem_ops, **overrides,
        )
    return RunSummary.from_result(spec, result)


def execute_timed(spec: RunSpec) -> Tuple[RunSummary, float]:
    """:func:`execute` plus the run's wall-clock seconds.

    Module-level so it pickles cleanly into pool workers; the timing is
    taken inside the worker, so pool scheduling latency is excluded and
    the recorded cost approximates the run itself.
    """
    start = time.perf_counter()
    summary = execute(spec)
    return summary, time.perf_counter() - start


def default_jobs() -> int:
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Clamp a requested worker count to the machine, with a log line.

    ``None`` means every core.  Requested jobs are capped at
    ``os.cpu_count()``: CPU-bound workers beyond the physical core
    count only add scheduling overhead, and on a 1-CPU host a process
    pool is strictly slower than running in-process (fork + pickle cost
    with zero overlap), so a cap of 1 falls back to the serial path.
    """
    requested = default_jobs() if jobs is None else max(1, jobs)
    cap = os.cpu_count() or 1
    jobs = min(requested, cap)
    if jobs < requested:
        mode = ("in-process serial (a pool cannot overlap work on one "
                "cpu)" if jobs == 1 else f"{jobs} pool workers")
        print(
            f"[executor] capping jobs={requested} to os.cpu_count()="
            f"{cap}: running {mode}",
            file=sys.stderr,
        )
    return jobs


def order_longest_first(indices: List[int],
                        costs: Dict[int, Optional[float]]) -> List[int]:
    """LPT schedule: order work items by estimated cost, descending.

    Longest-processing-time-first is the classic makespan heuristic
    for identical parallel workers: dispatching the big runs first
    keeps the pool busy at the tail instead of waiting on one straggler
    that started last.  Items with no recorded cost are assumed to cost
    the mean of the known ones (ties keep submission order, so the
    result is deterministic).
    """
    known = [c for c in costs.values() if c]
    default = (sum(known) / len(known)) if known else 0.0
    return sorted(indices, key=lambda i: -(costs.get(i) or default))


def run_specs(
    specs: List[RunSpec],
    jobs: Optional[int] = None,
    cache=None,
    refresh: bool = False,
) -> List[RunSummary]:
    """Execute ``specs`` and return summaries in spec order.

    ``jobs=None`` uses every core; ``jobs=1`` runs serially in-process
    (no pool, easiest to debug/profile).  ``cache`` is any object with
    the :class:`repro.harness.cache.ResultCache` interface; with
    ``refresh`` the cache is only written, never read.  Each spec's
    content key is computed exactly once and reused across the probe,
    the store, and the cost lookup (hashing a resolved config per spec
    per phase is measurable on thousand-spec plans).

    Cache misses are executed longest-first by recorded wall-clock cost
    (see :func:`order_longest_first`); completion order never reorders
    the output, so any ``jobs`` value yields the same list.
    """
    jobs = resolve_jobs(jobs)
    summaries: List[Optional[RunSummary]] = [None] * len(specs)

    fingerprints: Optional[List[Tuple[str, str]]] = None
    if cache is not None:
        fingerprints = [cache.fingerprints(spec) for spec in specs]

    misses: List[int] = []
    for index in range(len(specs)):
        hit = (cache.get_by_key(fingerprints[index][0])
               if (cache is not None and not refresh) else None)
        if hit is not None:
            summaries[index] = hit
        else:
            misses.append(index)

    if misses:
        if cache is not None and len(misses) > 1:
            costs = {
                index: cache.cost_by_key(fingerprints[index][1])
                for index in misses
            }
            misses = order_longest_first(misses, costs)
        walls: Dict[int, float] = {}
        if jobs == 1 or len(misses) == 1:
            for index in misses:
                summaries[index], walls[index] = execute_timed(specs[index])
        else:
            workers = min(jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_timed, specs[index]): index
                    for index in misses
                }
                for future in as_completed(futures):
                    index = futures[future]
                    summaries[index], walls[index] = future.result()
        if cache is not None:
            for index in misses:
                key, cost_key = fingerprints[index]
                cache.put_by_key(key, specs[index], summaries[index],
                                 wall_seconds=walls[index],
                                 cost_key=cost_key)

    return summaries  # type: ignore[return-value]
