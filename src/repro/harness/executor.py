"""Parallel sweep executor.

Every figure of the paper is a sweep over independent, deterministic
``Multicore`` runs.  This module turns a sweep into data: a list of
:class:`RunSpec` values describing each run, fanned out across a process
pool and reduced to :class:`RunSummary` carriers in the order the specs
were given, regardless of completion order.

* :class:`RunSpec` -- a frozen, hashable description of one run
  (workload, design, scale, seed, model, epoch size, config overrides).
  Two equal specs produce bit-identical summaries, which is what makes
  the content-addressed cache (:mod:`repro.harness.cache`) sound.
* :class:`RunSummary` -- the slim serializable subset of
  :class:`~repro.system.RunResult` the figures need.  A full
  ``RunResult`` drags the whole ``Stats`` registry (and through it the
  machine) across the process boundary; the summary is a handful of
  ints.
* :func:`run_specs` -- execute a spec list.  ``jobs=1`` runs fully
  in-process (the debugging path); ``jobs>1`` uses a
  ``ProcessPoolExecutor``.  An optional result cache is consulted
  before dispatch and populated afterwards.
* :func:`execute_resilient` -- the self-healing pool driver underneath
  :func:`run_specs` and the plan runner.  A worker death
  (``BrokenProcessPool``) or a per-spec wall-clock timeout kills and
  respawns the pool with the surviving specs; a spec that takes a pool
  down ``max_attempts`` times is quarantined instead of wedging the
  sweep forever.  :class:`FarmHealth` reports what the driver had to
  do.

Because every run is a pure function of its spec, a respawned rerun of
a surviving spec produces the bit-identical summary the first attempt
would have -- resilience never perturbs results, only wall-clock.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.harness.runner import (
    Scale,
    bep_machine_config,
    bsp_machine_config,
    run_bep,
    run_bsp,
    scale_params,
)
from repro.sim.config import (
    BarrierDesign,
    FlushMode,
    MachineConfig,
    PersistencyModel,
)
from repro.system import RunResult

_BSP_DEFAULT_EPOCH_STORES = 10_000


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described.

    ``overrides`` holds extra :class:`MachineConfig` fields as a sorted
    tuple of ``(name, value)`` pairs so the spec stays hashable and its
    canonical form does not depend on keyword order.  ``workload_args``
    holds extra benchmark-constructor keywords the same way (BEP only:
    the microbenchmark factory takes per-workload knobs such as
    pingpong's ``conflict_rate`` / ``num_slots``; the BSP apps are
    profile-driven and take none).
    """

    kind: str                     # "bep" | "bsp"
    workload: str
    design: BarrierDesign
    scale: Scale
    seed: int = 1
    model: Optional[PersistencyModel] = None
    epoch_stores: Optional[int] = None
    undo_logging: bool = True
    flush_mode: FlushMode = FlushMode.CLWB
    transactions: Optional[int] = None    # BEP run length (None = scale default)
    mem_ops: Optional[int] = None         # BSP run length (None = scale default)
    overrides: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    workload_args: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in ("bep", "bsp"):
            raise ValueError(f"unknown run kind {self.kind!r}")
        if self.kind == "bsp" and self.workload_args:
            raise ValueError(
                "workload_args apply to BEP microbenchmarks only; the "
                "BSP apps are profile-driven"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def bep(cls, benchmark: str, design: BarrierDesign, scale: Scale,
            seed: int = 1, transactions: Optional[int] = None,
            flush_mode: FlushMode = FlushMode.CLWB,
            workload_args: Optional[Dict[str, Any]] = None,
            **overrides: Any) -> "RunSpec":
        return cls(
            kind="bep", workload=benchmark, design=design, scale=scale,
            seed=seed, model=PersistencyModel.BEP, flush_mode=flush_mode,
            transactions=transactions,
            overrides=tuple(sorted(overrides.items())),
            workload_args=tuple(sorted((workload_args or {}).items())),
        )

    @classmethod
    def bsp(cls, app: str, design: BarrierDesign, scale: Scale,
            seed: int = 1, epoch_stores: Optional[int] = None,
            undo_logging: bool = True,
            model: PersistencyModel = PersistencyModel.BSP,
            mem_ops: Optional[int] = None,
            **overrides: Any) -> "RunSpec":
        return cls(
            kind="bsp", workload=app, design=design, scale=scale,
            seed=seed, model=model, epoch_stores=epoch_stores,
            undo_logging=undo_logging, mem_ops=mem_ops,
            overrides=tuple(sorted(overrides.items())),
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolved_config(self) -> MachineConfig:
        """The exact :class:`MachineConfig` this spec runs under."""
        overrides = dict(self.overrides)
        if self.kind == "bep":
            return bep_machine_config(
                self.scale, self.design, self.flush_mode, **overrides
            )
        return bsp_machine_config(
            self.scale, self.design,
            epoch_stores=self._resolved_epoch_stores(),
            undo_logging=self.undo_logging,
            persistency=self.model or PersistencyModel.BSP,
            **overrides,
        )

    def _resolved_epoch_stores(self) -> int:
        if self.epoch_stores is not None:
            return self.epoch_stores
        return _BSP_DEFAULT_EPOCH_STORES

    def workload_params(self) -> Dict[str, Any]:
        """Workload-side inputs, with scale defaults resolved, for the
        cache key."""
        params = scale_params(self.scale)
        out: Dict[str, Any] = {
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale.value,
            "seed": self.seed,
            "threads": params.threads,
        }
        if self.kind == "bep":
            out["transactions"] = (
                self.transactions if self.transactions is not None
                else params.bep_transactions
            )
        else:
            out["mem_ops"] = (
                self.mem_ops if self.mem_ops is not None
                else params.bsp_mem_ops
            )
        if self.workload_args:
            # Only when present, so specs without extra knobs keep the
            # same canonical form (and cache key) as before the field
            # existed.
            out["workload_args"] = dict(self.workload_args)
        return out

    def describe(self) -> str:
        model = (self.model or PersistencyModel.BEP).value
        return (f"{self.kind}:{self.workload}/{self.design.value}"
                f"/{model}@{self.scale.value} seed={self.seed}")


@dataclass(frozen=True)
class RunSummary:
    """The serializable subset of :class:`~repro.system.RunResult` the
    figures and the result cache need.

    All fields are plain ints/bools, so equality is bit-exact and JSON
    round-trips losslessly -- both properties the determinism tests and
    the content-addressed cache rely on.
    """

    workload: str
    design: str
    cycles_visible: Optional[int]
    cycles_durable: Optional[int]
    transactions: int
    epochs_persisted: int
    epochs_conflict_flushed: int
    intra_conflicts: int
    inter_conflicts: int
    nvram_writes: int
    finished: bool

    # -- derived metrics, mirroring RunResult --------------------------
    @property
    def throughput(self) -> float:
        if not self.cycles_visible:
            return 0.0
        return 1000.0 * self.transactions / self.cycles_visible

    @property
    def total_epochs(self) -> int:
        return self.epochs_persisted

    @property
    def conflict_epoch_pct(self) -> float:
        if not self.epochs_persisted:
            return 0.0
        return 100.0 * self.epochs_conflict_flushed / self.epochs_persisted

    # -- construction / serialization ----------------------------------
    @classmethod
    def from_result(cls, spec: RunSpec, result: RunResult) -> "RunSummary":
        return cls(
            workload=spec.workload,
            design=spec.design.value,
            cycles_visible=result.cycles_visible,
            cycles_durable=result.cycles_durable,
            transactions=result.transactions,
            epochs_persisted=result.total_epochs,
            epochs_conflict_flushed=result.stats.total(
                "epochs_conflict_flushed"
            ),
            intra_conflicts=result.intra_conflicts,
            inter_conflicts=result.inter_conflicts,
            nvram_writes=result.nvram_writes,
            finished=result.finished,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSummary":
        return cls(**data)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute(spec: RunSpec) -> RunSummary:
    """Run one spec in this process and summarize the result.

    Module-level so it pickles cleanly into pool workers.
    """
    overrides = dict(spec.overrides)
    if spec.kind == "bep":
        result = run_bep(
            spec.workload, spec.design, scale=spec.scale, seed=spec.seed,
            transactions=spec.transactions, flush_mode=spec.flush_mode,
            workload_args=dict(spec.workload_args),
            **overrides,
        )
    else:
        result = run_bsp(
            spec.workload, spec.design, scale=spec.scale, seed=spec.seed,
            epoch_stores=spec._resolved_epoch_stores(),
            undo_logging=spec.undo_logging,
            persistency=spec.model or PersistencyModel.BSP,
            mem_ops=spec.mem_ops, **overrides,
        )
    return RunSummary.from_result(spec, result)


def _maybe_inject_farm_fault(spec: RunSpec) -> None:
    """Deterministic worker-fault hook for the resilience tests and CI.

    Driven by the ``REPRO_FARM_FAULT`` environment variable (inherited
    by pool workers), so a test can make exactly one worker die -- or
    one spec hang -- without patching pool internals:

    * ``crash-once:<workload>:<sentinel-path>`` -- the first worker to
      pick up a spec of ``<workload>`` creates the sentinel file
      (``O_CREAT | O_EXCL``, so concurrent workers race safely) and
      hard-exits, taking its pool down; every later attempt finds the
      sentinel and runs normally.  Exercises the respawn path.
    * ``hang:<workload>`` -- every attempt at ``<workload>`` sleeps
      past any reasonable timeout.  Exercises the timeout-kill and
      quarantine paths.
    """
    directive = os.environ.get("REPRO_FARM_FAULT")
    if not directive:
        return
    if multiprocessing.parent_process() is None:
        # Worker faults only make sense in pool workers; firing in the
        # serial in-process path would take the caller down with no
        # pool to heal it.
        return
    parts = directive.split(":", 2)
    if parts[0] == "crash-once" and len(parts) == 3:
        if spec.workload != parts[1]:
            return
        try:
            os.close(os.open(parts[2], os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return
        os._exit(86)
    elif parts[0] == "hang" and len(parts) >= 2 and spec.workload == parts[1]:
        time.sleep(3600)


def execute_timed(spec: RunSpec) -> Tuple[RunSummary, float]:
    """:func:`execute` plus the run's wall-clock seconds.

    Module-level so it pickles cleanly into pool workers; the timing is
    taken inside the worker, so pool scheduling latency is excluded and
    the recorded cost approximates the run itself.
    """
    _maybe_inject_farm_fault(spec)
    start = time.perf_counter()
    summary = execute(spec)
    return summary, time.perf_counter() - start


# ----------------------------------------------------------------------
# Self-healing execution
# ----------------------------------------------------------------------
_POLL_SECONDS = 0.2


class FarmError(RuntimeError):
    """A resilient sweep could not complete every spec: after the
    configured number of attempts some specs were quarantined."""


@dataclass
class FarmHealth:
    """What the self-healing executor had to do to finish a sweep.

    ``attempts`` maps a spec's :meth:`RunSpec.describe` string to how
    many failed attempts it accumulated; specs that reach
    ``max_attempts`` move to ``quarantined`` and are dropped from the
    sweep rather than allowed to take the pool down forever.
    """

    respawns: int = 0      # pool rebuilds after worker death / kill
    timeouts: int = 0      # specs that exceeded the wall-clock timeout
    attempts: Dict[str, int] = field(default_factory=dict)
    quarantined: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.respawns or self.timeouts or self.quarantined)

    def describe(self) -> str:
        if self.clean:
            return "farm healthy: no worker faults"
        parts = [f"{self.respawns} pool respawn(s)",
                 f"{self.timeouts} spec timeout(s)"]
        if self.quarantined:
            parts.append("quarantined: " + ", ".join(self.quarantined))
        return "; ".join(parts)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Hard-kill every worker process of a pool (used when a spec blows
    its wall-clock timeout: there is no cooperative way to interrupt a
    busy pool worker)."""
    processes = getattr(pool, "_processes", None)
    for process in list((processes or {}).values()):
        try:
            process.kill()
        except OSError:  # pragma: no cover - already-dead race
            pass


def _pool_generation(
    pending: Dict[int, RunSpec],
    workers: int,
    timeout: Optional[float],
    deliver: Callable[[int, RunSummary, float], None],
    should_stop: Optional[Callable[[], bool]],
    health: FarmHealth,
) -> Tuple[bool, Set[int]]:
    """One process-pool lifetime over ``pending``.

    Runs until every pending spec completes, the pool breaks (worker
    death), a spec exceeds ``timeout`` (the pool is then killed), or
    ``should_stop`` fires.  Completed specs are handed to ``deliver``
    (which removes them from ``pending``); the return value is
    ``(broke, suspects)`` where ``suspects`` are the indices that were
    running when the pool went down -- the candidates to charge an
    attempt to.
    """
    suspects: Set[int] = set()
    stopping = False
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {pool.submit(execute_timed, spec): index
                   for index, spec in pending.items()}
        running_since: Dict[Any, float] = {}
        while futures:
            done, _ = wait(list(futures), timeout=_POLL_SECONDS,
                           return_when=FIRST_COMPLETED)
            broke = False
            for future in done:
                index = futures.pop(future)
                was_running = running_since.pop(future, None) is not None
                if future.cancelled():
                    continue
                error = future.exception()
                if error is None:
                    summary, wall = future.result()
                    deliver(index, summary, wall)
                    continue
                if isinstance(error, BrokenProcessPool):
                    # A worker died; every sibling future breaks too.
                    # Only futures that were *running* are plausible
                    # culprits -- queued ones were never dispatched.
                    broke = True
                    if was_running:
                        suspects.add(index)
                    continue
                raise error
            if broke:
                for future, index in futures.items():
                    if future in running_since or future.running():
                        suspects.add(index)
                return True, suspects
            now = time.monotonic()
            for future in futures:
                if future.running() and future not in running_since:
                    running_since[future] = now
            if timeout is not None:
                for future, since in running_since.items():
                    if now - since > timeout:
                        health.timeouts += 1
                        suspects.add(futures[future])
                        _kill_pool_workers(pool)
                        return True, suspects
            if not stopping and should_stop is not None and should_stop():
                stopping = True
                for future in futures:
                    future.cancel()
        return False, suspects
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def execute_resilient(
    tasks: Dict[int, RunSpec],
    jobs: int,
    *,
    timeout: Optional[float] = None,
    max_attempts: int = 2,
    health: Optional[FarmHealth] = None,
    force_pool: bool = False,
    on_result: Optional[Callable[[int, RunSummary, float], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[int, Tuple[RunSummary, float]]:
    """Execute ``tasks`` (index -> spec) with worker-death resilience.

    Dispatch order follows ``tasks``'s iteration order (callers pass an
    LPT-ordered dict).  Returns ``{index: (summary, wall_seconds)}``
    for every task that completed; quarantined or stopped tasks are
    simply absent.  ``on_result`` fires as each result lands (the plan
    runner persists and checkpoints there); ``should_stop`` is polled
    between completions and stops dispatching new work when it returns
    True (in-flight work still completes and is delivered).

    ``jobs <= 1`` (or a single task, unless ``force_pool``) runs
    serially in-process: no pool means no crash/timeout protection,
    which is the debugging path's contract already.  With a pool, a
    ``BrokenProcessPool`` or a spec running past ``timeout`` seconds
    kills the pool and respawns it with the surviving specs; each
    suspect spec is charged one attempt, and a spec reaching
    ``max_attempts`` is quarantined (recorded in ``health``, never
    rerun).  Reruns of surviving specs are bit-identical to their first
    attempt -- runs are pure functions of the spec -- so resilience
    never changes results.
    """
    if health is None:
        health = FarmHealth()
    results: Dict[int, Tuple[RunSummary, float]] = {}
    pending: Dict[int, RunSpec] = dict(tasks)
    attempts: Dict[int, int] = {}

    def deliver(index: int, summary: RunSummary, wall: float) -> None:
        results[index] = (summary, wall)
        pending.pop(index, None)
        if on_result is not None:
            on_result(index, summary, wall)

    if not force_pool and (jobs <= 1 or len(pending) <= 1):
        for index, spec in list(pending.items()):
            if should_stop is not None and should_stop():
                break
            summary, wall = execute_timed(spec)
            deliver(index, summary, wall)
        return results

    while pending:
        if should_stop is not None and should_stop():
            break
        workers = max(1, min(jobs, len(pending)))
        broke, suspects = _pool_generation(
            pending, workers, timeout, deliver, should_stop, health
        )
        if not broke:
            break
        health.respawns += 1
        if not suspects:
            # The pool died before any future was observed running
            # (sub-poll-interval crash).  Charge everyone still pending:
            # harsh, but it bounds the respawn loop.
            suspects = set(pending)
        for index in sorted(suspects):
            spec = pending.get(index)
            if spec is None:
                continue
            count = attempts.get(index, 0) + 1
            attempts[index] = count
            health.attempts[spec.describe()] = count
            if count >= max_attempts:
                health.quarantined.append(spec.describe())
                del pending[index]
    return results


def default_jobs() -> int:
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Clamp a requested worker count to the machine, with a log line.

    ``None`` means every core.  Requested jobs are capped at
    ``os.cpu_count()``: CPU-bound workers beyond the physical core
    count only add scheduling overhead, and on a 1-CPU host a process
    pool is strictly slower than running in-process (fork + pickle cost
    with zero overlap), so a cap of 1 falls back to the serial path.
    """
    requested = default_jobs() if jobs is None else max(1, jobs)
    cap = os.cpu_count() or 1
    jobs = min(requested, cap)
    if jobs < requested:
        mode = ("in-process serial (a pool cannot overlap work on one "
                "cpu)" if jobs == 1 else f"{jobs} pool workers")
        print(
            f"[executor] capping jobs={requested} to os.cpu_count()="
            f"{cap}: running {mode}",
            file=sys.stderr,
        )
    return jobs


def order_longest_first(indices: List[int],
                        costs: Dict[int, Optional[float]]) -> List[int]:
    """LPT schedule: order work items by estimated cost, descending.

    Longest-processing-time-first is the classic makespan heuristic
    for identical parallel workers: dispatching the big runs first
    keeps the pool busy at the tail instead of waiting on one straggler
    that started last.  Items with no recorded cost are assumed to cost
    the mean of the known ones (ties keep submission order, so the
    result is deterministic).
    """
    known = [c for c in costs.values() if c]
    default = (sum(known) / len(known)) if known else 0.0
    return sorted(indices, key=lambda i: -(costs.get(i) or default))


def run_specs(
    specs: List[RunSpec],
    jobs: Optional[int] = None,
    cache=None,
    refresh: bool = False,
    timeout: Optional[float] = None,
    health: Optional[FarmHealth] = None,
) -> List[RunSummary]:
    """Execute ``specs`` and return summaries in spec order.

    ``jobs=None`` uses every core; ``jobs=1`` runs serially in-process
    (no pool, easiest to debug/profile).  ``cache`` is any object with
    the :class:`repro.harness.cache.ResultCache` interface; with
    ``refresh`` the cache is only written, never read.  Each spec's
    content key is computed exactly once and reused across the probe,
    the store, and the cost lookup (hashing a resolved config per spec
    per phase is measurable on thousand-spec plans).

    Cache misses are executed longest-first by recorded wall-clock cost
    (see :func:`order_longest_first`) via :func:`execute_resilient`, so
    a worker death or a spec blowing ``timeout`` seconds respawns the
    pool instead of aborting the sweep; completion order never reorders
    the output, so any ``jobs`` value yields the same list.  If a spec
    gets quarantined, a :exc:`FarmError` is raised -- unless the caller
    passed a ``health`` sink, in which case the quarantined slots come
    back ``None`` and the sink says why.
    """
    jobs = resolve_jobs(jobs)
    summaries: List[Optional[RunSummary]] = [None] * len(specs)

    fingerprints: Optional[List[Tuple[str, str]]] = None
    if cache is not None:
        fingerprints = [cache.fingerprints(spec) for spec in specs]

    misses: List[int] = []
    for index in range(len(specs)):
        hit = (cache.get_by_key(fingerprints[index][0])
               if (cache is not None and not refresh) else None)
        if hit is not None:
            summaries[index] = hit
        else:
            misses.append(index)

    if misses:
        if cache is not None and len(misses) > 1:
            costs = {
                index: cache.cost_by_key(fingerprints[index][1])
                for index in misses
            }
            misses = order_longest_first(misses, costs)
        own_health = health if health is not None else FarmHealth()
        completed = execute_resilient(
            {index: specs[index] for index in misses}, jobs,
            timeout=timeout, health=own_health,
        )
        walls: Dict[int, float] = {}
        for index, (summary, wall) in completed.items():
            summaries[index] = summary
            walls[index] = wall
        if not own_health.clean:
            print(f"[executor] {own_health.describe()}", file=sys.stderr)
        if cache is not None:
            for index in misses:
                if summaries[index] is None:
                    continue
                key, cost_key = fingerprints[index]
                cache.put_by_key(key, specs[index], summaries[index],
                                 wall_seconds=walls[index],
                                 cost_key=cost_key)
        if own_health.quarantined and health is None:
            raise FarmError(
                "specs quarantined after repeated worker faults: "
                + ", ".join(own_health.quarantined)
            )

    return summaries  # type: ignore[return-value]
