"""Content-addressed disk cache for sweep results.

A simulation run is a pure function of its inputs: the machine
configuration, the workload parameters, and the seed.  The cache keys
each :class:`~repro.harness.executor.RunSummary` by a SHA-256 over the
canonical JSON form of exactly those inputs, plus the versions of the
simulator *subsystems* the run actually exercises -- so a result is
reused only while nothing that could change it has changed.

Scoped invalidation
-------------------

Earlier revisions salted every key with one monolithic ``CODE_VERSION``
string, so any simulator change orphaned the entire cache.  The salt is
now a **per-subsystem version map** (:data:`SUBSYSTEM_VERSIONS`): each
spec declares the subsystems whose behaviour can reach its results
(:func:`spec_subsystems`), and only *those* versions are folded into
its key.  Bumping ``"flush"`` after a flush-path change invalidates
every run that owns flush machinery while the NP baselines -- which
never enter the flush path -- stay warm.

The bump rule, per subsystem: bump its version whenever a code change
can alter *any* observable of a run that declares it -- cycle counts,
stats (including timing-sensitive counters like stall counts), persist
order, or the NVRAM image -- even when headline results look unchanged.
Pure refactors that provably preserve event order (the
determinism-digest tests are the proof) may keep the version, but when
in doubt, bump: a cold sweep is cheap, a stale hit is silently wrong.
A change whose blast radius you cannot scope gets an ``"engine"`` bump,
which every spec declares.

* ``engine``   -- the event loop, ``system.py`` access paths, the
  processor: every run.
* ``mem``      -- caches, coherence, interconnect, NVRAM/MC: every run.
* ``flush``    -- the persist/flush handshake, arbiters, epoch
  machinery: every run under a persistency model (i.e. not NP).
* ``bsp``      -- undo logging, checkpoints, the BSP epoch manager:
  BSP and BSP-WT runs.
* ``workload:<name>`` -- the workload generator itself; defaults to
  version 1 until a generator change forces an entry here.

Version history: the four core subsystems start at 8, carrying on from
the retired ``sweep-v7`` whole-cache salt (the key-format change
orphans pre-v8 entries exactly once; see the git history of this file
for the v1-v7 log).  ``mem``/``flush`` 8 -> 9: protocol-wide fault
injection wired retry/timeout state machines into the flush handshake
and the NVRAM write path (fault-free runs are digest-identical, but
the blast radius spans both subsystems -- when in doubt, bump).

Torn-entry detection
--------------------

Each entry embeds a SHA-256 ``checksum`` over its summary payload,
verified on every read.  A torn or bit-flipped entry (power cut
mid-``os.replace`` on a non-atomic filesystem, disk corruption on a
long-lived farm host) is logged to stderr, deleted, and counted
(``corrupt`` on the instance, ``corrupt_entries`` in :meth:`stats`);
the read reports a miss, so the spec transparently reruns and the
rewritten entry heals the cache.  Entries written before the checksum
existed verify as legacy (no checksum, accepted as-is) until their
next version bump rewrites them.

Entries live as individual JSON files under ``.repro-cache/`` (one file
per key, atomically written), so concurrent sweeps, shards, and pool
workers can share a cache directory without locking.  Alongside each
summary the entry records the run's wall-clock seconds; a second,
version-*independent* cost record (under ``costs/``) survives version
bumps so the planner can still order invalidated reruns longest-first.
A cache hit touches the entry's mtime, which is what ``prune`` uses as
its LRU clock.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.harness.executor import RunSpec, RunSummary
from repro.sim.config import MachineConfig, PersistencyModel

# Per-subsystem cache versions.  Bump one entry when a change can alter
# the results of runs declaring that subsystem; every cached entry whose
# key folded the old version becomes unreachable, everything else stays
# warm.  Workloads not listed here are at version
# ``_DEFAULT_SUBSYSTEM_VERSION``.
SUBSYSTEM_VERSIONS: Dict[str, int] = {
    "engine": 8,
    "mem": 9,
    "flush": 9,
    "bsp": 8,
}

_DEFAULT_SUBSYSTEM_VERSION = 1

DEFAULT_CACHE_DIR = Path(".repro-cache")

_COSTS_SUBDIR = "costs"


def spec_subsystems(spec: RunSpec) -> Tuple[str, ...]:
    """The subsystems whose behaviour can reach this spec's results.

    Every run depends on the engine, the memory system, and its own
    workload generator.  The flush/persist machinery is only on the
    path under a persistency model (NP baselines never flush), and the
    undo-log/checkpoint machinery only under BSP-family models.
    """
    model = spec.model or PersistencyModel.BEP
    subs = ["engine", "mem", f"workload:{spec.workload}"]
    if model is not PersistencyModel.NP:
        subs.append("flush")
    if model in (PersistencyModel.BSP, PersistencyModel.BSP_WT):
        subs.append("bsp")
    return tuple(sorted(subs))


def scoped_versions(
    spec: RunSpec, versions: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """The ``{subsystem: version}`` slice folded into this spec's key.

    ``versions`` overlays :data:`SUBSYSTEM_VERSIONS` (used by tests and
    by callers simulating a bump without editing the module).
    """
    table: Mapping[str, int] = SUBSYSTEM_VERSIONS
    if versions is not None:
        table = {**SUBSYSTEM_VERSIONS, **versions}
    return {
        name: table.get(name, _DEFAULT_SUBSYSTEM_VERSION)
        for name in spec_subsystems(spec)
    }


def canonical_config(config: MachineConfig) -> Dict[str, Any]:
    """A JSON-stable dict of every config field (enums as values)."""
    out: Dict[str, Any] = {}
    for fld in dataclasses.fields(config):
        value = getattr(config, fld.name)
        if isinstance(value, enum.Enum):
            value = value.value
        out[fld.name] = value
    return out


def _digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def spec_fingerprints(
    spec: RunSpec, versions: Optional[Mapping[str, int]] = None,
) -> Tuple[str, str]:
    """``(key, cost_key)`` for a spec, resolving its inputs once.

    ``key`` is the content address of the result (inputs + scoped
    subsystem versions); ``cost_key`` hashes the same inputs *without*
    the versions, so recorded wall-clock costs survive version bumps
    and keep informing the scheduler about the reruns they trigger.
    """
    body = {
        "config": canonical_config(spec.resolved_config()),
        "workload": spec.workload_params(),
    }
    cost_key = _digest(body)
    key = _digest({"versions": scoped_versions(spec, versions), **body})
    return key, cost_key


def spec_key(
    spec: RunSpec, versions: Optional[Mapping[str, int]] = None,
) -> str:
    """SHA-256 fingerprint of everything that determines a run's result."""
    return spec_fingerprints(spec, versions)[0]


def _record_files(directory: Path):
    """Cache records only: 64-hex-named ``.json`` files.

    The cache root also hosts the advisory ``plan.json`` cursor (and
    the ``costs/`` subdir), which must not count as — or be GC'd as —
    a result entry.
    """
    for path in directory.glob("*.json"):
        stem = path.stem
        if len(stem) == 64 and all(c in "0123456789abcdef" for c in stem):
            yield path


class ResultCache:
    """Disk-backed map from :class:`RunSpec` to :class:`RunSummary`.

    ``hits`` / ``misses`` count ``get`` outcomes so drivers (and the
    bench harness) can report the cache's effectiveness.  ``versions``
    overlays :data:`SUBSYSTEM_VERSIONS` for every key this instance
    computes (tests use it to simulate subsystem bumps).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 versions: Optional[Mapping[str, int]] = None) -> None:
        self.root = Path(root)
        self.versions = dict(versions) if versions is not None else None
        self.hits = 0
        self.misses = 0
        self.corrupt = 0  # torn/corrupted entries discarded on read

    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> str:
        return spec_key(spec, self.versions)

    def fingerprints(self, spec: RunSpec) -> Tuple[str, str]:
        """``(key, cost_key)``, resolving the spec's inputs once."""
        return spec_fingerprints(spec, self.versions)

    def _path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _cost_path(self, cost_key: str) -> Path:
        return self.root / _COSTS_SUBDIR / f"{cost_key}.json"

    # ------------------------------------------------------------------
    def contains_key(self, key: str) -> bool:
        """Existence probe without loading or counting a hit.

        The planner's one-pass probe over thousand-spec plans: a stat
        per entry instead of a parse.  A truncated entry passes the
        probe but falls back to a recompute at ``get`` time.
        """
        return self._path_for(key).is_file()

    def get(self, spec: RunSpec) -> Optional[RunSummary]:
        return self.get_by_key(self.key_for(spec))

    def get_by_key(self, key: str) -> Optional[RunSummary]:
        path = self._path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            # Missing entry: a plain miss.
            self.misses += 1
            return None
        try:
            data = json.loads(raw)
            checksum = data.get("checksum")
            if (checksum is not None
                    and checksum != _digest(data["summary"])):
                raise ValueError("payload checksum mismatch")
            summary = RunSummary.from_dict(data["summary"])
        except (ValueError, KeyError, TypeError):
            # The file exists but its payload is torn, bit-flipped, or
            # stale-format: warn, delete, count, and miss -- the rerun
            # rewrites a good entry.
            self._discard_corrupt(path, key)
            self.misses += 1
            return None
        self.hits += 1
        try:
            # The hit is this entry's last use: advance its mtime so
            # ``prune`` evicts least-recently-*used*, not least-
            # recently-written.
            os.utime(path, None)
        except OSError:
            pass
        return summary

    def _discard_corrupt(self, path: Path, key: str) -> None:
        self.corrupt += 1
        print(
            f"[cache] corrupt entry {key[:16]}... "
            "(checksum/parse failure): deleting, will recompute",
            file=sys.stderr,
        )
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, spec: RunSpec, summary: RunSummary,
            wall_seconds: Optional[float] = None) -> Path:
        key, cost_key = self.fingerprints(spec)
        return self.put_by_key(key, spec, summary,
                               wall_seconds=wall_seconds, cost_key=cost_key)

    def put_by_key(self, key: str, spec: RunSpec, summary: RunSummary,
                   wall_seconds: Optional[float] = None,
                   cost_key: Optional[str] = None) -> Path:
        path = self._path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = summary.to_dict()
        record = {
            "key": key,
            "versions": scoped_versions(spec, self.versions),
            "spec": spec.describe(),
            "summary": payload,
            # Torn-write detection: verified on every read (see the
            # module docstring).
            "checksum": _digest(payload),
        }
        if wall_seconds is not None:
            record["wall_seconds"] = round(wall_seconds, 4)
        self._atomic_write(path, record)
        if wall_seconds is not None and cost_key is not None:
            self._put_cost(cost_key, spec, wall_seconds)
        return path

    def _atomic_write(self, path: Path, record: Dict[str, Any]) -> None:
        # Atomic publish: concurrent writers of the same key race
        # harmlessly (both write equivalent content).
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Cost metadata (version-independent scheduler input)
    # ------------------------------------------------------------------
    def _put_cost(self, cost_key: str, spec: RunSpec,
                  wall_seconds: float) -> None:
        path = self._cost_path(cost_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, {
            "spec": spec.describe(),
            "wall_seconds": round(wall_seconds, 4),
        })

    def cost_by_key(self, cost_key: str) -> Optional[float]:
        """Recorded wall-clock seconds for this spec's inputs, if any."""
        try:
            with self._cost_path(cost_key).open(
                    "r", encoding="utf-8") as handle:
                value = json.load(handle).get("wall_seconds")
            return float(value) if value is not None else None
        except (OSError, ValueError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Farm-host hygiene: stats and pruning
    # ------------------------------------------------------------------
    def verify_entry(self, path: Path) -> bool:
        """True when the entry at ``path`` parses and its checksum (if
        present -- legacy entries have none) matches its payload."""
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            checksum = data.get("checksum")
            if (checksum is not None
                    and checksum != _digest(data["summary"])):
                return False
            RunSummary.from_dict(data["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            return False
        return True

    def stats(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Entry counts, byte totals, corrupt-entry count (every entry
        is checksum-verified, read-only), and last-use (mtime) age
        spread."""
        now = time.time() if now is None else now
        entries = 0
        total_bytes = 0
        corrupt_entries = 0
        ages = []
        if self.root.is_dir():
            for path in _record_files(self.root):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries += 1
                total_bytes += stat.st_size
                if not self.verify_entry(path):
                    corrupt_entries += 1
                ages.append(max(0.0, now - stat.st_mtime))
        cost_entries = 0
        cost_bytes = 0
        costs_dir = self.root / _COSTS_SUBDIR
        if costs_dir.is_dir():
            for path in _record_files(costs_dir):
                try:
                    cost_bytes += path.stat().st_size
                except OSError:
                    continue
                cost_entries += 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "corrupt_entries": corrupt_entries,
            "cost_entries": cost_entries,
            "cost_bytes": cost_bytes,
            "newest_age_s": round(min(ages), 1) if ages else None,
            "oldest_age_s": round(max(ages), 1) if ages else None,
            "mean_age_s": round(sum(ages) / len(ages), 1) if ages else None,
        }

    def prune(self, max_bytes: Optional[int] = None,
              max_age_days: Optional[float] = None,
              dry_run: bool = False,
              now: Optional[float] = None) -> Tuple[int, int]:
        """LRU/age-based GC; returns ``(entries_removed, bytes_freed)``.

        ``max_age_days`` first drops every record (result *and* cost)
        not used for that long; ``max_bytes`` then evicts
        least-recently-used result entries until the result files fit
        the budget.  ``dry_run`` reports without deleting.
        """
        now = time.time() if now is None else now
        removed = 0
        freed = 0

        def unlink(path: Path, size: int) -> None:
            nonlocal removed, freed
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    return
            removed += 1
            freed += size

        survivors = []  # (mtime, size, path) of result entries
        candidates = []
        if self.root.is_dir():
            candidates.extend(_record_files(self.root))
            costs_dir = self.root / _COSTS_SUBDIR
            if costs_dir.is_dir():
                candidates.extend(_record_files(costs_dir))
        cutoff = (now - max_age_days * 86400.0
                  if max_age_days is not None else None)
        for path in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue
            if cutoff is not None and stat.st_mtime < cutoff:
                unlink(path, stat.st_size)
            elif path.parent == self.root:
                survivors.append((stat.st_mtime, stat.st_size, path))

        if max_bytes is not None:
            survivors.sort()  # oldest last-use first
            total = sum(size for _, size, _ in survivors)
            for _, size, path in survivors:
                if total <= max_bytes:
                    break
                unlink(path, size)
                total -= size
        return removed, freed

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in _record_files(self.root):
                entry.unlink()
                removed += 1
            costs_dir = self.root / _COSTS_SUBDIR
            if costs_dir.is_dir():
                for entry in _record_files(costs_dir):
                    entry.unlink()
                    removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in _record_files(self.root))
