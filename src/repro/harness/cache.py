"""Content-addressed disk cache for sweep results.

A simulation run is a pure function of its inputs: the machine
configuration, the workload parameters, and the seed.  The cache keys
each :class:`~repro.harness.executor.RunSummary` by a SHA-256 over the
canonical JSON form of exactly those inputs, plus a code-version salt --
so a result is reused only while nothing that could change it has
changed, and bumping :data:`CODE_VERSION` invalidates the whole cache
when the simulator's behaviour changes.

Entries live as individual JSON files under ``.repro-cache/`` (one file
per key, atomically written), so concurrent sweeps and pool workers can
share a cache directory without locking.

The bump rule for :data:`CODE_VERSION`: bump it whenever a code change
can alter *any* observable of *any* run -- cycle counts, stats
(including timing-sensitive counters like stall counts), persist order,
or the NVRAM image -- even when headline results look unchanged.  Pure
refactors that provably preserve event order (the determinism-digest
tests are the proof) may keep the salt, but when in doubt, bump: a cold
sweep is cheap, a stale hit is silently wrong.

History:

* ``sweep-v1`` -- PR 1, initial cache.
* ``sweep-v2`` -- PR 2, engine two-tier queue + inline completions;
  event order is digest-identical but the IDT strand-subsumption fix
  changes flush order (and therefore stall/conflict stats) for
  stranded workloads.
* ``sweep-v5`` -- fault injection wired through the flush handshake
  and memory controllers (new arbiter/controller counters even when
  disabled), plus replayable persist-history payloads on the tracked
  image.
* ``sweep-v6`` -- the epoch-granular fast-forward drain engine.  It is
  digest-invisible by contract, but the drain path it replaces is the
  per-op hot loop for every store-heavy run, so cached summaries from
  the pre-fast-forward code no longer certify the current simulator.
* ``sweep-v7`` -- virtualised handshake broadcast legs (BankAck
  delivery folded into a count + deadline, PersistCMP and idle-bank
  FlushEpoch legs made analytic) and the single-line MC write path.
  Event *timelines* are digest-identical, but the resident event
  population differs, so any stat keyed off queue shape -- and every
  fault-injected run, which keeps real per-ack events -- must be
  re-certified under the new code.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.harness.executor import RunSpec, RunSummary
from repro.sim.config import MachineConfig

# Bump whenever a simulator change can alter run results; every cached
# entry keyed under the old salt becomes unreachable.
CODE_VERSION = "sweep-v7"

DEFAULT_CACHE_DIR = Path(".repro-cache")


def canonical_config(config: MachineConfig) -> Dict[str, Any]:
    """A JSON-stable dict of every config field (enums as values)."""
    out: Dict[str, Any] = {}
    for fld in dataclasses.fields(config):
        value = getattr(config, fld.name)
        if isinstance(value, enum.Enum):
            value = value.value
        out[fld.name] = value
    return out


def spec_key(spec: RunSpec, salt: str = CODE_VERSION) -> str:
    """SHA-256 fingerprint of everything that determines a run's result."""
    payload = {
        "salt": salt,
        "config": canonical_config(spec.resolved_config()),
        "workload": spec.workload_params(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed map from :class:`RunSpec` to :class:`RunSummary`.

    ``hits`` / ``misses`` count ``get`` outcomes so drivers (and the
    bench harness) can report the cache's effectiveness.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 salt: str = CODE_VERSION) -> None:
        self.root = Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> str:
        return spec_key(spec, self.salt)

    def _path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[RunSummary]:
        path = self._path_for(self.key_for(spec))
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            summary = RunSummary.from_dict(data["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, truncated, or stale-format entry: treat as a miss
            # (a refresh will overwrite it).
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, spec: RunSpec, summary: RunSummary) -> Path:
        key = self.key_for(spec)
        path = self._path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "key": key,
            "salt": self.salt,
            "spec": spec.describe(),
            "summary": summary.to_dict(),
        }
        # Atomic publish: concurrent writers of the same key race
        # harmlessly (both write identical content).
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
