"""Drivers that regenerate each figure/table of the paper.

Each ``figNN`` function runs the corresponding sweep and returns
:class:`~repro.harness.report.FigureTable` objects whose rows mirror the
paper's bar groups.  Every sweep is expressed as a list of
:class:`~repro.harness.executor.RunSpec` values and executed through
:func:`~repro.harness.executor.run_specs`, so independent runs fan out
across a process pool (``--jobs``) and completed results are served from
the content-addressed disk cache (``.repro-cache/``, disable with
``--no-cache``, recompute with ``--refresh``).  The module is runnable::

    python -m repro.harness.experiments fig11 fig12 --scale small
    python -m repro.harness.experiments all --scale tiny --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.harness.executor import RunSpec, RunSummary, run_specs
from repro.harness.report import FigureTable, normalize_rows
from repro.harness.runner import (
    BSP_EPOCH_SIZES,
    Scale,
    default_bsp_epoch_size,
)
from repro.sim.config import BarrierDesign, FlushMode, PersistencyModel
from repro.workloads.apps.profiles import APP_NAMES
from repro.workloads.micro import MICROBENCHMARKS

# The Table 2 microbenchmarks the paper's figures sweep.  Pinned
# explicitly rather than derived from the registry: the registry also
# carries simulator-only workloads (``hotset``) that the figures must
# not pick up.
BEP_BENCHMARKS = ["hash", "queue", "rbtree", "sdg", "sps"]
assert all(b in MICROBENCHMARKS for b in BEP_BENCHMARKS)
BEP_DESIGNS = [
    BarrierDesign.LB,
    BarrierDesign.LB_IDT,
    BarrierDesign.LB_PF,
    BarrierDesign.LB_PP,
]

# A plan pairs each spec with the key the figure indexes it by.
_Plan = Tuple[List[RunSpec], List[tuple]]


def _np_baseline_spec(app: str, scale: Scale, seed: int,
                      mem_ops: Optional[int]) -> RunSpec:
    """The shared NP baseline run (identical across fig13/fig14/WT, so
    the cache computes it once per app)."""
    return RunSpec.bsp(
        app, BarrierDesign.LB, scale, seed=seed,
        model=PersistencyModel.NP, mem_ops=mem_ops,
    )


def _run_plan(plan: _Plan, jobs: Optional[int], cache: Optional[ResultCache],
              refresh: bool) -> Dict[tuple, RunSummary]:
    specs, keys = plan
    summaries = run_specs(specs, jobs=jobs, cache=cache, refresh=refresh)
    return dict(zip(keys, summaries))


# ----------------------------------------------------------------------
# Figures 11 and 12: BEP microbenchmarks
# ----------------------------------------------------------------------
def bep_sweep_plan(scale: Scale, seed: int = 1,
                   transactions: Optional[int] = None,
                   benchmarks: Optional[Sequence[str]] = None) -> _Plan:
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for bench in benchmarks or BEP_BENCHMARKS:
        for design in BEP_DESIGNS:
            specs.append(RunSpec.bep(
                bench, design, scale, seed=seed, transactions=transactions,
            ))
            keys.append((bench, design.value))
    return specs, keys


def run_bep_sweep(
    scale: Scale = Scale.SMALL,
    seed: int = 1,
    transactions: Optional[int] = None,
    benchmarks: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """benchmark -> design -> (throughput, conflict_pct)."""
    by_key = _run_plan(
        bep_sweep_plan(scale, seed, transactions, benchmarks),
        jobs, cache, refresh,
    )
    results: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for (bench, design), summary in by_key.items():
        results.setdefault(bench, {})[design] = (
            summary.throughput, summary.conflict_epoch_pct
        )
    return results


def fig11(scale: Scale = Scale.SMALL, seed: int = 1,
          transactions: Optional[int] = None,
          sweep: Optional[Dict] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> FigureTable:
    """Figure 11: BEP transaction throughput normalized to LB."""
    sweep = sweep or run_bep_sweep(scale, seed, transactions,
                                   jobs=jobs, cache=cache, refresh=refresh)
    raw = {
        bench: {design: vals[0] for design, vals in row.items()}
        for bench, row in sweep.items()
    }
    normalized = normalize_rows(raw, BarrierDesign.LB.value)
    table = FigureTable(
        "Figure 11: transaction throughput normalized to LB",
        [d.value for d in BEP_DESIGNS], summary="gmean",
    )
    for bench in sorted(normalized):
        table.add_row(bench, [normalized[bench][d.value] for d in BEP_DESIGNS])
    return table


def fig12(scale: Scale = Scale.SMALL, seed: int = 1,
          transactions: Optional[int] = None,
          sweep: Optional[Dict] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> FigureTable:
    """Figure 12: percentage of epochs flushed because of a conflict."""
    sweep = sweep or run_bep_sweep(scale, seed, transactions,
                                   jobs=jobs, cache=cache, refresh=refresh)
    table = FigureTable(
        "Figure 12: % conflicting epochs",
        [d.value for d in BEP_DESIGNS], summary="amean",
    )
    for bench in sorted(sweep):
        table.add_row(
            bench, [sweep[bench][d.value][1] for d in BEP_DESIGNS]
        )
    return table


# ----------------------------------------------------------------------
# Figure 13: BSP epoch-size sweep
# ----------------------------------------------------------------------
def fig13_plan(scale: Scale, seed: int = 1,
               mem_ops: Optional[int] = None,
               apps: Optional[Sequence[str]] = None) -> _Plan:
    sizes = BSP_EPOCH_SIZES[scale]
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for app in apps or APP_NAMES:
        specs.append(_np_baseline_spec(app, scale, seed, mem_ops))
        keys.append((app, "NP"))
        for epoch_stores in sizes:
            specs.append(RunSpec.bsp(
                app, BarrierDesign.LB, scale, seed=seed,
                epoch_stores=epoch_stores, mem_ops=mem_ops,
            ))
            keys.append((app, epoch_stores))
    return specs, keys


def fig13(scale: Scale = Scale.SMALL, seed: int = 1,
          mem_ops: Optional[int] = None,
          apps: Optional[List[str]] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> FigureTable:
    """Figure 13: BSP execution time vs epoch size, normalized to NP.

    Time-to-durability is used on both sides of the ratio so that the
    cost of epochs still buffered at the end of a (scaled-down) run is
    charged to the configuration that deferred them; at paper-length
    runs the visible and durable ratios converge.
    """
    sizes = BSP_EPOCH_SIZES[scale]
    by_key = _run_plan(
        fig13_plan(scale, seed, mem_ops, apps), jobs, cache, refresh
    )
    table = FigureTable(
        "Figure 13: execution time normalized to NP (epoch-size sweep, "
        f"sizes {sizes})",
        [f"LB{n}" for n in sizes], summary="gmean",
    )
    for app in apps or APP_NAMES:
        baseline = by_key[(app, "NP")]
        table.add_row(app, [
            by_key[(app, n)].cycles_durable / baseline.cycles_durable
            for n in sizes
        ])
    return table


# ----------------------------------------------------------------------
# Figure 14: BSP barrier designs
# ----------------------------------------------------------------------
FIG14_COLUMNS = ["LB", "LB+IDT", "LB++", "LB++NOLOG"]

_FIG14_VARIANTS = [
    ("LB", BarrierDesign.LB, True),
    ("LB+IDT", BarrierDesign.LB_IDT, True),
    ("LB++", BarrierDesign.LB_PP, True),
    ("LB++NOLOG", BarrierDesign.LB_PP, False),
]


def fig14_plan(scale: Scale, seed: int = 1,
               mem_ops: Optional[int] = None,
               epoch_stores: Optional[int] = None,
               apps: Optional[Sequence[str]] = None) -> _Plan:
    if epoch_stores is None:
        epoch_stores = default_bsp_epoch_size(scale)
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for app in apps or APP_NAMES:
        specs.append(_np_baseline_spec(app, scale, seed, mem_ops))
        keys.append((app, "NP"))
        for label, design, logging in _FIG14_VARIANTS:
            specs.append(RunSpec.bsp(
                app, design, scale, seed=seed, epoch_stores=epoch_stores,
                undo_logging=logging, mem_ops=mem_ops,
            ))
            keys.append((app, label))
    return specs, keys


def fig14(scale: Scale = Scale.SMALL, seed: int = 1,
          mem_ops: Optional[int] = None,
          epoch_stores: Optional[int] = None,
          apps: Optional[List[str]] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> Tuple[FigureTable, float]:
    """Figure 14: BSP execution time normalized to NP, per design.

    Also returns the inter-thread share of conflicts (the paper reports
    86%).
    """
    if epoch_stores is None:
        epoch_stores = default_bsp_epoch_size(scale)
    by_key = _run_plan(
        fig14_plan(scale, seed, mem_ops, epoch_stores, apps),
        jobs, cache, refresh,
    )
    table = FigureTable(
        "Figure 14: execution time normalized to NP (designs, "
        f"epoch={epoch_stores})",
        FIG14_COLUMNS, summary="gmean",
    )
    inter = intra = 0
    for app in apps or APP_NAMES:
        baseline = by_key[(app, "NP")]
        row = []
        for label, design, _logging in _FIG14_VARIANTS:
            summary = by_key[(app, label)]
            row.append(summary.cycles_durable / baseline.cycles_durable)
            if design is BarrierDesign.LB and label == "LB":
                inter += summary.inter_conflicts
                intra += summary.intra_conflicts
        table.add_row(app, row)
    total = inter + intra
    inter_share = 100.0 * inter / total if total else 0.0
    return table, inter_share


# ----------------------------------------------------------------------
# In-text ablations (section 7)
# ----------------------------------------------------------------------
def flush_mode_plan(scale: Scale, seed: int = 1,
                    transactions: Optional[int] = None) -> _Plan:
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for bench in BEP_BENCHMARKS:
        for mode in (FlushMode.CLFLUSH, FlushMode.CLWB):
            specs.append(RunSpec.bep(
                bench, BarrierDesign.LB_PP, scale, seed=seed,
                transactions=transactions, flush_mode=mode,
            ))
            keys.append((bench, mode.value))
    return specs, keys


def ablation_flush_mode(scale: Scale = Scale.SMALL, seed: int = 1,
                        transactions: Optional[int] = None,
                        jobs: Optional[int] = None,
                        cache: Optional[ResultCache] = None,
                        refresh: bool = False) -> FigureTable:
    """Section 7: non-invalidating (clwb) vs invalidating (clflush)
    flushes; the paper reports clwb ~30% faster."""
    by_key = _run_plan(
        flush_mode_plan(scale, seed, transactions), jobs, cache, refresh
    )
    table = FigureTable(
        "Ablation: clwb vs clflush flushes (throughput, normalized to "
        "clflush)", ["clflush", "clwb"], summary="gmean",
    )
    for bench in BEP_BENCHMARKS:
        base = by_key[(bench, FlushMode.CLFLUSH.value)].throughput
        table.add_row(bench, [
            1.0, by_key[(bench, FlushMode.CLWB.value)].throughput / base
        ])
    return table


def writethrough_plan(scale: Scale, seed: int = 1,
                      mem_ops: Optional[int] = None,
                      apps: Optional[Sequence[str]] = None) -> _Plan:
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for app in apps or APP_NAMES:
        specs.append(_np_baseline_spec(app, scale, seed, mem_ops))
        keys.append((app, "NP"))
        specs.append(RunSpec.bsp(
            app, BarrierDesign.LB, scale, seed=seed,
            model=PersistencyModel.BSP_WT, mem_ops=mem_ops,
        ))
        keys.append((app, "BSP-WT"))
    return specs, keys


def ablation_writethrough(scale: Scale = Scale.SMALL, seed: int = 1,
                          mem_ops: Optional[int] = None,
                          apps: Optional[List[str]] = None,
                          jobs: Optional[int] = None,
                          cache: Optional[ResultCache] = None,
                          refresh: bool = False) -> FigureTable:
    """Section 7.2: naive write-through BSP, ~8x over NP in the paper."""
    by_key = _run_plan(
        writethrough_plan(scale, seed, mem_ops, apps), jobs, cache, refresh
    )
    table = FigureTable(
        "Ablation: naive write-through BSP (execution time normalized "
        "to NP)", ["BSP-WT"], summary="gmean",
    )
    for app in apps or APP_NAMES:
        baseline = by_key[(app, "NP")]
        summary = by_key[(app, "BSP-WT")]
        table.add_row(
            app, [summary.cycles_visible / baseline.cycles_visible]
        )
    return table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
_ALL_FIGURES = ("fig11", "fig12", "fig13", "fig14", "flushmode",
                "writethrough")


def all_specs(scale: Scale, seed: int = 1) -> List[RunSpec]:
    """The deduplicated union of every figure's specs, in first-seen
    order.  Used to prewarm the cache with one big parallel batch before
    the figures are assembled (the shared NP baselines run once)."""
    seen = {}
    for plan in (
        bep_sweep_plan(scale, seed),
        fig13_plan(scale, seed),
        fig14_plan(scale, seed),
        flush_mode_plan(scale, seed),
        writethrough_plan(scale, seed),
    ):
        for spec in plan[0]:
            seen.setdefault(spec, None)
    return list(seen)


def add_executor_args(parser: argparse.ArgumentParser) -> None:
    """The sweep-executor knobs, shared with ``python -m repro``."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel worker processes (default: all cores; 1 = "
             "in-process serial execution)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute every run and overwrite cached results",
    )
    parser.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR),
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures."
    )
    parser.add_argument(
        "figures", nargs="+",
        choices=list(_ALL_FIGURES) + ["all"],
    )
    parser.add_argument("--scale", default="small",
                        choices=[s.value for s in Scale])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv-dir", default=None,
                        help="write each figure's data as CSV here")
    parser.add_argument("--chart", action="store_true",
                        help="render terminal bar charts too")
    add_executor_args(parser)
    args = parser.parse_args(argv)
    scale = Scale(args.scale)
    wanted = set(args.figures)
    run_all = "all" in wanted
    if run_all:
        wanted = set(_ALL_FIGURES)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    jobs = args.jobs
    refresh = args.refresh

    def emit(tag: str, table, precision: int = 3) -> None:
        print(table.render(precision=precision))
        if args.chart:
            from repro.harness.export import render_bars
            print(render_bars(table))
        if args.csv_dir:
            from repro.harness.export import write_csv
            path = write_csv(table, f"{args.csv_dir}/{tag}.csv")
            print(f"[wrote {path}]", file=sys.stderr)
        print()

    start = time.time()
    if run_all and cache is not None:
        # One batch over the union of all figures' specs: maximum
        # fan-out, shared baselines computed once, figures below then
        # assemble from the warm cache.
        run_specs(all_specs(scale, args.seed), jobs=jobs, cache=cache,
                  refresh=refresh)
        refresh = False
    if wanted & {"fig11", "fig12"}:
        sweep = run_bep_sweep(scale, args.seed, jobs=jobs, cache=cache,
                              refresh=refresh)
        if "fig11" in wanted:
            emit("fig11", fig11(scale, args.seed, sweep=sweep))
        if "fig12" in wanted:
            emit("fig12", fig12(scale, args.seed, sweep=sweep), precision=1)
    if "fig13" in wanted:
        emit("fig13", fig13(scale, args.seed, jobs=jobs, cache=cache,
                            refresh=refresh), precision=2)
    if "fig14" in wanted:
        table, inter_share = fig14(scale, args.seed, jobs=jobs, cache=cache,
                                   refresh=refresh)
        emit("fig14", table, precision=2)
        print(f"inter-thread share of conflicts: {inter_share:.0f}%"
              " (paper: 86%)\n")
    if "flushmode" in wanted:
        emit("ablation_flush_mode",
             ablation_flush_mode(scale, args.seed, jobs=jobs, cache=cache,
                                 refresh=refresh))
    if "writethrough" in wanted:
        emit("ablation_writethrough",
             ablation_writethrough(scale, args.seed, jobs=jobs, cache=cache,
                                   refresh=refresh), precision=2)
    elapsed = time.time() - start
    if cache is not None:
        print(f"[cache: {cache.hits} hits, {cache.misses} misses "
              f"({args.cache_dir})]", file=sys.stderr)
    print(f"[{elapsed:.1f}s total]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
