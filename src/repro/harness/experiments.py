"""Drivers that regenerate each figure/table of the paper.

Each ``figNN`` function runs the corresponding sweep and returns
:class:`~repro.harness.report.FigureTable` objects whose rows mirror the
paper's bar groups.  The module is runnable::

    python -m repro.harness.experiments fig11 fig12 --scale small
    python -m repro.harness.experiments all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.harness.report import FigureTable, normalize_rows
from repro.harness.runner import (
    BSP_EPOCH_SIZES,
    Scale,
    default_bsp_epoch_size,
    run_bep,
    run_bsp,
)
from repro.sim.config import BarrierDesign, FlushMode, PersistencyModel
from repro.workloads.apps.profiles import APP_NAMES
from repro.workloads.micro import MICROBENCHMARKS

BEP_BENCHMARKS = sorted(MICROBENCHMARKS)
BEP_DESIGNS = [
    BarrierDesign.LB,
    BarrierDesign.LB_IDT,
    BarrierDesign.LB_PF,
    BarrierDesign.LB_PP,
]


# ----------------------------------------------------------------------
# Figures 11 and 12: BEP microbenchmarks
# ----------------------------------------------------------------------
def run_bep_sweep(
    scale: Scale = Scale.SMALL,
    seed: int = 1,
    transactions: Optional[int] = None,
    benchmarks: Optional[List[str]] = None,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """benchmark -> design -> (throughput, conflict_pct)."""
    results: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for bench in benchmarks or BEP_BENCHMARKS:
        per_design: Dict[str, Tuple[float, float]] = {}
        for design in BEP_DESIGNS:
            result = run_bep(
                bench, design, scale=scale, seed=seed,
                transactions=transactions,
            )
            per_design[design.value] = (
                result.throughput, result.conflict_epoch_pct
            )
        results[bench] = per_design
    return results


def fig11(scale: Scale = Scale.SMALL, seed: int = 1,
          transactions: Optional[int] = None,
          sweep: Optional[Dict] = None) -> FigureTable:
    """Figure 11: BEP transaction throughput normalized to LB."""
    sweep = sweep or run_bep_sweep(scale, seed, transactions)
    raw = {
        bench: {design: vals[0] for design, vals in row.items()}
        for bench, row in sweep.items()
    }
    normalized = normalize_rows(raw, BarrierDesign.LB.value)
    table = FigureTable(
        "Figure 11: transaction throughput normalized to LB",
        [d.value for d in BEP_DESIGNS], summary="gmean",
    )
    for bench in sorted(normalized):
        table.add_row(bench, [normalized[bench][d.value] for d in BEP_DESIGNS])
    return table


def fig12(scale: Scale = Scale.SMALL, seed: int = 1,
          transactions: Optional[int] = None,
          sweep: Optional[Dict] = None) -> FigureTable:
    """Figure 12: percentage of epochs flushed because of a conflict."""
    sweep = sweep or run_bep_sweep(scale, seed, transactions)
    table = FigureTable(
        "Figure 12: % conflicting epochs",
        [d.value for d in BEP_DESIGNS], summary="amean",
    )
    for bench in sorted(sweep):
        table.add_row(
            bench, [sweep[bench][d.value][1] for d in BEP_DESIGNS]
        )
    return table


# ----------------------------------------------------------------------
# Figure 13: BSP epoch-size sweep
# ----------------------------------------------------------------------
def fig13(scale: Scale = Scale.SMALL, seed: int = 1,
          mem_ops: Optional[int] = None,
          apps: Optional[List[str]] = None) -> FigureTable:
    """Figure 13: BSP execution time vs epoch size, normalized to NP.

    Time-to-durability is used on both sides of the ratio so that the
    cost of epochs still buffered at the end of a (scaled-down) run is
    charged to the configuration that deferred them; at paper-length
    runs the visible and durable ratios converge.
    """
    sizes = BSP_EPOCH_SIZES[scale]
    table = FigureTable(
        "Figure 13: execution time normalized to NP (epoch-size sweep, "
        f"sizes {sizes})",
        [f"LB{n}" for n in sizes], summary="gmean",
    )
    for app in apps or APP_NAMES:
        baseline = run_bsp(
            app, BarrierDesign.LB, scale=scale, seed=seed,
            persistency=PersistencyModel.NP, mem_ops=mem_ops,
        )
        row = []
        for epoch_stores in sizes:
            result = run_bsp(
                app, BarrierDesign.LB, scale=scale, seed=seed,
                epoch_stores=epoch_stores, mem_ops=mem_ops,
            )
            row.append(result.cycles_durable / baseline.cycles_durable)
        table.add_row(app, row)
    return table


# ----------------------------------------------------------------------
# Figure 14: BSP barrier designs
# ----------------------------------------------------------------------
FIG14_COLUMNS = ["LB", "LB+IDT", "LB++", "LB++NOLOG"]


def fig14(scale: Scale = Scale.SMALL, seed: int = 1,
          mem_ops: Optional[int] = None,
          epoch_stores: Optional[int] = None,
          apps: Optional[List[str]] = None) -> Tuple[FigureTable, float]:
    """Figure 14: BSP execution time normalized to NP, per design.

    Also returns the inter-thread share of conflicts (the paper reports
    86%).
    """
    if epoch_stores is None:
        epoch_stores = default_bsp_epoch_size(scale)
    table = FigureTable(
        "Figure 14: execution time normalized to NP (designs, "
        f"epoch={epoch_stores})",
        FIG14_COLUMNS, summary="gmean",
    )
    inter = intra = 0
    variants = [
        ("LB", BarrierDesign.LB, True),
        ("LB+IDT", BarrierDesign.LB_IDT, True),
        ("LB++", BarrierDesign.LB_PP, True),
        ("LB++NOLOG", BarrierDesign.LB_PP, False),
    ]
    for app in apps or APP_NAMES:
        baseline = run_bsp(
            app, BarrierDesign.LB, scale=scale, seed=seed,
            persistency=PersistencyModel.NP, mem_ops=mem_ops,
        )
        row = []
        for _, design, logging in variants:
            result = run_bsp(
                app, design, scale=scale, seed=seed,
                epoch_stores=epoch_stores, undo_logging=logging,
                mem_ops=mem_ops,
            )
            row.append(result.cycles_durable / baseline.cycles_durable)
            if design is BarrierDesign.LB:
                inter += result.inter_conflicts
                intra += result.intra_conflicts
        table.add_row(app, row)
    total = inter + intra
    inter_share = 100.0 * inter / total if total else 0.0
    return table, inter_share


# ----------------------------------------------------------------------
# In-text ablations (section 7)
# ----------------------------------------------------------------------
def ablation_flush_mode(scale: Scale = Scale.SMALL, seed: int = 1,
                        transactions: Optional[int] = None) -> FigureTable:
    """Section 7: non-invalidating (clwb) vs invalidating (clflush)
    flushes; the paper reports clwb ~30% faster."""
    table = FigureTable(
        "Ablation: clwb vs clflush flushes (throughput, normalized to "
        "clflush)", ["clflush", "clwb"], summary="gmean",
    )
    for bench in BEP_BENCHMARKS:
        thpts = {}
        for mode in (FlushMode.CLFLUSH, FlushMode.CLWB):
            result = run_bep(
                bench, BarrierDesign.LB_PP, scale=scale, seed=seed,
                transactions=transactions, flush_mode=mode,
            )
            thpts[mode.value] = result.throughput
        base = thpts[FlushMode.CLFLUSH.value]
        table.add_row(bench, [1.0, thpts[FlushMode.CLWB.value] / base])
    return table


def ablation_writethrough(scale: Scale = Scale.SMALL, seed: int = 1,
                          mem_ops: Optional[int] = None,
                          apps: Optional[List[str]] = None) -> FigureTable:
    """Section 7.2: naive write-through BSP, ~8x over NP in the paper."""
    table = FigureTable(
        "Ablation: naive write-through BSP (execution time normalized "
        "to NP)", ["BSP-WT"], summary="gmean",
    )
    for app in apps or APP_NAMES:
        baseline = run_bsp(
            app, BarrierDesign.LB, scale=scale, seed=seed,
            persistency=PersistencyModel.NP, mem_ops=mem_ops,
        )
        result = run_bsp(
            app, BarrierDesign.LB, scale=scale, seed=seed,
            persistency=PersistencyModel.BSP_WT, mem_ops=mem_ops,
        )
        table.add_row(
            app, [result.cycles_visible / baseline.cycles_visible]
        )
    return table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures."
    )
    parser.add_argument(
        "figures", nargs="+",
        choices=["fig11", "fig12", "fig13", "fig14", "flushmode",
                 "writethrough", "all"],
    )
    parser.add_argument("--scale", default="small",
                        choices=[s.value for s in Scale])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv-dir", default=None,
                        help="write each figure's data as CSV here")
    parser.add_argument("--chart", action="store_true",
                        help="render terminal bar charts too")
    args = parser.parse_args(argv)
    scale = Scale(args.scale)
    wanted = set(args.figures)
    if "all" in wanted:
        wanted = {"fig11", "fig12", "fig13", "fig14", "flushmode",
                  "writethrough"}

    def emit(tag: str, table, precision: int = 3) -> None:
        print(table.render(precision=precision))
        if args.chart:
            from repro.harness.export import render_bars
            print(render_bars(table))
        if args.csv_dir:
            from repro.harness.export import write_csv
            path = write_csv(table, f"{args.csv_dir}/{tag}.csv")
            print(f"[wrote {path}]", file=sys.stderr)
        print()

    start = time.time()
    if wanted & {"fig11", "fig12"}:
        sweep = run_bep_sweep(scale, args.seed)
        if "fig11" in wanted:
            emit("fig11", fig11(scale, args.seed, sweep=sweep))
        if "fig12" in wanted:
            emit("fig12", fig12(scale, args.seed, sweep=sweep), precision=1)
    if "fig13" in wanted:
        emit("fig13", fig13(scale, args.seed), precision=2)
    if "fig14" in wanted:
        table, inter_share = fig14(scale, args.seed)
        emit("fig14", table, precision=2)
        print(f"inter-thread share of conflicts: {inter_share:.0f}%"
              " (paper: 86%)\n")
    if "flushmode" in wanted:
        emit("ablation_flush_mode", ablation_flush_mode(scale, args.seed))
    if "writethrough" in wanted:
        emit("ablation_writethrough",
             ablation_writethrough(scale, args.seed), precision=2)
    print(f"[{time.time() - start:.1f}s total]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
