"""Drivers that regenerate each figure/table of the paper.

Each ``figNN`` function runs the corresponding sweep and returns
:class:`~repro.harness.report.FigureTable` objects whose rows mirror the
paper's bar groups.  Every sweep is expressed as a list of
:class:`~repro.harness.executor.RunSpec` values and executed through
:func:`~repro.harness.executor.run_specs`, so independent runs fan out
across a process pool (``--jobs``) and completed results are served from
the content-addressed disk cache (``.repro-cache/``, disable with
``--no-cache``, recompute with ``--refresh``).  The module is runnable::

    python -m repro.harness.experiments fig11 fig12 --scale small
    python -m repro.harness.experiments all --scale tiny --jobs 4
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.harness.executor import RunSpec, RunSummary, run_specs
from repro.harness.plan import (
    PLAN_FILENAME,
    build_plan,
    parse_shard,
    run_plan,
    shard_plan,
)
from repro.harness.report import FigureTable, normalize_rows, plan_table
from repro.harness.runner import (
    BSP_EPOCH_SIZES,
    Scale,
    default_bsp_epoch_size,
)
from repro.sim.config import BarrierDesign, FlushMode, PersistencyModel
from repro.workloads.apps.profiles import APP_NAMES
from repro.workloads.micro import MICROBENCHMARKS

# The Table 2 microbenchmarks the paper's figures sweep.  Pinned
# explicitly rather than derived from the registry: the registry also
# carries simulator-only workloads (``hotset``) that the figures must
# not pick up.
BEP_BENCHMARKS = ["hash", "queue", "rbtree", "sdg", "sps"]
assert all(b in MICROBENCHMARKS for b in BEP_BENCHMARKS)
BEP_DESIGNS = [
    BarrierDesign.LB,
    BarrierDesign.LB_IDT,
    BarrierDesign.LB_PF,
    BarrierDesign.LB_PP,
]

# A plan pairs each spec with the key the figure indexes it by.
_Plan = Tuple[List[RunSpec], List[tuple]]


def _np_baseline_spec(app: str, scale: Scale, seed: int,
                      mem_ops: Optional[int]) -> RunSpec:
    """The shared NP baseline run (identical across fig13/fig14/WT, so
    the cache computes it once per app)."""
    return RunSpec.bsp(
        app, BarrierDesign.LB, scale, seed=seed,
        model=PersistencyModel.NP, mem_ops=mem_ops,
    )


def _run_plan(plan: _Plan, jobs: Optional[int], cache: Optional[ResultCache],
              refresh: bool) -> Dict[tuple, RunSummary]:
    specs, keys = plan
    summaries = run_specs(specs, jobs=jobs, cache=cache, refresh=refresh)
    return dict(zip(keys, summaries))


# ----------------------------------------------------------------------
# Figures 11 and 12: BEP microbenchmarks
# ----------------------------------------------------------------------
def bep_sweep_plan(scale: Scale, seed: int = 1,
                   transactions: Optional[int] = None,
                   benchmarks: Optional[Sequence[str]] = None) -> _Plan:
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for bench in benchmarks or BEP_BENCHMARKS:
        for design in BEP_DESIGNS:
            specs.append(RunSpec.bep(
                bench, design, scale, seed=seed, transactions=transactions,
            ))
            keys.append((bench, design.value))
    return specs, keys


def run_bep_sweep(
    scale: Scale = Scale.SMALL,
    seed: int = 1,
    transactions: Optional[int] = None,
    benchmarks: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """benchmark -> design -> (throughput, conflict_pct)."""
    by_key = _run_plan(
        bep_sweep_plan(scale, seed, transactions, benchmarks),
        jobs, cache, refresh,
    )
    results: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for (bench, design), summary in by_key.items():
        results.setdefault(bench, {})[design] = (
            summary.throughput, summary.conflict_epoch_pct
        )
    return results


def fig11(scale: Scale = Scale.SMALL, seed: int = 1,
          transactions: Optional[int] = None,
          sweep: Optional[Dict] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> FigureTable:
    """Figure 11: BEP transaction throughput normalized to LB."""
    sweep = sweep or run_bep_sweep(scale, seed, transactions,
                                   jobs=jobs, cache=cache, refresh=refresh)
    raw = {
        bench: {design: vals[0] for design, vals in row.items()}
        for bench, row in sweep.items()
    }
    normalized = normalize_rows(raw, BarrierDesign.LB.value)
    table = FigureTable(
        "Figure 11: transaction throughput normalized to LB",
        [d.value for d in BEP_DESIGNS], summary="gmean",
    )
    for bench in sorted(normalized):
        table.add_row(bench, [normalized[bench][d.value] for d in BEP_DESIGNS])
    return table


def fig12(scale: Scale = Scale.SMALL, seed: int = 1,
          transactions: Optional[int] = None,
          sweep: Optional[Dict] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> FigureTable:
    """Figure 12: percentage of epochs flushed because of a conflict."""
    sweep = sweep or run_bep_sweep(scale, seed, transactions,
                                   jobs=jobs, cache=cache, refresh=refresh)
    table = FigureTable(
        "Figure 12: % conflicting epochs",
        [d.value for d in BEP_DESIGNS], summary="amean",
    )
    for bench in sorted(sweep):
        table.add_row(
            bench, [sweep[bench][d.value][1] for d in BEP_DESIGNS]
        )
    return table


# ----------------------------------------------------------------------
# Figure 13: BSP epoch-size sweep
# ----------------------------------------------------------------------
def fig13_plan(scale: Scale, seed: int = 1,
               mem_ops: Optional[int] = None,
               apps: Optional[Sequence[str]] = None) -> _Plan:
    sizes = BSP_EPOCH_SIZES[scale]
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for app in apps or APP_NAMES:
        specs.append(_np_baseline_spec(app, scale, seed, mem_ops))
        keys.append((app, "NP"))
        for epoch_stores in sizes:
            specs.append(RunSpec.bsp(
                app, BarrierDesign.LB, scale, seed=seed,
                epoch_stores=epoch_stores, mem_ops=mem_ops,
            ))
            keys.append((app, epoch_stores))
    return specs, keys


def fig13(scale: Scale = Scale.SMALL, seed: int = 1,
          mem_ops: Optional[int] = None,
          apps: Optional[List[str]] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> FigureTable:
    """Figure 13: BSP execution time vs epoch size, normalized to NP.

    Time-to-durability is used on both sides of the ratio so that the
    cost of epochs still buffered at the end of a (scaled-down) run is
    charged to the configuration that deferred them; at paper-length
    runs the visible and durable ratios converge.
    """
    sizes = BSP_EPOCH_SIZES[scale]
    by_key = _run_plan(
        fig13_plan(scale, seed, mem_ops, apps), jobs, cache, refresh
    )
    table = FigureTable(
        "Figure 13: execution time normalized to NP (epoch-size sweep, "
        f"sizes {sizes})",
        [f"LB{n}" for n in sizes], summary="gmean",
    )
    for app in apps or APP_NAMES:
        baseline = by_key[(app, "NP")]
        table.add_row(app, [
            by_key[(app, n)].cycles_durable / baseline.cycles_durable
            for n in sizes
        ])
    return table


# ----------------------------------------------------------------------
# Figure 14: BSP barrier designs
# ----------------------------------------------------------------------
FIG14_COLUMNS = ["LB", "LB+IDT", "LB++", "LB++NOLOG"]

_FIG14_VARIANTS = [
    ("LB", BarrierDesign.LB, True),
    ("LB+IDT", BarrierDesign.LB_IDT, True),
    ("LB++", BarrierDesign.LB_PP, True),
    ("LB++NOLOG", BarrierDesign.LB_PP, False),
]


def fig14_plan(scale: Scale, seed: int = 1,
               mem_ops: Optional[int] = None,
               epoch_stores: Optional[int] = None,
               apps: Optional[Sequence[str]] = None) -> _Plan:
    if epoch_stores is None:
        epoch_stores = default_bsp_epoch_size(scale)
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for app in apps or APP_NAMES:
        specs.append(_np_baseline_spec(app, scale, seed, mem_ops))
        keys.append((app, "NP"))
        for label, design, logging in _FIG14_VARIANTS:
            specs.append(RunSpec.bsp(
                app, design, scale, seed=seed, epoch_stores=epoch_stores,
                undo_logging=logging, mem_ops=mem_ops,
            ))
            keys.append((app, label))
    return specs, keys


def fig14(scale: Scale = Scale.SMALL, seed: int = 1,
          mem_ops: Optional[int] = None,
          epoch_stores: Optional[int] = None,
          apps: Optional[List[str]] = None,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          refresh: bool = False) -> Tuple[FigureTable, float]:
    """Figure 14: BSP execution time normalized to NP, per design.

    Also returns the inter-thread share of conflicts (the paper reports
    86%).
    """
    if epoch_stores is None:
        epoch_stores = default_bsp_epoch_size(scale)
    by_key = _run_plan(
        fig14_plan(scale, seed, mem_ops, epoch_stores, apps),
        jobs, cache, refresh,
    )
    table = FigureTable(
        "Figure 14: execution time normalized to NP (designs, "
        f"epoch={epoch_stores})",
        FIG14_COLUMNS, summary="gmean",
    )
    inter = intra = 0
    for app in apps or APP_NAMES:
        baseline = by_key[(app, "NP")]
        row = []
        for label, design, _logging in _FIG14_VARIANTS:
            summary = by_key[(app, label)]
            row.append(summary.cycles_durable / baseline.cycles_durable)
            if design is BarrierDesign.LB and label == "LB":
                inter += summary.inter_conflicts
                intra += summary.intra_conflicts
        table.add_row(app, row)
    total = inter + intra
    inter_share = 100.0 * inter / total if total else 0.0
    return table, inter_share


# ----------------------------------------------------------------------
# In-text ablations (section 7)
# ----------------------------------------------------------------------
def flush_mode_plan(scale: Scale, seed: int = 1,
                    transactions: Optional[int] = None) -> _Plan:
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for bench in BEP_BENCHMARKS:
        for mode in (FlushMode.CLFLUSH, FlushMode.CLWB):
            specs.append(RunSpec.bep(
                bench, BarrierDesign.LB_PP, scale, seed=seed,
                transactions=transactions, flush_mode=mode,
            ))
            keys.append((bench, mode.value))
    return specs, keys


def ablation_flush_mode(scale: Scale = Scale.SMALL, seed: int = 1,
                        transactions: Optional[int] = None,
                        jobs: Optional[int] = None,
                        cache: Optional[ResultCache] = None,
                        refresh: bool = False) -> FigureTable:
    """Section 7: non-invalidating (clwb) vs invalidating (clflush)
    flushes; the paper reports clwb ~30% faster."""
    by_key = _run_plan(
        flush_mode_plan(scale, seed, transactions), jobs, cache, refresh
    )
    table = FigureTable(
        "Ablation: clwb vs clflush flushes (throughput, normalized to "
        "clflush)", ["clflush", "clwb"], summary="gmean",
    )
    for bench in BEP_BENCHMARKS:
        base = by_key[(bench, FlushMode.CLFLUSH.value)].throughput
        table.add_row(bench, [
            1.0, by_key[(bench, FlushMode.CLWB.value)].throughput / base
        ])
    return table


def writethrough_plan(scale: Scale, seed: int = 1,
                      mem_ops: Optional[int] = None,
                      apps: Optional[Sequence[str]] = None) -> _Plan:
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for app in apps or APP_NAMES:
        specs.append(_np_baseline_spec(app, scale, seed, mem_ops))
        keys.append((app, "NP"))
        specs.append(RunSpec.bsp(
            app, BarrierDesign.LB, scale, seed=seed,
            model=PersistencyModel.BSP_WT, mem_ops=mem_ops,
        ))
        keys.append((app, "BSP-WT"))
    return specs, keys


def ablation_writethrough(scale: Scale = Scale.SMALL, seed: int = 1,
                          mem_ops: Optional[int] = None,
                          apps: Optional[List[str]] = None,
                          jobs: Optional[int] = None,
                          cache: Optional[ResultCache] = None,
                          refresh: bool = False) -> FigureTable:
    """Section 7.2: naive write-through BSP, ~8x over NP in the paper."""
    by_key = _run_plan(
        writethrough_plan(scale, seed, mem_ops, apps), jobs, cache, refresh
    )
    table = FigureTable(
        "Ablation: naive write-through BSP (execution time normalized "
        "to NP)", ["BSP-WT"], summary="gmean",
    )
    for app in apps or APP_NAMES:
        baseline = by_key[(app, "NP")]
        summary = by_key[(app, "BSP-WT")]
        table.add_row(
            app, [summary.cycles_visible / baseline.cycles_visible]
        )
    return table


# ----------------------------------------------------------------------
# Contended figure: conflict_rate x num_slots pingpong sweep
# ----------------------------------------------------------------------
CONTENDED_RATES = (0.25, 0.5, 1.0)
CONTENDED_SLOTS = (1, 4, 16)
_CONTENDED_DESIGNS = [BarrierDesign.LB, BarrierDesign.LB_PP]


def contended_plan(scale: Scale, seed: int = 1,
                   transactions: Optional[int] = None) -> _Plan:
    """Figure 12-style contention sweep on the pingpong mailbox.

    ``conflict_rate`` scales how often a consumer touches a line the
    producer's open epoch owns; ``num_slots`` spreads the mailbox over
    more lines, diluting each one.  Together they trace the conflict
    regimes Figure 12 samples per-benchmark as one continuous surface.
    """
    specs: List[RunSpec] = []
    keys: List[tuple] = []
    for rate in CONTENDED_RATES:
        for slots in CONTENDED_SLOTS:
            for design in _CONTENDED_DESIGNS:
                specs.append(RunSpec.bep(
                    "pingpong", design, scale, seed=seed,
                    transactions=transactions,
                    workload_args={"conflict_rate": rate,
                                   "num_slots": slots},
                ))
                keys.append((rate, slots, design.value))
    return specs, keys


def contended(scale: Scale = Scale.SMALL, seed: int = 1,
              transactions: Optional[int] = None,
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              refresh: bool = False) -> Tuple[FigureTable, FigureTable]:
    """Contended pingpong: conflict share and LB++ speedup per cell.

    Returns two tables (the units differ): the percentage of epochs
    flushed by a conflict under LB vs LB++, and the LB++/LB throughput
    ratio -- the proactive-flush win should grow with contention.
    """
    by_key = _run_plan(
        contended_plan(scale, seed, transactions), jobs, cache, refresh
    )
    conflicts = FigureTable(
        "Contended pingpong: % conflicting epochs "
        "(conflict_rate x num_slots)",
        [d.value for d in _CONTENDED_DESIGNS], summary="amean",
    )
    speedups = FigureTable(
        "Contended pingpong: LB++ throughput speedup over LB",
        ["LB++/LB"], summary="gmean",
    )
    for rate in CONTENDED_RATES:
        for slots in CONTENDED_SLOTS:
            label = f"rate={rate:g} slots={slots}"
            lb = by_key[(rate, slots, BarrierDesign.LB.value)]
            pp = by_key[(rate, slots, BarrierDesign.LB_PP.value)]
            conflicts.add_row(label, [
                lb.conflict_epoch_pct, pp.conflict_epoch_pct
            ])
            speedups.add_row(label, [pp.throughput / lb.throughput])
    return conflicts, speedups


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
_ALL_FIGURES = ("fig11", "fig12", "fig13", "fig14", "flushmode",
                "writethrough", "contended")

# tag -> plan function with the uniform (scale, seed) signature.  The
# delta planner enumerates the universe through this table; fig11 and
# fig12 share one sweep, so they map to the same plan (the planner
# dedups the specs and tags them with both consumers).
_FIGURE_PLANS: Dict[str, Callable[[Scale, int], _Plan]] = {
    "fig11": bep_sweep_plan,
    "fig12": bep_sweep_plan,
    "fig13": fig13_plan,
    "fig14": fig14_plan,
    "flushmode": flush_mode_plan,
    "writethrough": writethrough_plan,
    "contended": contended_plan,
}


def figure_plan_specs(scale: Scale, seed: int = 1,
                      figures: Optional[Sequence[str]] = None,
                      ) -> Dict[str, List[RunSpec]]:
    """``{figure tag: spec list}`` for the delta planner."""
    tags = list(figures) if figures is not None else list(_ALL_FIGURES)
    return {tag: _FIGURE_PLANS[tag](scale, seed)[0] for tag in tags}


def all_specs(scale: Scale, seed: int = 1) -> List[RunSpec]:
    """The deduplicated union of every figure's specs, in first-seen
    order (the shared NP baselines appear once)."""
    seen = {}
    for specs in figure_plan_specs(scale, seed).values():
        for spec in specs:
            seen.setdefault(spec, None)
    return list(seen)


def add_executor_args(parser: argparse.ArgumentParser) -> None:
    """The sweep-executor knobs, shared with ``python -m repro``."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel worker processes (default: all cores; 1 = "
             "in-process serial execution)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute every run and overwrite cached results",
    )
    parser.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR),
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale full tier (implies --scale paper unless "
             "--scale is given explicitly)",
    )
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock allowance: stop dispatching new runs once "
             "exhausted; completed results persist and rerunning the "
             "same command resumes from the remainder",
    )
    parser.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only this shard of the plan (1-based, e.g. 2/4); "
             "shards are a stable hash of the spec key, so N jobs "
             "sharing one cache dir cover the plan exactly once; "
             "figure assembly is skipped (run once unsharded to "
             "assemble from the merged cache)",
    )
    parser.add_argument(
        "--plan-file", default=None, metavar="PATH",
        help="where to checkpoint the plan cursor (default: "
             "<cache-dir>/plan.json); advisory -- resume re-probes "
             "the cache, never this file",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures."
    )
    parser.add_argument(
        "figures", nargs="+",
        choices=list(_ALL_FIGURES) + ["all"],
    )
    parser.add_argument("--scale", default=None,
                        choices=[s.value for s in Scale],
                        help="machine scale (default: small; paper "
                             "under --full)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv-dir", default=None,
                        help="write each figure's data as CSV here")
    parser.add_argument("--chart", action="store_true",
                        help="render terminal bar charts too")
    add_executor_args(parser)
    args = parser.parse_args(argv)
    if args.scale is not None:
        scale = Scale(args.scale)
    else:
        scale = Scale.PAPER if args.full else Scale.SMALL
    if args.no_cache and (args.full or args.shard
                          or args.budget is not None):
        parser.error("--full/--shard/--budget plan through the result "
                     "cache; drop --no-cache")
    shard = parse_shard(args.shard) if args.shard else None
    wanted = set(args.figures)
    if "all" in wanted:
        wanted = set(_ALL_FIGURES)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    jobs = args.jobs
    refresh = args.refresh

    def emit(tag: str, table, precision: int = 3) -> None:
        print(table.render(precision=precision))
        if args.chart:
            from repro.harness.export import render_bars
            print(render_bars(table))
        if args.csv_dir:
            from repro.harness.export import write_csv
            path = write_csv(table, f"{args.csv_dir}/{tag}.csv")
            print(f"[wrote {path}]", file=sys.stderr)
        print()

    start = time.time()
    if cache is not None:
        # Plan first: enumerate the whole universe for the requested
        # figures, probe the cache in one pass, and execute only the
        # delta (shared baselines are planned once).  Figure assembly
        # below then reads from the warm cache.
        ordered = [tag for tag in _ALL_FIGURES if tag in wanted]
        plan = build_plan(
            figure_plan_specs(scale, args.seed, ordered), cache,
            refresh=refresh,
        )
        part = shard_plan(plan, *shard) if shard else plan
        est_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if part.pending:
            print(plan_table(part).render(precision=1))
        print(part.summary(est_jobs))
        plan_path = (args.plan_file if args.plan_file is not None
                     else Path(args.cache_dir) / PLAN_FILENAME)
        report = run_plan(part, cache, jobs=jobs, budget=args.budget,
                          plan_path=plan_path)
        refresh = False
        if report.remaining:
            print(f"[farm] budget exhausted after {report.elapsed:.1f}s: "
                  f"{report.executed} executed, {report.remaining} "
                  "remaining; rerun the same command to resume")
            print(f"[cache: {cache.hits} hits, {cache.misses} misses "
                  f"({args.cache_dir})]", file=sys.stderr)
            return 0
        if shard is not None:
            print(f"[farm] shard {shard[0]}/{shard[1]} complete: "
                  f"{report.executed} executed in {report.elapsed:.1f}s; "
                  "assemble figures with an unsharded run over the "
                  "shared cache")
            return 0
    if wanted & {"fig11", "fig12"}:
        sweep = run_bep_sweep(scale, args.seed, jobs=jobs, cache=cache,
                              refresh=refresh)
        if "fig11" in wanted:
            emit("fig11", fig11(scale, args.seed, sweep=sweep))
        if "fig12" in wanted:
            emit("fig12", fig12(scale, args.seed, sweep=sweep), precision=1)
    if "fig13" in wanted:
        emit("fig13", fig13(scale, args.seed, jobs=jobs, cache=cache,
                            refresh=refresh), precision=2)
    if "fig14" in wanted:
        table, inter_share = fig14(scale, args.seed, jobs=jobs, cache=cache,
                                   refresh=refresh)
        emit("fig14", table, precision=2)
        print(f"inter-thread share of conflicts: {inter_share:.0f}%"
              " (paper: 86%)\n")
    if "flushmode" in wanted:
        emit("ablation_flush_mode",
             ablation_flush_mode(scale, args.seed, jobs=jobs, cache=cache,
                                 refresh=refresh))
    if "writethrough" in wanted:
        emit("ablation_writethrough",
             ablation_writethrough(scale, args.seed, jobs=jobs, cache=cache,
                                   refresh=refresh), precision=2)
    if "contended" in wanted:
        conflicts, speedups = contended(scale, args.seed, jobs=jobs,
                                        cache=cache, refresh=refresh)
        emit("contended_conflicts", conflicts, precision=1)
        emit("contended_speedup", speedups)
    elapsed = time.time() - start
    if cache is not None:
        print(f"[cache: {cache.hits} hits, {cache.misses} misses "
              f"({args.cache_dir})]", file=sys.stderr)
    print(f"[{elapsed:.1f}s total]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
