"""Sweep-executor benchmark: serial vs parallel vs warm cache.

Times a fixed tiny-scale multi-figure sweep three ways --

* **serial**:   ``jobs=1``, no cache (the pre-executor baseline);
* **parallel**: ``jobs=N``, no cache (process-pool fan-out);
* **warm**:     ``jobs=N`` against a freshly populated result cache
  (every run a hit);

-- and writes the wall-clock numbers, speedups, and cache hit counts to
``BENCH_sweep.json`` so the performance trajectory is tracked across
PRs.  Runnable as ``python -m repro bench`` or
``python scripts/bench_sweep.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.harness.cache import ResultCache
from repro.harness.executor import RunSpec, run_specs
from repro.harness.experiments import (
    bep_sweep_plan,
    fig13_plan,
    fig14_plan,
)
from repro.harness.runner import Scale

DEFAULT_OUTPUT = "BENCH_sweep.json"

# Short run lengths: the benchmark measures the executor, not the
# simulator, so each run only needs to be long enough to dominate
# process-pool overhead.
_BENCH_TRANSACTIONS = 20
_BENCH_MEM_OPS = 1500
_BENCH_APPS = ("radix", "cholesky", "ssca2")


def bench_specs(seed: int = 1) -> List[RunSpec]:
    """The fixed tiny-scale multi-figure sweep that gets timed."""
    seen = {}
    for plan in (
        bep_sweep_plan(Scale.TINY, seed, transactions=_BENCH_TRANSACTIONS),
        fig13_plan(Scale.TINY, seed, mem_ops=_BENCH_MEM_OPS,
                   apps=_BENCH_APPS),
        fig14_plan(Scale.TINY, seed, mem_ops=_BENCH_MEM_OPS,
                   apps=_BENCH_APPS),
    ):
        for spec in plan[0]:
            seen.setdefault(spec, None)
    return list(seen)


def _timed(specs: List[RunSpec], jobs: int,
           cache: Optional[ResultCache]) -> float:
    start = time.perf_counter()
    run_specs(specs, jobs=jobs, cache=cache)
    return time.perf_counter() - start


def run_bench(jobs: int = 4, seed: int = 1,
              output: str = DEFAULT_OUTPUT) -> dict:
    specs = bench_specs(seed)
    cpu_count = os.cpu_count() or 1
    print(f"[bench] {len(specs)} runs, tiny scale, jobs={jobs}, "
          f"{cpu_count} cpu(s)")

    serial_s = _timed(specs, jobs=1, cache=None)
    print(f"[bench] serial (jobs=1, no cache):   {serial_s:7.2f}s")

    parallel_s = _timed(specs, jobs=jobs, cache=None)
    print(f"[bench] parallel (jobs={jobs}, no cache): {parallel_s:7.2f}s")

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        run_specs(specs, jobs=jobs, cache=cache)  # populate
        cache.hits = cache.misses = 0
        warm_s = _timed(specs, jobs=jobs, cache=cache)
        warm_hits, warm_misses = cache.hits, cache.misses
    print(f"[bench] warm cache (jobs={jobs}):        {warm_s:7.2f}s "
          f"({warm_hits}/{len(specs)} hits)")

    record = {
        "sweep": {
            "scale": "tiny",
            "runs": len(specs),
            "seed": seed,
            "transactions": _BENCH_TRANSACTIONS,
            "mem_ops": _BENCH_MEM_OPS,
            "apps": list(_BENCH_APPS),
        },
        "machine": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "jobs": jobs,
        "wall_seconds": {
            "serial": round(serial_s, 3),
            "parallel": round(parallel_s, 3),
            "warm_cache": round(warm_s, 3),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel_s, 3)
            if parallel_s else None,
            "warm_cache_vs_serial": round(serial_s / warm_s, 3)
            if warm_s else None,
        },
        "cache": {
            "hits": warm_hits,
            "misses": warm_misses,
            "hit_rate": round(warm_hits / len(specs), 3) if specs else None,
        },
    }
    path = Path(output)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] wrote {path}")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the sweep executor: serial vs parallel vs "
                    "warm cache."
    )
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count (default 4)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"result file (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    run_bench(jobs=args.jobs, seed=args.seed, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
