"""Benchmark harness: single-run hot path + sweep executor.

Two benchmark families, both written to ``BENCH_sweep.json`` so the
performance trajectory is tracked across PRs:

* **single run** -- ops/sec of one in-process tiny-scale run, measured
  with the engine fast paths on and again under ``REPRO_SLOW_ENGINE=1``
  (the pure-heap reference mode).  The two runs must produce the same
  determinism digest (:func:`repro.sim.digest.state_digest`); the digest
  comparison is repeated across all six persistency models, and crash-
  recovery verdicts (epoch-order / undo-log checkers on a crashed run)
  are compared fast-vs-reference too.  This is the per-run simulation
  loop the sweeps are made of.  Three headline workloads bracket the
  engine: ``hotset`` (cache-resident, measures the hit fast path),
  ``flushbound`` (miss-heavy small epochs, measures the pooled flush
  handshake, the batch MC write path, and the fused miss path), and
  ``pingpong`` (contended 4-core producer/consumer pairs, measures the
  conflict path: directory lookups, epoch-tag probes, IDT edges, and
  epoch splits, with the conflict counters compared fast vs reference
  alongside the digest), and ``serving`` (the zipfian key-value
  front-end, measures the fast-forward engine against a realistic
  mixed hit/miss request stream).  A separate million-transaction
  section times one lazily generated run end to end against the
  ROADMAP's under-a-minute scale target.
* **sweep** -- the PR-1 executor benchmark: a fixed tiny-scale
  multi-figure sweep timed serial, parallel, and against a warm result
  cache.

Each regeneration carries the previous file's headline numbers forward
in a ``trajectory`` list, so ``BENCH_sweep.json`` records the
before/after performance history across PRs.

``--profile`` wraps one fast single run in :mod:`cProfile` and writes
the top functions by cumulative time to ``BENCH_profile.txt`` next to
the JSON output.  Runnable as ``python -m repro bench`` or
``python scripts/bench_sweep.py``.
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import io
import json
import math
import os
import platform
import pstats
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.harness.cache import SUBSYSTEM_VERSIONS, ResultCache
from repro.harness.executor import RunSpec, run_specs
from repro.harness.experiments import (
    bep_sweep_plan,
    fig13_plan,
    fig14_plan,
)
from repro.harness.plan import build_plan, run_plan, shard_plan
from repro.harness.runner import Scale
from repro.sim.config import (
    BarrierDesign,
    HandshakeProtocol,
    MachineConfig,
    PersistencyModel,
)
from repro.sim.digest import run_digest, state_digest
from repro.sim.stats import Stats
from repro.system import Multicore
from repro.workloads.micro import make_benchmark

DEFAULT_OUTPUT = "BENCH_sweep.json"
PROFILE_OUTPUT = "BENCH_profile.txt"

# Short run lengths: the benchmark measures the executor, not the
# simulator, so each run only needs to be long enough to dominate
# process-pool overhead.
_BENCH_TRANSACTIONS = 20
_BENCH_MEM_OPS = 1500
_BENCH_APPS = ("radix", "cholesky", "ssca2")

# Single-run microbenchmark defaults.  The headline workload is
# ``hotset`` on one core: a cache-resident read-mostly loop whose ops are
# almost all conflict-free L1 hits -- the per-access path the engine fast
# paths target -- so the fast/reference ratio measures the engine rather
# than the (mode-independent) miss and epoch-flush machinery.  300
# transactions ~= 20k ops: long enough that per-run setup vanishes,
# short enough to rerun per mode with repeats.
_SINGLE_RUN_TRANSACTIONS = 300
_SINGLE_RUN_BENCHMARK = "hotset"
_SINGLE_RUN_CORES = 1
_SINGLE_RUN_REPEATS = 3

# Flush-bound headline run: the complement of ``hotset``.  ``flushbound``
# streams a footprint 4x the L1 with a persist barrier every 8 lines
# under BEP + LB++ proactive flushing, so in steady state nearly every
# access is an L1 miss/LLC hit (the fused miss path) and every epoch
# walks the pooled flush handshake and the batch MC write path.  600
# transactions amortise the cold first lap, which fills from memory in
# both modes alike.
_FLUSH_RUN_TRANSACTIONS = 600
_FLUSH_RUN_BENCHMARK = "flushbound"
_FLUSH_RUN_PAIRS = 7

# Multicore conflict-path headline run: ``pingpong`` pairs hammering a
# shared mailbox on 4 cores under BEP + LB++.  Every transaction leads
# with a contended mailbox ack and then copies an entry-sized payload,
# so mailbox stores routinely land mid-epoch on the partner side --
# the ratio measures the directory fast path, the per-line epoch-tag
# probe, IDT edge interning, and the split path, the inter-thread
# machinery the single-core runs never touch.  250 transactions keeps
# the contended run (4 programs, frequent conflicts) in the same
# wall-time band as the other headlines.
_MULTI_RUN_TRANSACTIONS = 250
_MULTI_RUN_BENCHMARK = "pingpong"
_MULTI_RUN_CORES = 4
_MULTI_RUN_PAIRS = 7
_MULTI_CONFLICT_RATE = 1.0

# Serving headline run: the zipfian key-value front-end on one core
# under BEP + LB++.  Bursty arrivals leave the persist pipeline idle at
# the head of each burst, which is the window the fast-forward engine
# drains analytically; the 2 MB keyspace dwarfs the tiny LLC, so the
# stream also exercises the fused full-miss path on every tail key.
# The measured ratio is structurally modest (~1.1-1.4x): the dominant
# cost -- cache dictionary churn and the MC state machine on ~6 fills
# per transaction -- is semantic work both engine modes must do.
_SERVING_TRANSACTIONS = 5000
_SERVING_BENCHMARK = "serving"
_SERVING_PAIRS = 3

# Million-transaction scale run: the ROADMAP's "heavy serving traffic"
# target, timed on the fast engine only.  Uncontended single-core
# pingpong under BSP + LB++ is the configuration where the write-buffer
# drain windows are conflict-free and flush-idle essentially always, so
# the fast-forward engine absorbs ~99.9% of stores.
_MILLION_TRANSACTIONS = 1_000_000
_MILLION_BENCHMARK = "pingpong"

# Crash-recovery verdicts: run a queue workload to a fixed crash cycle
# in both engine modes and compare what the consistency checkers see.
# BEP exercises the epoch-order checker; BSP additionally exercises the
# undo-log coverage checker.
_CRASH_MODELS = (PersistencyModel.BEP, PersistencyModel.BSP)
_CRASH_BENCHMARK = "queue"
_CRASH_TRANSACTIONS = 40
_CRASH_CYCLE = 20_000

# Digest matrix: every persistency model the simulator implements, each
# checked fast-vs-reference on a short run.  Uses the richer ``queue``
# structure on the stock multicore tiny config so the comparison
# exercises coherence, conflicts, and epoch machinery, not just the hit
# path.
_DIGEST_BENCHMARK = "queue"
_DIGEST_TRANSACTIONS = 12
_DIGEST_MODELS = (
    PersistencyModel.NP,
    PersistencyModel.SP,
    PersistencyModel.EP,
    PersistencyModel.BEP,
    PersistencyModel.BSP,
    PersistencyModel.BSP_WT,
)

# Multicore digest matrix: the contended ``pingpong`` run at 4 and 8
# cores, under the baseline lazy barrier and the full LB++ design.  The
# per-model matrix above runs the stock 2-core tiny config, so it never
# exercises real inter-thread conflicts, IDT edges, or deadlock-avoiding
# epoch splits; these configurations do, on both sides of the
# with/without-IDT divide.
_MULTICORE_DIGEST_CONFIGS = (
    (4, BarrierDesign.LB),
    (4, BarrierDesign.LB_PP),
    (8, BarrierDesign.LB),
    (8, BarrierDesign.LB_PP),
)

# Core-count scaling sweep (``--only scaling``): pingpong and the
# sharded-serving migration workload at {4..64} cores x {LB, LB++},
# recording handshake messages-per-flush and wall-clock ops/s, plus an
# all-to-all accounting contrast.  Transaction counts shrink with core
# count so every point stays in the tens-of-milliseconds band (the
# messages-per-flush statistic converges after a handful of flushes per
# core; the wall-clock curve is indicative, the careful A/B lives in
# the headline runs).
_SCALING_CORES = (4, 8, 16, 32, 64)
_SCALING_DESIGNS = (BarrierDesign.LB, BarrierDesign.LB_PP)
_SCALING_TXN_BUDGET = 768       # ~transactions x cores per point
_SCALING_TXN_MIN = 12
_SCALING_SHARDED_KEYS = 1024
_SCALING_MIGRATE_FRACTION = 0.2
# Log-log slope acceptance bands: the arbiter's per-flush message count
# must grow ~linearly in cores, the all-to-all strawman ~quadratically.
_SCALING_LINEAR_MAX_SLOPE = 1.35
_SCALING_QUADRATIC_MIN_SLOPE = 1.65


@contextmanager
def reference_mode(slow: bool = True):
    """Build engines on the pure-heap reference path within the block.

    The engine reads ``REPRO_SLOW_ENGINE`` at construction, so toggling
    the environment variable around machine construction is all it
    takes; the previous value is restored on exit.
    """
    key = "REPRO_SLOW_ENGINE"
    saved = os.environ.get(key)
    os.environ[key] = "1" if slow else "0"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = saved


# ----------------------------------------------------------------------
# Single-run microbenchmark
# ----------------------------------------------------------------------
def _single_run_setup(
    seed: int, transactions: int,
    model: PersistencyModel = PersistencyModel.BEP,
    benchmark: str = _SINGLE_RUN_BENCHMARK,
    num_cores: Optional[int] = _SINGLE_RUN_CORES,
    barrier_design: BarrierDesign = BarrierDesign.LB_IDT,
) -> Tuple[MachineConfig, List[list]]:
    overrides = {}
    if model is PersistencyModel.BSP:
        # Small epochs so hardware barriers / checkpoints actually fire.
        overrides["bsp_epoch_stores"] = 30
    if num_cores is not None:
        overrides["num_cores"] = num_cores
    config = MachineConfig.tiny(
        persistency=model, barrier_design=barrier_design, **overrides
    )
    programs = [
        list(
            make_benchmark(
                benchmark, thread_id=tid, seed=seed,
                line_size=config.line_size,
            ).ops(transactions)
        )
        for tid in range(config.num_cores)
    ]
    return config, programs


def _measure_single(config: MachineConfig, programs: List[list],
                    repeats: int) -> Tuple[float, str]:
    """Best-of-``repeats`` wall time and the (repeat-invariant) digest."""
    best = float("inf")
    digest = ""
    for _ in range(repeats):
        machine = Multicore(config)
        start = time.perf_counter()
        result = machine.run(programs)
        best = min(best, time.perf_counter() - start)
        digest = state_digest(machine, result)
    return best, digest


def run_single_bench(seed: int = 1,
                     transactions: int = _SINGLE_RUN_TRANSACTIONS,
                     repeats: int = _SINGLE_RUN_REPEATS) -> dict:
    """Time one tiny-scale run fast vs reference and compare digests."""
    config, programs = _single_run_setup(seed, transactions)
    n_ops = sum(len(p) for p in programs)

    fast_s, fast_digest = _measure_single(config, programs, repeats)
    with reference_mode():
        slow_s, slow_digest = _measure_single(config, programs, repeats)

    fast_ops = n_ops / fast_s if fast_s else 0.0
    slow_ops = n_ops / slow_s if slow_s else 0.0
    print(f"[bench] single run ({_SINGLE_RUN_BENCHMARK}, "
          f"{config.num_cores} core(s), {transactions} txns, {n_ops} ops):")
    print(f"[bench]   fast paths:    {fast_ops:10.0f} ops/s "
          f"({fast_s * 1e3:.1f} ms)")
    print(f"[bench]   reference:     {slow_ops:10.0f} ops/s "
          f"({slow_s * 1e3:.1f} ms)")
    print(f"[bench]   speedup:       {fast_ops / slow_ops:10.2f}x, digest "
          f"{'MATCH' if fast_digest == slow_digest else 'MISMATCH'}")

    return {
        "benchmark": _SINGLE_RUN_BENCHMARK,
        "num_cores": config.num_cores,
        "transactions": transactions,
        "ops": n_ops,
        "repeats": repeats,
        "ops_per_sec": {
            "fast": round(fast_ops, 1),
            "reference": round(slow_ops, 1),
        },
        "wall_seconds": {
            "fast": round(fast_s, 4),
            "reference": round(slow_s, 4),
        },
        "speedup": round(fast_ops / slow_ops, 3) if slow_ops else None,
        "digest_match": fast_digest == slow_digest,
    }


def _measure_interleaved(
    config: MachineConfig, programs: List[list], pairs: int,
) -> Tuple[float, float, str, str]:
    """Time fast and reference modes in alternating pairs; return the
    median pair's times.

    Container schedulers drift on the tens-of-milliseconds scale, so
    timing all fast repeats and then all reference repeats lets a slow
    window bias the ratio one way -- and taking independent per-mode
    minima is worse still (each min picks its own lucky window, so the
    ratio inherits the tails of both).  Back-to-back fast/reference
    pairs share whatever window they land in, their per-pair ratio
    cancels the common-mode drift, and the median pair is robust to a
    stray descheduling in either mode.
    """

    def one(slow: bool) -> Tuple[float, str]:
        with reference_mode(slow):
            machine = Multicore(config)
            start = time.perf_counter()
            result = machine.run(programs)
            elapsed = time.perf_counter() - start
        return elapsed, state_digest(machine, result)

    one(False)  # warm-up: import, allocator, and branch-predictor noise
    samples: List[Tuple[float, float]] = []
    fast_digest = slow_digest = ""
    for _ in range(pairs):
        fast_s, fast_digest = one(False)
        slow_s, slow_digest = one(True)
        samples.append((fast_s, slow_s))
    samples.sort(key=lambda p: p[1] / p[0])
    fast_s, slow_s = samples[len(samples) // 2]
    return fast_s, slow_s, fast_digest, slow_digest


def run_flush_bench(seed: int = 1,
                    transactions: int = _FLUSH_RUN_TRANSACTIONS,
                    pairs: int = _FLUSH_RUN_PAIRS,
                    benchmark: str = _FLUSH_RUN_BENCHMARK) -> dict:
    """Time the flush-bound headline run fast vs reference.

    Unlike :func:`run_single_bench` (cache-resident ``hotset``: the hit
    fast path), this run is miss- and flush-dominated, so the ratio
    measures the pooled flush handshake, the batch MC write path, and
    the fused L1-miss/LLC-hit path.
    """
    config, programs = _single_run_setup(
        seed, transactions, model=PersistencyModel.BEP,
        benchmark=benchmark, num_cores=1,
        barrier_design=BarrierDesign.LB_PP,
    )
    n_ops = sum(len(p) for p in programs)

    fast_s, slow_s, fast_digest, slow_digest = _measure_interleaved(
        config, programs, pairs
    )

    fast_ops = n_ops / fast_s if fast_s else 0.0
    slow_ops = n_ops / slow_s if slow_s else 0.0
    print(f"[bench] flush-bound run ({benchmark}, BEP/LB++, "
          f"{config.num_cores} core(s), {transactions} txns, {n_ops} ops):")
    print(f"[bench]   fast paths:    {fast_ops:10.0f} ops/s "
          f"({fast_s * 1e3:.1f} ms)")
    print(f"[bench]   reference:     {slow_ops:10.0f} ops/s "
          f"({slow_s * 1e3:.1f} ms)")
    print(f"[bench]   speedup:       {fast_ops / slow_ops:10.2f}x, digest "
          f"{'MATCH' if fast_digest == slow_digest else 'MISMATCH'}")

    return {
        "benchmark": benchmark,
        "persistency": "bep",
        "barrier_design": "lb_pp",
        "num_cores": config.num_cores,
        "transactions": transactions,
        "ops": n_ops,
        "pairs": pairs,
        "ops_per_sec": {
            "fast": round(fast_ops, 1),
            "reference": round(slow_ops, 1),
        },
        "wall_seconds": {
            "fast": round(fast_s, 4),
            "reference": round(slow_s, 4),
        },
        "speedup": round(fast_ops / slow_ops, 3) if slow_ops else None,
        "digest_match": fast_digest == slow_digest,
    }


def _multicore_setup(
    seed: int, transactions: int,
    num_cores: int = _MULTI_RUN_CORES,
    barrier_design: BarrierDesign = BarrierDesign.LB_PP,
    conflict_rate: float = _MULTI_CONFLICT_RATE,
) -> Tuple[MachineConfig, List[list]]:
    """Contended-pingpong configuration.

    Separate from :func:`_single_run_setup` because pingpong takes a
    workload knob (``conflict_rate``) the generic builder does not
    forward.
    """
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=barrier_design,
        num_cores=num_cores,
        # One LLC bank per tile and a 2D mesh, as in Figure 2 (the stock
        # tiny config is a 2-tile chain, which undersells the flush
        # handshake's bank fan-out and gives every bank a distinct hop
        # distance, so the ack fan-outs would never batch).
        llc_banks=num_cores,
        mesh_rows=2,
    )
    programs = [
        list(
            make_benchmark(
                _MULTI_RUN_BENCHMARK, thread_id=tid, seed=seed,
                line_size=config.line_size,
                conflict_rate=conflict_rate,
            ).ops(transactions)
        )
        for tid in range(config.num_cores)
    ]
    return config, programs


def conflict_counters(stats: Stats) -> Dict[str, int]:
    """The conflict-path counters a fast path could silently skew.

    Inter-/intra-thread conflict detections and IDT trackings live in
    the machine-wide ``conflicts`` domain; edge recordings and register
    overflows in ``idt``; splits and persisted-epoch counts are summed
    across the per-core domains.  The multicore bench asserts these are
    identical fast vs reference -- a stronger, more legible check than
    the digest alone, since each counter names one mechanism.
    """
    conflicts = stats.domain("conflicts")
    idt = stats.domain("idt")
    return {
        "inter_thread": int(conflicts.get("inter_thread")),
        "intra_thread": int(conflicts.get("intra_thread")),
        "idt_tracked": int(conflicts.get("idt_tracked")),
        "idt_edges": int(idt.get("idt_edges")),
        "idt_register_overflow": int(idt.get("idt_register_overflow")),
        "epoch_splits": int(stats.total("epoch_splits")),
        "epochs_persisted": int(stats.total("epochs_persisted")),
    }


def run_multicore_bench(seed: int = 1,
                        transactions: int = _MULTI_RUN_TRANSACTIONS,
                        pairs: int = _MULTI_RUN_PAIRS) -> dict:
    """Time the contended multicore headline run fast vs reference.

    Completes the headline trio: ``hotset`` measures the hit path,
    ``flushbound`` the flush/miss path, and this run the conflict path
    -- directory lookups, epoch-tag probes, IDT edges, and epoch splits
    under real inter-thread contention.  Besides the digest, the
    conflict-path counters themselves are compared across modes.
    """
    config, programs = _multicore_setup(seed, transactions)
    n_ops = sum(len(p) for p in programs)

    fast_s, slow_s, fast_digest, slow_digest = _measure_interleaved(
        config, programs, pairs
    )

    def counters(slow: bool) -> Dict[str, int]:
        with reference_mode(slow):
            machine = Multicore(config)
            result = machine.run(programs)
        return conflict_counters(result.stats)

    fast_counters = counters(False)
    slow_counters = counters(True)
    counters_match = fast_counters == slow_counters

    fast_ops = n_ops / fast_s if fast_s else 0.0
    slow_ops = n_ops / slow_s if slow_s else 0.0
    print(f"[bench] multicore run ({_MULTI_RUN_BENCHMARK}, BEP/LB++, "
          f"{config.num_cores} core(s), {transactions} txns, {n_ops} ops):")
    print(f"[bench]   fast paths:    {fast_ops:10.0f} ops/s "
          f"({fast_s * 1e3:.1f} ms)")
    print(f"[bench]   reference:     {slow_ops:10.0f} ops/s "
          f"({slow_s * 1e3:.1f} ms)")
    print(f"[bench]   speedup:       {fast_ops / slow_ops:10.2f}x, digest "
          f"{'MATCH' if fast_digest == slow_digest else 'MISMATCH'}")
    print(f"[bench]   conflicts:     {fast_counters['inter_thread']} "
          f"inter-thread, {fast_counters['idt_edges']} IDT edges, "
          f"{fast_counters['epoch_splits']} splits, counters "
          f"{'MATCH' if counters_match else 'MISMATCH'}")

    return {
        "benchmark": _MULTI_RUN_BENCHMARK,
        "persistency": "bep",
        "barrier_design": "lb_pp",
        "num_cores": config.num_cores,
        "conflict_rate": _MULTI_CONFLICT_RATE,
        "transactions": transactions,
        "ops": n_ops,
        "pairs": pairs,
        "ops_per_sec": {
            "fast": round(fast_ops, 1),
            "reference": round(slow_ops, 1),
        },
        "wall_seconds": {
            "fast": round(fast_s, 4),
            "reference": round(slow_s, 4),
        },
        "speedup": round(fast_ops / slow_ops, 3) if slow_ops else None,
        "digest_match": fast_digest == slow_digest,
        "counters": fast_counters,
        "counters_match": counters_match,
    }


def ff_counters(machine: Multicore) -> Dict[str, int]:
    """Fast-forward session counters summed across cores.

    Diagnostics only: they live as plain attributes on the ``Core``
    objects, never in the stat domains, so the reference engine (which
    has no fast-forward sessions and leaves them at zero) still digests
    identically.
    """
    return {
        "batches": sum(c.ff_batches for c in machine.cores),
        "stores": sum(c.ff_stores for c in machine.cores),
        "fallbacks": sum(c.ff_fallbacks for c in machine.cores),
    }


def run_serving_bench(seed: int = 1,
                      transactions: int = _SERVING_TRANSACTIONS,
                      pairs: int = _SERVING_PAIRS) -> dict:
    """Time the serving front-end fast vs reference.

    The run itself is the digest-verified prefix: every timed repeat is
    digested on both sides, so the headline number and the equivalence
    check cover the identical op stream.  The fast-forward absorption
    counters are reported alongside so the trajectory shows how much of
    the store stream the analytic drain handled.
    """
    config, programs = _single_run_setup(
        seed, transactions, model=PersistencyModel.BEP,
        benchmark=_SERVING_BENCHMARK, num_cores=1,
        barrier_design=BarrierDesign.LB_PP,
    )
    n_ops = sum(len(p) for p in programs)

    fast_s, slow_s, fast_digest, slow_digest = _measure_interleaved(
        config, programs, pairs
    )

    # One extra fast run to read the fast-forward counters (the timed
    # machines are scoped inside the measurement helper).
    machine = Multicore(config)
    machine.run(programs)
    ff = ff_counters(machine)

    fast_ops = n_ops / fast_s if fast_s else 0.0
    slow_ops = n_ops / slow_s if slow_s else 0.0
    print(f"[bench] serving run ({_SERVING_BENCHMARK}, BEP/LB++, "
          f"{config.num_cores} core(s), {transactions} txns, {n_ops} ops):")
    print(f"[bench]   fast paths:    {fast_ops:10.0f} ops/s "
          f"({fast_s * 1e3:.1f} ms)")
    print(f"[bench]   reference:     {slow_ops:10.0f} ops/s "
          f"({slow_s * 1e3:.1f} ms)")
    print(f"[bench]   speedup:       {fast_ops / slow_ops:10.2f}x, digest "
          f"{'MATCH' if fast_digest == slow_digest else 'MISMATCH'}")
    print(f"[bench]   fast-forward:  {ff['stores']} stores in "
          f"{ff['batches']} batches, {ff['fallbacks']} fallbacks")

    return {
        "benchmark": _SERVING_BENCHMARK,
        "persistency": "bep",
        "barrier_design": "lb_pp",
        "num_cores": config.num_cores,
        "transactions": transactions,
        "ops": n_ops,
        "pairs": pairs,
        "ops_per_sec": {
            "fast": round(fast_ops, 1),
            "reference": round(slow_ops, 1),
        },
        "wall_seconds": {
            "fast": round(fast_s, 4),
            "reference": round(slow_s, 4),
        },
        "speedup": round(fast_ops / slow_ops, 3) if slow_ops else None,
        "digest_match": fast_digest == slow_digest,
        "fast_forward": ff,
    }


def run_million_bench(seed: int = 1,
                      transactions: int = _MILLION_TRANSACTIONS) -> dict:
    """Time one million-transaction run end to end on the fast engine.

    The scale demonstration behind the serving work: the program is
    generated lazily (a generator all the way down, constant memory)
    and the fast-forward engine drains the conflict-free, flush-idle
    write-buffer bursts analytically, sustaining ~20k transactions/s.
    Timing-only -- the reference engine is run at this length by nobody;
    equivalence of the same configuration is covered by the digest
    matrices and the headline runs above.
    """
    from itertools import islice

    config = MachineConfig.tiny(
        persistency=PersistencyModel.BSP,
        barrier_design=BarrierDesign.LB_PP,
        num_cores=1,
    )
    bench = make_benchmark(_MILLION_BENCHMARK, thread_id=0, seed=seed,
                           line_size=config.line_size)

    def buffered(it, block=1 << 14):
        # Chunked pull: the core's per-op ``next`` resumes one shallow
        # frame instead of the workload's nested generator chain, while
        # memory stays bounded at one block of materialized ops.
        while True:
            chunk = list(islice(it, block))
            if not chunk:
                return
            yield from chunk

    machine = Multicore(config)
    start = time.perf_counter()
    result = machine.run([buffered(bench.ops(transactions))])
    wall = time.perf_counter() - start
    ff = ff_counters(machine)
    stats = result.stats
    n_ops = int(stats.total("loads") + stats.total("stores")
                + stats.total("barriers") + stats.total("txns"))
    txns_per_sec = transactions / wall if wall else 0.0

    print(f"[bench] million-transaction run ({_MILLION_BENCHMARK}, "
          f"BSP/LB++, 1 core, {transactions} txns, {n_ops} ops):")
    print(f"[bench]   wall time:     {wall:10.1f} s "
          f"({'under' if wall < 60.0 else 'OVER'} the one-minute target)")
    print(f"[bench]   throughput:    {txns_per_sec:10.0f} txns/s, "
          f"{n_ops / wall if wall else 0.0:.0f} ops/s")
    print(f"[bench]   fast-forward:  {ff['stores']} stores in "
          f"{ff['batches']} batches, {ff['fallbacks']} fallbacks")

    return {
        "benchmark": _MILLION_BENCHMARK,
        "persistency": "bsp",
        "barrier_design": "lb_pp",
        "num_cores": config.num_cores,
        "transactions": transactions,
        "ops": n_ops,
        "wall_seconds": round(wall, 2),
        "txns_per_sec": round(txns_per_sec, 1),
        "ops_per_sec": round(n_ops / wall, 1) if wall else None,
        "under_minute": wall < 60.0,
        "finished": result.finished,
        "digest": state_digest(machine, result),
        "fast_forward": ff,
    }


def multicore_digest_matrix(
    seed: int = 1, transactions: int = _DIGEST_TRANSACTIONS,
) -> Dict[str, dict]:
    """Fast-vs-reference digests for contended multicore configs."""
    rows: Dict[str, dict] = {}
    for cores, design in _MULTICORE_DIGEST_CONFIGS:
        config, programs = _multicore_setup(
            seed, transactions, num_cores=cores, barrier_design=design,
        )
        fast = run_digest(config, programs)
        with reference_mode():
            ref = run_digest(config, programs)
        rows[f"{cores}c/{design.value}"] = {
            "fast": fast,
            "reference": ref,
            "match": fast == ref,
        }
    matched = sum(r["match"] for r in rows.values())
    print(f"[bench] multicore digests: {matched}/{len(rows)} configs "
          "match fast vs reference")
    return rows


def digest_matrix(seed: int = 1,
                  transactions: int = _DIGEST_TRANSACTIONS) -> Dict[str, dict]:
    """Fast-vs-reference digest comparison per persistency model."""
    rows: Dict[str, dict] = {}
    for model in _DIGEST_MODELS:
        config, programs = _single_run_setup(
            seed, transactions, model=model,
            benchmark=_DIGEST_BENCHMARK, num_cores=None,
        )

        def one_digest() -> str:
            machine = Multicore(config, track_values=True,
                                track_persist_order=True)
            result = machine.run(programs)
            return state_digest(machine, result)

        fast = one_digest()
        with reference_mode():
            ref = one_digest()
        rows[model.value] = {
            "fast": fast,
            "reference": ref,
            "match": fast == ref,
        }
    matched = sum(r["match"] for r in rows.values())
    print(f"[bench] determinism digests: {matched}/{len(rows)} models "
          "match fast vs reference")
    return rows


def _crash_verdict(seed: int, model: PersistencyModel) -> dict:
    """Crash one run and summarise what the recovery checkers see."""
    from repro.recovery import (
        check_bsp_recoverable,
        check_epoch_order,
        run_with_crash,
    )

    overrides = {}
    if model is PersistencyModel.BSP:
        overrides["bsp_epoch_stores"] = 30
    config = MachineConfig.tiny(
        persistency=model, barrier_design=BarrierDesign.LB_PP, **overrides
    )
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True)
    programs = [
        list(
            make_benchmark(
                _CRASH_BENCHMARK, thread_id=tid, seed=seed,
                line_size=config.line_size,
            ).ops(_CRASH_TRANSACTIONS)
        )
        for tid in range(config.num_cores)
    ]
    outcome = run_with_crash(machine, programs, crash_cycle=_CRASH_CYCLE)

    verdict = {
        "crash_cycle": outcome.crash_cycle,
        "persists_checked": check_epoch_order(outcome),
        "durable_epochs": sum(
            1 for r in outcome.epochs.values() if r.persisted
        ),
    }
    if model is PersistencyModel.BSP:
        verdict["log_covered"] = check_bsp_recoverable(outcome)
    digest = hashlib.sha256()
    for line, value in sorted(outcome.image.values.items()):
        digest.update(f"{line:x}={value!r};".encode())
    verdict["image"] = digest.hexdigest()[:16]
    return verdict


def crash_recovery_matrix(seed: int = 1) -> Dict[str, dict]:
    """Fast-vs-reference comparison of crash-recovery verdicts.

    A crashed run never reaches the end-of-run drain, so the digest
    matrix alone would not catch a fast path that reorders persists
    within the window the crash truncates.  This compares the durable
    image and the consistency-checker verdicts at the crash point.
    """
    rows: Dict[str, dict] = {}
    for model in _CRASH_MODELS:
        fast = _crash_verdict(seed, model)
        with reference_mode():
            ref = _crash_verdict(seed, model)
        rows[model.value] = {
            "fast": fast,
            "reference": ref,
            "match": fast == ref,
        }
    matched = sum(r["match"] for r in rows.values())
    print(f"[bench] crash-recovery verdicts: {matched}/{len(rows)} models "
          "match fast vs reference")
    return rows


# ----------------------------------------------------------------------
# Exhaustive crash-point sweep benchmark (``--only crash``)
# ----------------------------------------------------------------------
# Transactions per scenario: sized so the captured histories stay in the
# hundreds-to-low-thousands of persists -- every truncation point is
# still validated (both incrementally and by the truncate-and-recheck
# oracle) in seconds.
_SWEEP_QUEUE_TRANSACTIONS = 15
_SWEEP_MULTI_TRANSACTIONS = 12
_SWEEP_FAULT_TRANSACTIONS = 8
# Serving is ~70% reads; 60 transactions yield a persist history in the
# low hundreds (one 9-line epoch per PUT), same band as the others.
_SWEEP_SERVING_TRANSACTIONS = 60


def _sweep_scenarios(seed: int) -> List[tuple]:
    """(name, build) pairs for the sweep matrix.

    ``build()`` returns ``(config, programs, queues, bsp)``.  The queue
    semantic check applies only under BEP: BSP's atomicity is *via the
    undo log* -- a torn epoch may durably advance the head cursor before
    the entry, relying on rollback -- so the BSP scenario checks undo
    coverage instead.
    """
    def queue_bep():
        config = MachineConfig.tiny(
            persistency=PersistencyModel.BEP,
            barrier_design=BarrierDesign.LB_PP,
        )
        queue = make_benchmark("queue", thread_id=0, seed=seed,
                               line_size=config.line_size)
        return (config, [list(queue.ops(_SWEEP_QUEUE_TRANSACTIONS))],
                [queue], False)

    def queue_bsp():
        config = MachineConfig.tiny(
            persistency=PersistencyModel.BSP,
            barrier_design=BarrierDesign.LB_PP,
            bsp_epoch_stores=30,
        )
        queue = make_benchmark("queue", thread_id=0, seed=seed,
                               line_size=config.line_size)
        return (config, [list(queue.ops(_SWEEP_QUEUE_TRANSACTIONS))],
                [], True)

    def flushbound():
        config, programs = _single_run_setup(
            seed, _SWEEP_QUEUE_TRANSACTIONS,
            benchmark=_FLUSH_RUN_BENCHMARK, num_cores=1,
            barrier_design=BarrierDesign.LB_PP,
        )
        return (config, programs, [], False)

    def pingpong(design):
        config, programs = _multicore_setup(
            seed, _SWEEP_MULTI_TRANSACTIONS, barrier_design=design)
        return (config, programs, [], False)

    def serving():
        config, programs = _single_run_setup(
            seed, _SWEEP_SERVING_TRANSACTIONS,
            benchmark=_SERVING_BENCHMARK, num_cores=1,
            barrier_design=BarrierDesign.LB_PP,
        )
        return (config, programs, [], False)

    return [
        ("queue_bep", queue_bep),
        ("queue_bsp", queue_bsp),
        ("flushbound_bep", flushbound),
        ("pingpong4_lb", lambda: pingpong(BarrierDesign.LB)),
        ("pingpong4_lbpp", lambda: pingpong(BarrierDesign.LB_PP)),
        ("serving_bep", serving),
    ]


def _sweep_once(build) -> dict:
    """Capture one run, sweep it incrementally, and cross-check the
    verdict against the truncate-and-recheck oracle at stride 1."""
    from repro.recovery import (
        capture_run,
        sweep_crash_points,
        sweep_reference,
    )

    config, programs, queues, bsp = build()
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True)
    outcome = capture_run(machine, programs)
    start = time.perf_counter()
    fast = sweep_crash_points(outcome, queues=queues, bsp=bsp,
                              raise_on_violation=False)
    sweep_s = time.perf_counter() - start
    start = time.perf_counter()
    oracle = sweep_reference(outcome, queues=queues, bsp=bsp, stride=1,
                             raise_on_violation=False)
    oracle_s = time.perf_counter() - start
    digest = hashlib.sha256()
    for line, value in sorted(outcome.image.values.items()):
        digest.update(f"{line:x}={value!r};".encode())
    return {
        "verdict": {
            "points": fast.points,
            "history_len": fast.history_len,
            "data_persists": fast.data_persists,
            "queue_checks": fast.queue_checks,
            "bsp_checked": fast.bsp_checked,
            "ok": fast.ok,
            "first_violation": fast.first_violation,
            "oracle_match": (fast.merge_key() == oracle.merge_key()
                             and fast.data_persists
                             == oracle.data_persists),
            "image": digest.hexdigest()[:16],
        },
        "wall_seconds": {
            "incremental": round(sweep_s, 4),
            "oracle": round(oracle_s, 4),
        },
    }


def _fault_run(seed: int, fault_config) -> dict:
    """One faulted pingpong run: completion, counters, state digest."""
    config, programs = _multicore_setup(seed, _SWEEP_FAULT_TRANSACTIONS)
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, faults=fault_config)
    result = machine.run(programs)
    return {
        "finished": result.finished,
        "digest": state_digest(machine, result),
        "ack_drops": int(result.stats.total("flush_ack_drops")),
        "ack_retries": int(result.stats.total("flush_ack_retries")),
        "ack_delays": int(result.stats.total("flush_ack_delays")),
        "mc_stalls": int(result.stats.total("fault_stalls")),
        "mc_stall_cycles": int(result.stats.total("fault_stall_cycles")),
    }


def _reorder_selftest(seed: int) -> dict:
    """The checker self-test: a reorder-persists fault must make the
    sweep raise."""
    from repro.recovery import capture_run, sweep_crash_points
    from repro.sim.faults import FaultConfig

    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=BarrierDesign.LB_PP,
    )
    queue = make_benchmark("queue", thread_id=0, seed=seed,
                           line_size=config.line_size)
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True,
                        faults=FaultConfig(reorder_window=6))
    outcome = capture_run(machine,
                          [list(queue.ops(_SWEEP_QUEUE_TRANSACTIONS))])
    report = sweep_crash_points(outcome, queues=[queue],
                                raise_on_violation=False)
    return {
        "raised": not report.ok,
        "first_violation": report.first_violation,
        "history_len": report.history_len,
    }


def run_crash_sweep_bench(seed: int = 1) -> dict:
    """The ``--only crash`` section: exhaustive sweeps fast vs
    reference engine, the reorder-fault self-test, and faulted runs
    exercising the BankAck retry/timeout path.

    Every scenario is captured and swept under both engine modes; the
    verdicts (and the incremental-vs-oracle cross-check inside each)
    must agree exactly.  The faulted runs must *complete* -- the retry
    path bounds every dropped ack -- with identical state digests
    across modes and nonzero retry counters in the report.
    """
    from repro.sim.faults import FaultConfig

    sweeps: Dict[str, dict] = {}
    for name, build in _sweep_scenarios(seed):
        fast = _sweep_once(build)
        with reference_mode():
            ref = _sweep_once(build)
        sweeps[name] = {
            "fast": fast["verdict"],
            "reference": ref["verdict"],
            "wall_seconds": fast["wall_seconds"],
            "match": (fast["verdict"] == ref["verdict"]
                      and fast["verdict"]["ok"]
                      and fast["verdict"]["oracle_match"]),
        }
    matched = sum(r["match"] for r in sweeps.values())
    total_points = sum(
        r["fast"]["points"] for r in sweeps.values()
    )
    print(f"[bench] crash sweeps: {matched}/{len(sweeps)} scenarios "
          f"accept all {total_points} truncation points in both modes")

    selftest_fast = _reorder_selftest(seed)
    with reference_mode():
        selftest_ref = _reorder_selftest(seed)
    selftest = {
        "fast": selftest_fast,
        "reference": selftest_ref,
        "match": selftest_fast == selftest_ref and selftest_fast["raised"],
    }
    print(f"[bench] reorder-fault self-test: "
          f"{'caught' if selftest['match'] else 'MISSED'} at point "
          f"{selftest_fast['first_violation']}")

    fault_config = FaultConfig(
        seed=seed, drop_ack_rate=0.3, delay_ack_rate=0.2,
        mc_stall_rate=0.1,
    )
    fault_fast = _fault_run(seed, fault_config)
    with reference_mode():
        fault_ref = _fault_run(seed, fault_config)
    faults = {
        "config": {
            "drop_ack_rate": fault_config.drop_ack_rate,
            "delay_ack_rate": fault_config.delay_ack_rate,
            "mc_stall_rate": fault_config.mc_stall_rate,
        },
        "fast": fault_fast,
        "reference": fault_ref,
        "match": (fault_fast == fault_ref and fault_fast["finished"]
                  and fault_fast["ack_retries"] > 0),
    }
    print(f"[bench] faulted pingpong: finished={fault_fast['finished']}, "
          f"{fault_fast['ack_drops']} drops / "
          f"{fault_fast['ack_retries']} retries / "
          f"{fault_fast['ack_delays']} delays / "
          f"{fault_fast['mc_stalls']} MC stalls, digest "
          f"{'match' if fault_fast['digest'] == fault_ref['digest'] else 'MISMATCH'}")

    return {"sweeps": sweeps, "reorder_selftest": selftest,
            "faults": faults}


# ----------------------------------------------------------------------
# Fault campaign (``--only campaign``)
# ----------------------------------------------------------------------
def run_campaign_bench(seed: int = 1) -> dict:
    """The ``--only campaign`` section: a small exhaustive single-fault
    campaign over the contended pingpong run, fast vs reference engine.

    Both engines must produce *identical* verdict maps (the injector
    draws from stable simulated coordinates, so a mismatch means the
    engines diverged) and zero violations; the reorder self-test run
    through the same triage must be flagged as a violation in both.
    """
    from repro.recovery import (
        VIOLATION,
        CampaignSpec,
        campaign_selftest,
        run_campaign,
    )

    spec = CampaignSpec(workload="pingpong", num_cores=2, transactions=3,
                        seed=seed, mc_stride=2)
    start = time.perf_counter()
    fast = run_campaign(spec, random_rounds=2)
    fast_wall = time.perf_counter() - start
    with reference_mode():
        ref = run_campaign(spec, random_rounds=2)
    parity = fast.verdict_map() == ref.verdict_map()
    campaign = {
        "spec": spec.describe(),
        "runs": len(fast.entries),
        "exhaustive_points": fast.exhaustive_points,
        "random_rounds": fast.random_rounds,
        "survived": fast.survived,
        "aborted_clean": fast.aborted,
        "violations": len(fast.violations),
        "wall_seconds": round(fast_wall, 3),
        "parity": parity,
        "match": parity and fast.ok and ref.ok,
    }
    print(f"[bench] {fast.summary()}; fast/reference verdicts "
          f"{'match' if parity else 'MISMATCH'} ({fast_wall:.1f}s)")

    selftest_fast = campaign_selftest(spec)
    with reference_mode():
        selftest_ref = campaign_selftest(spec)
    flagged = (selftest_fast.verdict == VIOLATION
               and selftest_ref.verdict == VIOLATION)
    selftest = {
        "fast": selftest_fast.verdict,
        "reference": selftest_ref.verdict,
        "repro": selftest_fast.repro,
        "match": flagged,
    }
    print(f"[bench] campaign self-test: "
          f"{'caught' if flagged else 'MISSED'} the reorder fault in "
          f"both modes")
    return {"campaign": campaign, "selftest": selftest}


# ----------------------------------------------------------------------
# Core-count scaling sweep (``--only scaling``)
# ----------------------------------------------------------------------
def parse_cores(text: str) -> Tuple[int, ...]:
    """Validate a ``--cores`` list: powers of two between 2 and 64.

    Raises :class:`argparse.ArgumentTypeError` with a usable message on
    anything else, so both ``python -m repro bench`` front-ends report
    the same helpful error.
    """
    try:
        values = tuple(int(t) for t in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--cores wants a comma-separated list of core counts "
            f"(e.g. 4,8,16,32,64), got {text!r}"
        )
    for v in values:
        if v < 2 or v > 64 or v & (v - 1):
            raise argparse.ArgumentTypeError(
                f"--cores values must be powers of two between 2 and 64 "
                f"(e.g. 4,8,16,32,64), got {v}"
            )
    if not values:
        raise argparse.ArgumentTypeError("--cores list is empty")
    return tuple(sorted(set(values)))


def _scaling_txns(cores: int) -> int:
    """Per-thread transactions for one sweep point (bounded total work)."""
    return max(_SCALING_TXN_MIN, _SCALING_TXN_BUDGET // cores)


def _sharded_setup(
    seed: int, transactions: int, num_cores: int,
    barrier_design: BarrierDesign = BarrierDesign.LB_PP,
    **config_overrides,
) -> Tuple[MachineConfig, List[list]]:
    """Sharded-serving configuration: one shard per core, cross-shard
    ownership migration driving inter-thread handshake traffic."""
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP,
        barrier_design=barrier_design,
        num_cores=num_cores,
        llc_banks=num_cores,
        mesh_rows=2,
        **config_overrides,
    )
    programs = [
        list(
            make_benchmark(
                "sharded_serving", thread_id=tid, seed=seed,
                line_size=config.line_size,
                num_keys=_SCALING_SHARDED_KEYS,
                num_shards=num_cores,
                migrate_fraction=_SCALING_MIGRATE_FRACTION,
            ).ops(transactions)
        )
        for tid in range(config.num_cores)
    ]
    return config, programs


def handshake_summary(machine: Multicore) -> Dict[str, float]:
    """The machine-wide handshake totals one sweep point records."""
    hs = machine.handshake_counters()
    return {
        "flushes": hs["flushes"],
        "flush_epoch_msgs": hs["flush_epoch_msgs"],
        "bank_ack_msgs": hs["bank_ack_msgs"],
        "persist_ack_msgs": hs["persist_ack_msgs"],
        "persist_cmp_msgs": hs["persist_cmp_msgs"],
        "idt_notify_msgs": hs["idt_notify_msgs"],
        "total_msgs": hs["total_msgs"],
        "mean_flush_msgs": round(hs["mean_flush_msgs"], 2),
        "max_flush_msgs": hs["max_flush_msgs"],
    }


def _scaling_point(config: MachineConfig, programs: List[list]) -> dict:
    """Run one sweep point on the fast engine; time it and read the
    handshake counters off the same run."""
    n_ops = sum(len(p) for p in programs)
    machine = Multicore(config)
    start = time.perf_counter()
    machine.run(programs)
    wall = time.perf_counter() - start
    return {
        "ops": n_ops,
        "wall_seconds": round(wall, 4),
        "ops_per_sec": round(n_ops / wall, 1) if wall else None,
        "handshake": handshake_summary(machine),
    }


def handshake_parity(config: MachineConfig,
                     programs: List[list]) -> Dict[str, object]:
    """Fast-vs-reference digest *and* handshake-counter comparison.

    The handshake counters are digest-invisible by design (they are
    bumped from batched fast paths), so the digest alone cannot catch a
    fast path that miscounts messages -- this is the explicit parity
    check, the same shape as :func:`conflict_counters` for PR 4's
    conflict path.
    """

    def one(slow: bool) -> Tuple[str, dict]:
        with reference_mode(slow):
            machine = Multicore(config)
            result = machine.run(programs)
        return state_digest(machine, result), machine.handshake_counters()

    fast_digest, fast_hs = one(False)
    ref_digest, ref_hs = one(True)
    return {
        "digest_match": fast_digest == ref_digest,
        "counters_match": fast_hs == ref_hs,
        "counters": handshake_summary_from(fast_hs),
    }


def handshake_summary_from(hs: dict) -> Dict[str, float]:
    """Like :func:`handshake_summary` but over an already-read dict."""
    return {
        "flushes": hs["flushes"],
        "total_msgs": hs["total_msgs"],
        "mean_flush_msgs": round(hs["mean_flush_msgs"], 2),
        "max_flush_msgs": hs["max_flush_msgs"],
    }


def _loglog_slope(xs: List[float], ys: List[float]) -> Optional[float]:
    """Least-squares slope of log(y) against log(x); None under 3 points."""
    if len(xs) < 3:
        return None
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    den = sum((a - mx) ** 2 for a in lx)
    if not den:
        return None
    return sum((a - mx) * (b - my) for a, b in zip(lx, ly)) / den


def run_scaling_bench(seed: int = 1,
                      cores: Tuple[int, ...] = _SCALING_CORES) -> dict:
    """The core-count scaling sweep.

    Measures the paper's O(n) headline directly: per-flush handshake
    message counts and wall-clock ops/s at each core count for pingpong
    (contended mailbox handoff) and sharded serving (cross-shard
    ownership migration), under both barrier designs.  An all-to-all
    accounting contrast (same timeline, every ack announced to every
    bank) provides the quadratic strawman; a log-log slope fit asserts
    the measured complexity, and the largest point is re-run on the
    reference engine with digest + handshake-counter parity checked.
    """
    cores = tuple(sorted(cores))
    record: dict = {
        "cores": list(cores),
        "pingpong": {},
        "sharded_serving": {},
        "all_to_all": {},
    }

    for design in _SCALING_DESIGNS:
        rows: Dict[str, dict] = {}
        for n in cores:
            txns = _scaling_txns(n)
            config, programs = _multicore_setup(
                seed, txns, num_cores=n, barrier_design=design)
            point = _scaling_point(config, programs)
            point["transactions"] = txns
            rows[str(n)] = point
        record["pingpong"][design.value] = rows

    sharded_rows: Dict[str, dict] = {}
    for n in cores:
        txns = max(_SCALING_TXN_MIN, _scaling_txns(n) // 2)
        config, programs = _sharded_setup(seed, txns, n)
        point = _scaling_point(config, programs)
        point["transactions"] = txns
        sharded_rows[str(n)] = point
    record["sharded_serving"][BarrierDesign.LB_PP.value] = sharded_rows

    # The quadratic strawman: identical timeline, O(n^2) accounting.
    a2a_rows: Dict[str, dict] = {}
    for n in cores:
        txns = _scaling_txns(n)
        config, programs = _multicore_setup(
            seed, txns, num_cores=n, barrier_design=BarrierDesign.LB_PP)
        config = config.with_(
            handshake_protocol=HandshakeProtocol.ALL_TO_ALL)
        point = _scaling_point(config, programs)
        point["transactions"] = txns
        a2a_rows[str(n)] = point
    record["all_to_all"][BarrierDesign.LB_PP.value] = a2a_rows

    arb = record["pingpong"][BarrierDesign.LB_PP.value]
    xs = [float(n) for n in cores]
    arb_ys = [arb[str(n)]["handshake"]["mean_flush_msgs"] for n in cores]
    a2a_ys = [a2a_rows[str(n)]["handshake"]["mean_flush_msgs"]
              for n in cores]
    arb_slope = _loglog_slope(xs, arb_ys)
    a2a_slope = _loglog_slope(xs, a2a_ys)
    record["slopes"] = {
        "arbiter": round(arb_slope, 3) if arb_slope is not None else None,
        "all_to_all": round(a2a_slope, 3) if a2a_slope is not None else None,
        "linear_ok": (arb_slope < _SCALING_LINEAR_MAX_SLOPE
                      if arb_slope is not None else None),
        "quadratic_ok": (a2a_slope > _SCALING_QUADRATIC_MIN_SLOPE
                         if a2a_slope is not None else None),
    }

    # Parity at the largest point: 64-core digest + message counters
    # must match fast vs reference.
    top = cores[-1]
    config, programs = _multicore_setup(
        seed, _scaling_txns(top), num_cores=top,
        barrier_design=BarrierDesign.LB_PP)
    parity = handshake_parity(config, programs)
    parity["cores"] = top
    record["parity"] = parity

    from repro.harness.report import scaling_table

    print(f"[bench] scaling sweep (pingpong + sharded_serving, "
          f"cores {','.join(str(n) for n in cores)}):")
    for line in scaling_table(record).render(precision=1).splitlines():
        print(f"[bench]   {line}")
    slopes = record["slopes"]
    if slopes["arbiter"] is not None:
        print(f"[bench]   log-log slope: arbiter {slopes['arbiter']:.2f} "
              f"(~linear: {'OK' if slopes['linear_ok'] else 'FAIL'}), "
              f"all-to-all {slopes['all_to_all']:.2f} "
              f"(~quadratic: {'OK' if slopes['quadratic_ok'] else 'FAIL'})")
    print(f"[bench]   parity @ {top} cores: digest "
          f"{'MATCH' if parity['digest_match'] else 'MISMATCH'}, "
          f"handshake counters "
          f"{'MATCH' if parity['counters_match'] else 'MISMATCH'}")
    return record


def run_profile(seed: int = 1,
                transactions: int = _SINGLE_RUN_TRANSACTIONS,
                output: str = DEFAULT_OUTPUT, top: int = 30,
                benchmark: str = _FLUSH_RUN_BENCHMARK) -> Path:
    """Profile one fast single run; write top-N cumulative to a file.

    Defaults to the flush-bound micro (that is where the remaining
    simulator time goes); ``--workload hotset`` profiles the
    cache-resident hit path instead.
    """
    # Flush-bound, serving, and multicore profiling want their benches'
    # exact configurations (BEP + LB++; pingpong additionally 4 cores
    # and the headline conflict rate); everything else profiles under
    # the plain single-run config.
    if benchmark == _MULTI_RUN_BENCHMARK:
        config, programs = _multicore_setup(seed, transactions)
    elif benchmark in (_FLUSH_RUN_BENCHMARK, _SERVING_BENCHMARK):
        config, programs = _single_run_setup(
            seed, transactions, benchmark=benchmark, num_cores=1,
            barrier_design=BarrierDesign.LB_PP,
        )
    else:
        config, programs = _single_run_setup(
            seed, transactions, benchmark=benchmark
        )
    machine = Multicore(config)
    profiler = cProfile.Profile()
    profiler.enable()
    machine.run(programs)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    n_ops = sum(len(p) for p in programs)
    path = Path(output).resolve().parent / PROFILE_OUTPUT
    path.write_text(
        f"# cProfile of one tiny-scale single run "
        f"({benchmark}, {transactions} txns, {n_ops} ops), "
        f"sorted by cumulative time, top {top}.\n"
        f"# Generated by `python -m repro bench --profile "
        f"--workload {benchmark}`.\n"
        + buf.getvalue(),
        encoding="utf-8",
    )
    print(f"[bench] wrote {path}")
    return path


# ----------------------------------------------------------------------
# Sweep-executor benchmark (PR 1)
# ----------------------------------------------------------------------
def bench_specs(seed: int = 1) -> List[RunSpec]:
    """The fixed tiny-scale multi-figure sweep that gets timed."""
    seen = {}
    for plan in (
        bep_sweep_plan(Scale.TINY, seed, transactions=_BENCH_TRANSACTIONS),
        fig13_plan(Scale.TINY, seed, mem_ops=_BENCH_MEM_OPS,
                   apps=_BENCH_APPS),
        fig14_plan(Scale.TINY, seed, mem_ops=_BENCH_MEM_OPS,
                   apps=_BENCH_APPS),
    ):
        for spec in plan[0]:
            seen.setdefault(spec, None)
    return list(seen)


def _timed(specs: List[RunSpec], jobs: int,
           cache: Optional[ResultCache]) -> float:
    start = time.perf_counter()
    run_specs(specs, jobs=jobs, cache=cache)
    return time.perf_counter() - start


def run_sweep_bench(jobs: int, seed: int) -> dict:
    specs = bench_specs(seed)
    cpu_count = os.cpu_count() or 1
    print(f"[bench] {len(specs)} runs, tiny scale, jobs={jobs}, "
          f"{cpu_count} cpu(s)")

    serial_s = _timed(specs, jobs=1, cache=None)
    print(f"[bench] serial (jobs=1, no cache):   {serial_s:7.2f}s")

    parallel_s = _timed(specs, jobs=jobs, cache=None)
    print(f"[bench] parallel (jobs={jobs}, no cache): {parallel_s:7.2f}s")

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        run_specs(specs, jobs=jobs, cache=cache)  # populate
        cache.hits = cache.misses = 0
        warm_s = _timed(specs, jobs=jobs, cache=cache)
        warm_hits, warm_misses = cache.hits, cache.misses
    print(f"[bench] warm cache (jobs={jobs}):        {warm_s:7.2f}s "
          f"({warm_hits}/{len(specs)} hits)")

    return {
        "scale": "tiny",
        "runs": len(specs),
        "seed": seed,
        "transactions": _BENCH_TRANSACTIONS,
        "mem_ops": _BENCH_MEM_OPS,
        "apps": list(_BENCH_APPS),
        "jobs": jobs,
        "wall_seconds": {
            "serial": round(serial_s, 3),
            "parallel": round(parallel_s, 3),
            "warm_cache": round(warm_s, 3),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel_s, 3)
            if parallel_s else None,
            "warm_cache_vs_serial": round(serial_s / warm_s, 3)
            if warm_s else None,
        },
        "cache": {
            "hits": warm_hits,
            "misses": warm_misses,
            "hit_rate": round(warm_hits / len(specs), 3) if specs else None,
        },
    }


def run_farm_bench(jobs: int, seed: int) -> dict:
    """The ``--only farm`` section: delta-planner timings + invariants.

    Times the farm's four serving modes over the fixed bench sweep:
    a cold plan-and-run, a warm no-op replan (the plan must find zero
    pending specs), a two-shard split merging through one shared cache
    (the merged cache must cover the plan), and a single-subsystem
    version bump (which must invalidate a strict subset).  The
    invariant booleans feed ``--check-digests`` so CI fails if the
    planner ever recomputes warm work or drops sharded work.
    """
    specs = bench_specs(seed)
    universe = {"bench": specs}
    cpu_count = os.cpu_count() or 1
    print(f"[bench] farm: {len(specs)} specs, tiny scale, jobs={jobs}, "
          f"{cpu_count} cpu(s)")

    with tempfile.TemporaryDirectory(prefix="repro-farm-cache-") as tmp:
        start = time.perf_counter()
        plan = build_plan(universe, ResultCache(tmp))
        cold_plan_s = time.perf_counter() - start
        cold_pending = len(plan.pending)

        start = time.perf_counter()
        cache = ResultCache(tmp)
        run_plan(plan, cache, jobs=jobs)
        cold_run_s = time.perf_counter() - start
        print(f"[bench] farm cold:  plan {cold_plan_s:6.3f}s, run "
              f"{cold_run_s:7.2f}s ({cold_pending} pending)")

        start = time.perf_counter()
        warm = build_plan(universe, ResultCache(tmp))
        warm_plan_s = time.perf_counter() - start
        warm_pending = len(warm.pending)
        print(f"[bench] farm warm:  plan {warm_plan_s:6.3f}s "
              f"({warm_pending} pending)")

        bumped = ResultCache(
            tmp, versions={"flush": SUBSYSTEM_VERSIONS["flush"] + 1}
        )
        bump_pending = len(build_plan(universe, bumped).pending)
        print(f"[bench] farm bump:  flush+1 invalidates {bump_pending}"
              f"/{len(specs)} specs")

    with tempfile.TemporaryDirectory(prefix="repro-farm-shard-") as tmp:
        cache = ResultCache(tmp)
        plan = build_plan(universe, cache)
        start = time.perf_counter()
        for index in (1, 2):
            run_plan(shard_plan(plan, index, 2), cache, jobs=jobs)
        sharded_s = time.perf_counter() - start
        leftover = len(build_plan(universe, ResultCache(tmp)).pending)
        print(f"[bench] farm shard: 2 shards sequential {sharded_s:7.2f}s "
              f"({leftover} left unpinned)")

    return {
        "scale": "tiny",
        "specs": len(specs),
        "seed": seed,
        "jobs": jobs,
        "wall_seconds": {
            "cold_plan": round(cold_plan_s, 4),
            "cold_run": round(cold_run_s, 3),
            "warm_plan": round(warm_plan_s, 4),
            "sharded_2x": round(sharded_s, 3),
        },
        "pending": {
            "cold": cold_pending,
            "warm": warm_pending,
            "flush_bump": bump_pending,
        },
        # Invariants asserted by --check-digests.
        "warm_noop": warm_pending == 0,
        "sharded_complete": leftover == 0,
        "scoped_bump_partial": 0 < bump_pending < len(specs),
    }


# ----------------------------------------------------------------------
def _headline(record: dict) -> dict:
    """The numbers worth carrying forward in the trajectory."""
    entry: dict = {}
    for key in ("single_run", "single_run_flush", "multicore_run",
                "serving_run"):
        row = record.get(key)
        if row:
            entry[key] = {
                "benchmark": row.get("benchmark"),
                "transactions": row.get("transactions"),
                "ops_per_sec_fast": (row.get("ops_per_sec") or {}).get(
                    "fast"),
                "speedup": row.get("speedup"),
            }
    scaling = record.get("scaling")
    if scaling:
        cores = scaling.get("cores") or []
        top = str(cores[-1]) if cores else None
        arb = ((scaling.get("pingpong") or {})
               .get(BarrierDesign.LB_PP.value) or {})
        top_row = arb.get(top) or {}
        entry["scaling"] = {
            "max_cores": cores[-1] if cores else None,
            "ops_per_sec_fast": top_row.get("ops_per_sec"),
            "mean_flush_msgs": (top_row.get("handshake") or {}).get(
                "mean_flush_msgs"),
            "arbiter_slope": (scaling.get("slopes") or {}).get("arbiter"),
            "all_to_all_slope": (scaling.get("slopes") or {}).get(
                "all_to_all"),
        }
    million = record.get("million_run")
    if million:
        entry["million_run"] = {
            "benchmark": million.get("benchmark"),
            "transactions": million.get("transactions"),
            "txns_per_sec": million.get("txns_per_sec"),
            "under_minute": million.get("under_minute"),
        }
    sweep = record.get("sweep")
    if sweep:
        entry["sweep_parallel_vs_serial"] = (sweep.get("speedup") or {}).get(
            "parallel_vs_serial")
    farm = record.get("farm")
    if farm:
        walls = farm.get("wall_seconds") or {}
        entry["farm"] = {
            "specs": farm.get("specs"),
            "cold_plan_s": walls.get("cold_plan"),
            "warm_plan_s": walls.get("warm_plan"),
            "cold_run_s": walls.get("cold_run"),
            "sharded_2x_s": walls.get("sharded_2x"),
        }
    return entry


_TRAJECTORY_KEEP = 20


def _retain_trajectory(trajectory: List[dict],
                       keep: int = _TRAJECTORY_KEEP) -> List[dict]:
    """Cap the trajectory per headline family rather than globally.

    Each regeneration appends one combined entry, so a global
    ``[-keep:]`` slice would let a newly introduced family (every entry
    now carries an extra key) push the oldest entries of long-running
    families out of the history even though fewer than ``keep`` entries
    mention them.  Keep an entry while it is among the newest ``keep``
    for at least one family it reports; order is preserved.
    """
    seen: Dict[str, int] = {}
    kept: List[dict] = []
    for entry in reversed(trajectory):
        families = list(entry)
        if any(seen.get(f, 0) < keep for f in families):
            kept.append(entry)
            for f in families:
                seen[f] = seen.get(f, 0) + 1
    kept.reverse()
    return kept


def _trajectory(path: Path) -> List[dict]:
    """Prior headline numbers: the old file's trajectory plus the old
    file's own headline.  Regenerating the benchmark therefore records
    the before/after history in place."""
    if not path.exists():
        return []
    try:
        old = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return []
    trajectory = [e for e in old.get("trajectory", ())
                  if isinstance(e, dict)]
    head = _headline(old)
    if head:
        trajectory.append(head)
    return _retain_trajectory(trajectory)


def digests_ok(record: dict) -> bool:
    """True when every fast-vs-reference comparison in ``record``
    matched: the headline runs (digests, and for the multicore run the
    conflict-path counters too), the model and multicore digest
    matrices, and the crash-recovery verdicts."""
    for key in ("single_run", "single_run_flush", "multicore_run",
                "serving_run"):
        row = record.get(key)
        if row and not row.get("digest_match"):
            return False
        if row and not row.get("counters_match", True):
            return False
    million = record.get("million_run")
    if million and not million.get("finished"):
        return False
    scaling = record.get("scaling")
    if scaling:
        parity = scaling.get("parity") or {}
        if not parity.get("digest_match") or not parity.get(
                "counters_match"):
            return False
        slopes = scaling.get("slopes") or {}
        # None means too few points for a fit (CI smoke); only an
        # explicit False fails.
        if slopes.get("linear_ok") is False:
            return False
        if slopes.get("quadratic_ok") is False:
            return False
    for matrix in ("digests", "digests_multicore", "crash_recovery"):
        for row in (record.get(matrix) or {}).values():
            if not row.get("match"):
                return False
    crash_sweep = record.get("crash_sweep")
    if crash_sweep:
        for row in (crash_sweep.get("sweeps") or {}).values():
            if not row.get("match"):
                return False
        for key in ("reorder_selftest", "faults"):
            row = crash_sweep.get(key)
            if row and not row.get("match"):
                return False
    campaign = record.get("campaign")
    if campaign:
        for key in ("campaign", "selftest"):
            row = campaign.get(key)
            if row and not row.get("match"):
                return False
    farm = record.get("farm")
    if farm:
        for invariant in ("warm_noop", "sharded_complete",
                          "scoped_bump_partial"):
            if not farm.get(invariant):
                return False
    return True


def run_bench(jobs: int = 4, seed: int = 1, output: str = DEFAULT_OUTPUT,
              transactions: Optional[int] = None, profile: bool = False,
              sweep: bool = True, workload: Optional[str] = None,
              only: Optional[str] = None, profile_top: int = 30,
              million: bool = True,
              cores: Optional[Tuple[int, ...]] = None) -> dict:
    """Run the benchmark families and write the report.

    ``only`` restricts the run to one bench family (``"single"``,
    ``"flush"``, ``"multicore"``, ``"serving"``, ``"scaling"`` -- the
    core-count sweep -- ``"crash"`` -- the exhaustive crash-point
    sweeps plus fault injection -- ``"campaign"`` -- the exhaustive
    fault campaign fast vs reference -- or ``"farm"`` -- the
    delta-planner cold/warm/sharded timings) for CI smoke jobs; the full matrix,
    crash-recovery, million-transaction, and sweep-executor sections
    run only in the unrestricted mode.  A restricted run regenerates
    only its own section: every other family present in the existing
    output file is carried forward unchanged, so ``--only`` never ages
    other families out of ``BENCH_sweep.json``.  ``--check-digests``
    still works in restricted modes -- :func:`digests_ok` checks
    whatever sections are present (carried-forward sections matched
    when they were generated).  ``cores`` overrides the scaling sweep's
    core counts (the ``--cores`` flag, validated by
    :func:`parse_cores`).
    """
    single_txns = (transactions if transactions is not None
                   else _SINGLE_RUN_TRANSACTIONS)
    flush_txns = (transactions if transactions is not None
                  else _FLUSH_RUN_TRANSACTIONS)
    multi_txns = (transactions if transactions is not None
                  else _MULTI_RUN_TRANSACTIONS)
    serving_txns = (transactions if transactions is not None
                    else _SERVING_TRANSACTIONS)
    path = Path(output)
    record: dict = {
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
    }
    if only in (None, "single"):
        record["single_run"] = run_single_bench(
            seed=seed, transactions=single_txns)
    if only in (None, "flush"):
        record["single_run_flush"] = run_flush_bench(
            seed=seed, transactions=flush_txns,
            benchmark=workload or _FLUSH_RUN_BENCHMARK,
        )
    if only in (None, "multicore"):
        record["multicore_run"] = run_multicore_bench(
            seed=seed, transactions=multi_txns)
        record["digests_multicore"] = multicore_digest_matrix(seed=seed)
    if only in (None, "serving"):
        record["serving_run"] = run_serving_bench(
            seed=seed, transactions=serving_txns)
    if only in (None, "scaling"):
        record["scaling"] = run_scaling_bench(
            seed=seed, cores=cores or _SCALING_CORES)
    if only in (None, "crash"):
        record["crash_sweep"] = run_crash_sweep_bench(seed=seed)
    if only in (None, "campaign"):
        record["campaign"] = run_campaign_bench(seed=seed)
    if only in (None, "farm"):
        record["farm"] = run_farm_bench(jobs=jobs, seed=seed)
    if only is None:
        record["digests"] = digest_matrix(seed=seed)
        record["crash_recovery"] = crash_recovery_matrix(seed=seed)
        if million:
            record["million_run"] = run_million_bench(seed=seed)
    if only is not None and path.exists():
        # Restricted run: carry every section this run did not
        # regenerate forward from the existing file, so ``--only X``
        # refreshes one family instead of wiping the others.
        try:
            old = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            old = {}
        if isinstance(old, dict):
            for key, value in old.items():
                if key not in record and key != "trajectory":
                    record[key] = value
    record["trajectory"] = _trajectory(path)
    if sweep and only is None:
        record["sweep"] = run_sweep_bench(jobs=jobs, seed=seed)
    if profile:
        bench_name = workload or _FLUSH_RUN_BENCHMARK
        if bench_name == _MULTI_RUN_BENCHMARK:
            prof_txns = multi_txns
        elif bench_name == _SERVING_BENCHMARK:
            prof_txns = serving_txns
        else:
            prof_txns = flush_txns
        run_profile(seed=seed, transactions=prof_txns, output=output,
                    top=profile_top, benchmark=bench_name)

    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] wrote {path}")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the simulator: single-run ops/sec (fast vs "
                    "reference engine) and the sweep executor."
    )
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count (default 4)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--transactions", type=int, default=None,
                        help="single-run length in transactions "
                             f"(default {_SINGLE_RUN_TRANSACTIONS})")
    parser.add_argument("--profile", action="store_true",
                        help=f"cProfile one single run into {PROFILE_OUTPUT}")
    parser.add_argument("--profile-top", type=int, default=30,
                        help="rows of the profile table --profile writes "
                             "(default 30)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the sweep-executor timing (smoke mode)")
    parser.add_argument("--no-million", action="store_true",
                        help="skip the million-transaction scale run in "
                             "the unrestricted mode")
    parser.add_argument("--workload", default=None,
                        help="micro for the flush-bound run and --profile "
                             f"(default {_FLUSH_RUN_BENCHMARK})")
    parser.add_argument("--only",
                        choices=("single", "flush", "multicore", "serving",
                                 "scaling", "crash", "campaign", "farm"),
                        default=None,
                        help="run just one bench family (skips the "
                             "matrix, crash-recovery, million, and sweep "
                             "sections; 'scaling' runs the core-count "
                             "sweep, 'crash' the exhaustive crash-point "
                             "sweeps and fault-injection checks, "
                             "'campaign' the exhaustive fault campaign "
                             "fast vs reference, 'farm' the planner "
                             "cold/warm/sharded timings)")
    parser.add_argument("--cores", type=parse_cores, default=None,
                        metavar="N,N,...",
                        help="core counts for the scaling sweep: powers "
                             "of two between 2 and 64 "
                             "(default 4,8,16,32,64)")
    parser.add_argument("--check-digests", action="store_true",
                        help="exit nonzero unless every fast-vs-reference "
                             "digest and crash-recovery verdict matches")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"result file (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    record = run_bench(jobs=args.jobs, seed=args.seed, output=args.output,
                       transactions=args.transactions, profile=args.profile,
                       sweep=not args.no_sweep, workload=args.workload,
                       only=args.only, profile_top=args.profile_top,
                       million=not args.no_million, cores=args.cores)
    if args.check_digests and not digests_ok(record):
        print("[bench] ERROR: fast/reference digest mismatch")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
