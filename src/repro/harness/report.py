"""Table and series formatting for experiment output.

Every figure in the paper is a grouped bar chart over benchmarks; in a
terminal that is a table with one row per benchmark and one column per
series, closed by the paper's summary statistic (gmean for throughput
and execution time, amean for conflict percentages).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.stats import arithmetic_mean, geometric_mean


class FigureTable:
    """Rows = benchmarks, columns = series; renders aligned text."""

    def __init__(self, title: str, columns: Sequence[str],
                 summary: str = "gmean") -> None:
        if summary not in ("gmean", "amean", "none"):
            raise ValueError(f"unknown summary kind {summary!r}")
        self.title = title
        self.columns = list(columns)
        self.summary = summary
        self.rows: List[tuple] = []

    def add_row(self, name: str, values: Sequence[float]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {name!r} has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append((name, list(values)))

    # ------------------------------------------------------------------
    def summary_row(self) -> Optional[tuple]:
        if self.summary == "none" or not self.rows:
            return None
        mean = geometric_mean if self.summary == "gmean" else arithmetic_mean
        values = [
            mean([row[1][i] for row in self.rows])
            for i in range(len(self.columns))
        ]
        return (self.summary, values)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        out = {
            name: dict(zip(self.columns, values))
            for name, values in self.rows
        }
        summary = self.summary_row()
        if summary is not None:
            out[summary[0]] = dict(zip(self.columns, summary[1]))
        return out

    def render(self, precision: int = 3) -> str:
        name_width = max(
            [len(self.title)]
            + [len(name) for name, _ in self.rows]
            + [len(self.summary)]
        )
        col_width = max(
            [precision + 4] + [len(c) for c in self.columns]
        ) + 2
        lines = [
            self.title,
            "-" * (name_width + col_width * len(self.columns)),
            "".ljust(name_width)
            + "".join(c.rjust(col_width) for c in self.columns),
        ]

        def fmt(name: str, values: Sequence[float]) -> str:
            return name.ljust(name_width) + "".join(
                f"{v:.{precision}f}".rjust(col_width) for v in values
            )

        for name, values in self.rows:
            lines.append(fmt(name, values))
        summary = self.summary_row()
        if summary is not None:
            lines.append("-" * (name_width + col_width * len(self.columns)))
            lines.append(fmt(summary[0], summary[1]))
        return "\n".join(lines)


def scaling_table(record: Dict) -> FigureTable:
    """Render a ``scaling`` bench family as a per-core-count table.

    One row per core count; columns are the mean handshake messages per
    flush for the arbiter design (pingpong and sharded serving) and the
    all-to-all strawman, plus pingpong fast-engine throughput.  Means
    across core counts would be meaningless for a scaling curve, so the
    table carries no summary row.
    """
    lbpp = "LB++"
    pingpong = record["pingpong"][lbpp]
    sharded = record["sharded_serving"][lbpp]
    a2a = record["all_to_all"][lbpp]
    table = FigureTable(
        "msgs/flush (mean)",
        ["arbiter", "sharded", "all-to-all", "ops/s"],
        summary="none",
    )
    for n in record["cores"]:
        key = str(n)
        table.add_row(f"{n} cores", [
            pingpong[key]["handshake"]["mean_flush_msgs"],
            sharded[key]["handshake"]["mean_flush_msgs"],
            a2a[key]["handshake"]["mean_flush_msgs"],
            pingpong[key]["ops_per_sec"],
        ])
    return table


def plan_table(plan) -> FigureTable:
    """Per-figure breakdown of a :class:`~repro.harness.plan.SweepPlan`.

    One row per figure tag; a spec shared by several figures (the NP
    baselines, the fig11/fig12 sweep) counts in each consumer's row, so
    the columns answer "what does *this* figure still need", not "how
    is the deduplicated universe split" -- the plan summary line gives
    the deduplicated totals.  Counts and seconds share rows, so there
    is no meaningful mean: no summary row.
    """
    tags: List[str] = []
    stats: Dict[str, List[float]] = {}
    for entry in plan.entries:
        for tag in entry.figures:
            if tag not in stats:
                tags.append(tag)
                stats[tag] = [0, 0, 0, 0.0]  # specs/cached/pending/est
            row = stats[tag]
            row[0] += 1
            if entry.cached:
                row[1] += 1
            else:
                row[2] += 1
                row[3] += entry.est_seconds or 0.0
    table = FigureTable(
        "sweep plan", ["specs", "cached", "to run", "est s"],
        summary="none",
    )
    for tag in tags:
        table.add_row(tag, stats[tag])
    return table


def normalize_rows(
    raw: Dict[str, Dict[str, float]],
    baseline_column: str,
    invert: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Normalize each row to its value in ``baseline_column``.

    ``invert=False`` gives value/baseline (throughput-style, higher is
    better); ``invert`` keeps the same ratio orientation but is provided
    for callers that pass times and want slowdowns -- time/baseline is
    already a slowdown, so both orientations reduce to value/baseline.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, row in raw.items():
        base = row[baseline_column]
        if base == 0:
            raise ZeroDivisionError(f"zero baseline for {name!r}")
        out[name] = {col: value / base for col, value in row.items()}
    return out
