"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.runner`      -- machine presets (tiny/small/paper
  scales) and single-run drivers for BEP microbenchmarks and BSP apps.
* :mod:`repro.harness.experiments` -- one driver per figure: fig11
  (BEP throughput), fig12 (conflicting epochs), fig13 (BSP epoch-size
  sweep), fig14 (BSP designs), plus the in-text ablations (clwb vs
  clflush, naive write-through BSP, inter-thread conflict share).
* :mod:`repro.harness.report`      -- table/series formatting.

Command line::

    python -m repro.harness.experiments fig11 --scale small
"""

from repro.harness.runner import (
    Scale,
    bep_machine_config,
    bsp_machine_config,
    run_bep,
    run_bsp,
)

__all__ = [
    "Scale",
    "bep_machine_config",
    "bsp_machine_config",
    "run_bep",
    "run_bsp",
]
