"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.runner`      -- machine presets (tiny/small/paper
  scales) and single-run drivers for BEP microbenchmarks and BSP apps.
* :mod:`repro.harness.executor`    -- the parallel sweep executor:
  :class:`RunSpec` lists fanned out over a process pool, reduced to
  slim :class:`RunSummary` carriers in deterministic spec order.
* :mod:`repro.harness.cache`       -- content-addressed disk cache of
  run summaries keyed by SHA-256 over config + workload + seed.
* :mod:`repro.harness.experiments` -- one driver per figure: fig11
  (BEP throughput), fig12 (conflicting epochs), fig13 (BSP epoch-size
  sweep), fig14 (BSP designs), plus the in-text ablations (clwb vs
  clflush, naive write-through BSP, inter-thread conflict share).
* :mod:`repro.harness.bench`       -- times the executor serial vs
  parallel vs warm cache; writes ``BENCH_sweep.json``.
* :mod:`repro.harness.report`      -- table/series formatting.

Command line::

    python -m repro.harness.experiments fig11 --scale small --jobs 4
"""

from repro.harness.cache import ResultCache
from repro.harness.executor import (
    FarmError,
    FarmHealth,
    RunSpec,
    RunSummary,
    execute_resilient,
    run_specs,
)
from repro.harness.runner import (
    Scale,
    bep_machine_config,
    bsp_machine_config,
    run_bep,
    run_bsp,
)

__all__ = [
    "FarmError",
    "FarmHealth",
    "ResultCache",
    "RunSpec",
    "RunSummary",
    "Scale",
    "execute_resilient",
    "bep_machine_config",
    "bsp_machine_config",
    "run_bep",
    "run_bsp",
    "run_specs",
]
