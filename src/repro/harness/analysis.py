"""Derived-metric analysis of run results.

Turns the raw counters of a :class:`~repro.system.RunResult` into the
quantities you reason about when reading the paper: where the overhead
over NP comes from (conflict stalls vs NVRAM traffic vs logging), how
much each design's machinery was exercised, and side-by-side design
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.harness.report import FigureTable
from repro.system import RunResult


@dataclass(frozen=True)
class OverheadBreakdown:
    """Accounting of one persistent run against a non-persistent one."""

    slowdown: float                 # time / NP time
    online_stall_cycles: float      # total cycles requests spent parked
    stall_share_of_overhead: float  # stalls / (extra thread-cycles)
    conflicts_intra: int
    conflicts_inter: int
    conflicts_eviction: int
    idt_absorbed: int               # inter conflicts IDT handled offline
    epoch_splits: int
    window_stalls: int
    writes_data: int
    writes_log: int
    writes_checkpoint: int
    writes_eviction: int

    @property
    def writes_total(self) -> int:
        return (self.writes_data + self.writes_log
                + self.writes_checkpoint + self.writes_eviction)

    def describe(self) -> str:
        lines = [
            f"slowdown over NP        : {self.slowdown:.2f}x",
            f"online stall cycles     : {self.online_stall_cycles:,.0f} "
            f"({self.stall_share_of_overhead:.0%} of the overhead)",
            f"conflicts               : intra={self.conflicts_intra} "
            f"inter={self.conflicts_inter} "
            f"eviction={self.conflicts_eviction} "
            f"(IDT absorbed {self.idt_absorbed})",
            f"epoch splits            : {self.epoch_splits}",
            f"epoch-window stalls     : {self.window_stalls}",
            f"NVRAM writes            : {self.writes_total} "
            f"(data={self.writes_data} log={self.writes_log} "
            f"ckpt={self.writes_checkpoint} evict={self.writes_eviction})",
        ]
        return "\n".join(lines)


def overhead_breakdown(result: RunResult,
                       baseline: Optional[RunResult] = None
                       ) -> OverheadBreakdown:
    """Break a run's persistence overhead down by mechanism.

    ``baseline`` is the NP run of the same trace; without one, the
    slowdown and overhead share are reported against the run itself
    (slowdown 1.0).
    """
    time = result.cycles_durable or result.cycles_visible or 0
    base_time = time
    if baseline is not None:
        base_time = (baseline.cycles_durable
                     or baseline.cycles_visible or time)
    conflicts = result.stats.domain("conflicts")
    stalls = conflicts.total("online_stall_cycles")
    threads = result.config.num_cores
    extra = max(1.0, (time - base_time) * threads)
    nvram = result.stats.domain("nvram")
    return OverheadBreakdown(
        slowdown=time / base_time if base_time else 0.0,
        online_stall_cycles=stalls,
        stall_share_of_overhead=min(1.0, stalls / extra),
        conflicts_intra=conflicts.get("intra_thread"),
        conflicts_inter=conflicts.get("inter_thread"),
        conflicts_eviction=conflicts.get("eviction_conflicts"),
        idt_absorbed=conflicts.get("idt_tracked"),
        epoch_splits=result.stats.total("epoch_splits"),
        window_stalls=result.stats.total("epoch_window_stalls"),
        writes_data=nvram.get("writes_data"),
        writes_log=nvram.get("writes_log"),
        writes_checkpoint=nvram.get("writes_checkpoint"),
        writes_eviction=nvram.get("writes_eviction"),
    )


def compare_designs(results: Dict[str, RunResult],
                    baseline: Optional[RunResult] = None,
                    metric: str = "durable") -> FigureTable:
    """Side-by-side table of runs of the same trace under different
    designs.  ``metric`` selects 'durable' or 'visible' time, or
    'throughput'."""
    table = FigureTable(
        f"Design comparison ({metric}"
        + (", normalized to NP)" if baseline else ")"),
        list(results), summary="none",
    )

    def value(result: RunResult) -> float:
        if metric == "throughput":
            return result.throughput
        if metric == "visible":
            return float(result.cycles_visible or 0)
        return float(result.cycles_durable or 0)

    base = value(baseline) if baseline is not None else 1.0
    table.add_row(
        metric,
        [value(r) / base if base else 0.0 for r in results.values()],
    )
    return table
