"""Delta planner and farm executor for figure sweeps.

The paper's figure set is an incremental build over the
content-addressed result cache: the full universe of RunSpecs is known
up front, each spec's key is a pure function of its inputs and the
subsystem versions (:mod:`repro.harness.cache`), and a result is valid
exactly while its key resolves.  This module separates *planning* --
what must run, in what order -- from *execution* -- where and when it
runs:

* :func:`build_plan` enumerates the deduplicated union of every
  figure's specs, fingerprints each one exactly once, probes the cache
  in a single stat-only pass, and attaches recorded wall-clock costs.
  The result is a :class:`SweepPlan` whose pending entries are the only
  work left in the universe.
* :func:`shard_plan` splits a plan deterministically across ``n``
  workers: entry ``i`` of ``n`` is chosen by a stable hash of the spec
  key alone (:func:`shard_of`), so every host/CI job computes the same
  partition with no coordination and the shards merge through the
  shared cache directory.
* :func:`run_plan` executes the pending entries longest-first (the LPT
  makespan heuristic, fed by the version-independent cost records)
  under an optional wall-clock ``budget``.  Every completion is
  persisted to the cache immediately and the ``plan.json`` cursor is
  rewritten, so an interrupted or over-budget run loses at most the
  in-flight specs.  Resume needs no cursor state: the next
  :func:`build_plan` re-probes the cache and the completed work is
  simply no longer pending -- ``plan.json`` is advisory (progress
  reporting, post-mortem), never authoritative.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.harness.cache import ResultCache
from repro.harness.executor import (
    FarmHealth,
    RunSpec,
    execute_resilient,
    resolve_jobs,
)

PLAN_FILENAME = "plan.json"


@dataclass(frozen=True)
class PlanEntry:
    """One deduplicated spec in the sweep universe."""

    spec: RunSpec
    key: str                      # content address (inputs + versions)
    cost_key: str                 # version-independent cost address
    figures: Tuple[str, ...]      # figure tags that consume this spec
    cached: bool                  # probe outcome at plan time
    est_seconds: Optional[float]  # recorded wall-clock, if any


@dataclass
class SweepPlan:
    """The outcome of one planning pass: every spec, probed and costed.

    ``shard`` is ``None`` for an unsharded plan and ``(i, n)``
    (1-based) for the partition produced by :func:`shard_plan`.
    """

    entries: List[PlanEntry]
    shard: Optional[Tuple[int, int]] = None
    universe: int = field(default=0)  # entry count before sharding

    def __post_init__(self) -> None:
        if not self.universe:
            self.universe = len(self.entries)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[PlanEntry]:
        return [e for e in self.entries if not e.cached]

    @property
    def cached_entries(self) -> List[PlanEntry]:
        return [e for e in self.entries if e.cached]

    def estimated_seconds(self, jobs: int = 1) -> float:
        """Makespan estimate for the pending work under ``jobs`` workers.

        Entries with no recorded cost are charged the mean of the known
        ones (or 0 when nothing is known yet -- a cold cache has no
        basis for an estimate, and the summary line says ``est. ?``).
        """
        pending = self.pending
        known = [e.est_seconds for e in pending if e.est_seconds]
        if not known:
            return 0.0
        mean = sum(known) / len(known)
        total = sum(e.est_seconds or mean for e in pending)
        return total / max(1, jobs)

    def summary(self, jobs: int = 1) -> str:
        """The ``N cached / M to run / est. T`` plan line."""
        pending = self.pending
        parts = [
            f"{len(self.cached_entries)} cached",
            f"{len(pending)} to run",
        ]
        if pending:
            est = self.estimated_seconds(jobs)
            parts.append(f"est. {est:.1f}s" if est else "est. ? (no "
                         "recorded costs yet)")
        else:
            parts.append("nothing to do")
        line = " / ".join(parts)
        if self.shard is not None:
            index, count = self.shard
            line += (f" [shard {index}/{count} of "
                     f"{self.universe}-spec universe]")
        return f"[plan] {line}"


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def build_plan(
    figure_specs: Mapping[str, Sequence[RunSpec]],
    cache: ResultCache,
    refresh: bool = False,
) -> SweepPlan:
    """Probe the whole spec universe once and emit the delta.

    ``figure_specs`` maps a figure tag to its spec list; the plan holds
    the deduplicated union in first-seen order, each entry tagged with
    every figure that consumes it (the shared NP baselines appear once,
    tagged by all their consumers).  With ``refresh`` every entry is
    planned as pending regardless of the probe.
    """
    order: List[RunSpec] = []
    consumers: Dict[RunSpec, List[str]] = {}
    for tag, specs in figure_specs.items():
        for spec in specs:
            if spec not in consumers:
                consumers[spec] = []
                order.append(spec)
            if tag not in consumers[spec]:
                consumers[spec].append(tag)

    entries: List[PlanEntry] = []
    for spec in order:
        key, cost_key = cache.fingerprints(spec)
        cached = (not refresh) and cache.contains_key(key)
        entries.append(PlanEntry(
            spec=spec, key=key, cost_key=cost_key,
            figures=tuple(consumers[spec]), cached=cached,
            est_seconds=cache.cost_by_key(cost_key),
        ))
    return SweepPlan(entries)


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def shard_of(key: str, count: int) -> int:
    """The 1-based shard owning ``key`` under a ``count``-way split.

    A pure function of the spec key's leading 64 bits -- the key is
    already a SHA-256 hex digest, so the prefix is uniformly
    distributed and no extra hashing (or process-dependent state like
    ``hash()``) is needed.  Every process, host, and core count maps a
    key to the same shard.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return int(key[:16], 16) % count + 1


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"i/n"`` into 1-based ``(index, count)``, validated."""
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(
            f"--shard expects i/n (e.g. 2/4), got {text!r}"
        ) from None
    if count < 1 or not (1 <= index <= count):
        raise ValueError(
            f"--shard index out of range: {index}/{count}"
        )
    return index, count


def shard_plan(plan: SweepPlan, index: int, count: int) -> SweepPlan:
    """The sub-plan owned by shard ``index`` of ``count``.

    Shards partition the *whole* plan (cached entries included, so the
    disjointness/union invariants hold over the universe), but only the
    pending subset of a shard is ever executed.
    """
    if not (1 <= index <= count):
        raise ValueError(f"shard index out of range: {index}/{count}")
    entries = [e for e in plan.entries if shard_of(e.key, count) == index]
    return SweepPlan(entries, shard=(index, count),
                     universe=plan.universe)


# ----------------------------------------------------------------------
# Execution with budget + checkpoint
# ----------------------------------------------------------------------
@dataclass
class PlanRunReport:
    """What one :func:`run_plan` invocation actually did."""

    executed: int          # specs run and persisted this invocation
    remaining: int         # pending specs left (budget cut or cancelled)
    elapsed: float         # wall-clock seconds spent
    over_budget: bool      # True when the deadline stopped the run
    quarantined: int = 0   # specs dropped after repeated worker faults

    @property
    def complete(self) -> bool:
        return self.remaining == 0


def pending_longest_first(plan: SweepPlan) -> List[PlanEntry]:
    """Pending entries in LPT order (unknown costs get the known mean).

    Ties keep plan order, so the schedule is deterministic.
    """
    pending = plan.pending
    known = [e.est_seconds for e in pending if e.est_seconds]
    default = (sum(known) / len(known)) if known else 0.0
    return sorted(pending, key=lambda e: -(e.est_seconds or default))


def _write_cursor(path: Path, plan: SweepPlan, done: List[str],
                  remaining: List[str]) -> None:
    """Atomically rewrite the advisory ``plan.json`` cursor."""
    record = {
        "universe": plan.universe,
        "shard": (f"{plan.shard[0]}/{plan.shard[1]}"
                  if plan.shard else None),
        "cached_at_plan_time": len(plan.cached_entries),
        "completed": done,
        "remaining": remaining,
        "updated_unix": round(time.time(), 1),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-plan-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def run_plan(
    plan: SweepPlan,
    cache: ResultCache,
    jobs: Optional[int] = None,
    budget: Optional[float] = None,
    plan_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
    health: Optional[FarmHealth] = None,
) -> PlanRunReport:
    """Execute a plan's pending entries; persist everything that lands.

    ``budget`` is a wall-clock allowance in seconds measured from entry
    (``time.monotonic``, immune to clock steps): once it is exhausted no
    *new* spec is dispatched -- in-flight pool workers are allowed to
    finish and their results are kept, queued-but-unstarted work is
    cancelled.  ``budget=0`` therefore plans everything and runs
    nothing, which is how the CLI prints a dry plan.

    Execution goes through :func:`execute_resilient`: a pool-worker
    death or a spec exceeding ``timeout`` seconds respawns the pool
    with the surviving specs instead of aborting the shard, and a spec
    that repeatedly takes the pool down is quarantined (it simply stays
    pending; the report counts it and ``health`` -- or a stderr line --
    names it).

    ``plan_path`` names the advisory cursor file, rewritten atomically
    after every completion.  Resume does not read it: re-planning
    against the cache *is* the resume (completed specs probe as cached),
    so a lost or stale cursor can never cause recomputation or skipped
    work.
    """
    start = time.monotonic()
    deadline = start + budget if budget is not None else None
    ordered = pending_longest_first(plan)
    cursor = Path(plan_path) if plan_path is not None else None

    done: List[str] = []
    remaining: List[str] = [e.key for e in ordered]
    over_budget = False
    own_health = health if health is not None else FarmHealth()

    def record(entry: PlanEntry, summary, wall: float) -> None:
        cache.put_by_key(entry.key, entry.spec, summary,
                         wall_seconds=wall, cost_key=entry.cost_key)
        done.append(entry.key)
        remaining.remove(entry.key)
        if cursor is not None:
            _write_cursor(cursor, plan, done, remaining)

    if cursor is not None:
        _write_cursor(cursor, plan, done, remaining)
    if not ordered:
        return PlanRunReport(0, 0, time.monotonic() - start, False)

    jobs = resolve_jobs(jobs)

    def hit_deadline() -> bool:
        nonlocal over_budget
        if deadline is not None and time.monotonic() >= deadline:
            over_budget = True
            return True
        return False

    if not hit_deadline():
        by_index = dict(enumerate(ordered))
        execute_resilient(
            {index: entry.spec for index, entry in by_index.items()},
            jobs,
            timeout=timeout,
            health=own_health,
            on_result=lambda index, summary, wall: record(
                by_index[index], summary, wall
            ),
            should_stop=hit_deadline,
        )
        if not own_health.clean:
            print(f"[plan] {own_health.describe()}", file=sys.stderr)

    return PlanRunReport(
        executed=len(done),
        remaining=len(remaining),
        elapsed=time.monotonic() - start,
        over_budget=over_budget,
        quarantined=len(own_health.quarantined),
    )
