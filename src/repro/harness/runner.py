"""Machine presets and single-experiment runners.

Experiments run at three scales:

* ``tiny``  -- 2 cores, short runs; used by the test suite.
* ``small`` -- 8 cores; the default for the benchmark harness.  All the
  paper's results are normalized ratios, which are stable under this
  scaling (the per-core cache and bandwidth ratios are preserved).
* ``paper`` -- the full Table 1 machine (32 cores, 32 LLC banks, 4 MCs).

The BEP runs give every thread its own microbenchmark instance (the
NVHeaps benchmarks shard per thread); the BSP runs share one profile
pool across threads, as the real multithreaded workloads do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.sim.config import BarrierDesign, FlushMode, MachineConfig, PersistencyModel
from repro.system import Multicore, RunResult
from repro.workloads.apps import app_programs
from repro.workloads.micro import make_benchmark


class Scale(enum.Enum):
    TINY = "tiny"
    SMALL = "small"
    PAPER = "paper"


@dataclass(frozen=True)
class _ScaleParams:
    threads: int
    bep_transactions: int
    bsp_mem_ops: int


_SCALE_PARAMS = {
    Scale.TINY: _ScaleParams(threads=2, bep_transactions=40, bsp_mem_ops=4000),
    Scale.SMALL: _ScaleParams(threads=8, bep_transactions=120, bsp_mem_ops=12000),
    Scale.PAPER: _ScaleParams(threads=32, bep_transactions=300, bsp_mem_ops=40000),
}


def scale_params(scale: Scale) -> _ScaleParams:
    """Thread count and default run lengths for a scale (used by the
    sweep executor to resolve per-spec defaults into cache keys)."""
    return _SCALE_PARAMS[scale]

# The paper sweeps epoch sizes of 300 / 1000 / 10000 dynamic stores over
# runs executing billions of instructions.  Our runs are shorter, so the
# sweep sizes scale with run length to keep the epochs-per-run and
# epochs-per-window ratios in the regime the paper studies (the ~1:3:30
# ratio between sizes is preserved).  See EXPERIMENTS.md.
BSP_EPOCH_SIZES = {
    Scale.TINY: (30, 100, 1000),
    Scale.SMALL: (50, 150, 1500),
    Scale.PAPER: (300, 1000, 10000),
}


def default_bsp_epoch_size(scale: Scale) -> int:
    """The 'large' (best-performing) epoch size at this scale, used for
    the Figure 14 design comparison."""
    return BSP_EPOCH_SIZES[scale][-1]


def _base_config(scale: Scale, **overrides) -> MachineConfig:
    if scale is Scale.TINY:
        return MachineConfig.tiny(**overrides)
    if scale is Scale.SMALL:
        return MachineConfig.small(**overrides)
    return MachineConfig.paper(**overrides)


def bep_machine_config(
    scale: Scale,
    design: BarrierDesign,
    flush_mode: FlushMode = FlushMode.CLWB,
    **overrides,
) -> MachineConfig:
    return _base_config(
        scale,
        persistency=PersistencyModel.BEP,
        barrier_design=design,
        flush_mode=flush_mode,
        **overrides,
    )


def bsp_machine_config(
    scale: Scale,
    design: BarrierDesign,
    epoch_stores: int = 10_000,
    undo_logging: bool = True,
    persistency: PersistencyModel = PersistencyModel.BSP,
    **overrides,
) -> MachineConfig:
    # Whole-application write streams spread across the full physical
    # address space, so per-controller bank-level parallelism sustains a
    # higher line rate than the hot-region microbenchmark traffic; the
    # BSP experiments therefore run with a lower write occupancy.  This
    # keeps the runs in the regime the paper evaluates (NVRAM bandwidth
    # adequate at large epochs -- LB++NOLOG ~1.16x -- with conflicts,
    # logging and checkpoints supplying the rest of the overhead).
    overrides.setdefault("mc_write_occupancy", 20)
    overrides.setdefault("mc_read_occupancy", 10)
    return _base_config(
        scale,
        persistency=persistency,
        barrier_design=design,
        bsp_epoch_stores=epoch_stores,
        undo_logging=undo_logging,
        **overrides,
    )


def run_bep(
    benchmark: str,
    design: BarrierDesign,
    scale: Scale = Scale.SMALL,
    seed: int = 1,
    transactions: Optional[int] = None,
    flush_mode: FlushMode = FlushMode.CLWB,
    workload_args: Optional[dict] = None,
    **config_overrides,
) -> RunResult:
    """One BEP microbenchmark run: per-thread structure instances.

    ``workload_args`` forwards extra constructor keywords to the
    benchmark factory (e.g. pingpong's ``conflict_rate``/``num_slots``).
    """
    params = _SCALE_PARAMS[scale]
    txns = transactions if transactions is not None else params.bep_transactions
    config = bep_machine_config(scale, design, flush_mode, **config_overrides)
    machine = Multicore(config)
    programs = [
        make_benchmark(
            benchmark, thread_id=tid, seed=seed, line_size=config.line_size,
            **(workload_args or {}),
        ).ops(txns)
        for tid in range(params.threads)
    ]
    result = machine.run(programs)
    if not result.finished:
        raise RuntimeError(f"BEP run {benchmark}/{design.value} did not finish")
    return result


def run_bsp(
    app: str,
    design: BarrierDesign,
    scale: Scale = Scale.SMALL,
    seed: int = 1,
    epoch_stores: int = 10_000,
    undo_logging: bool = True,
    persistency: PersistencyModel = PersistencyModel.BSP,
    mem_ops: Optional[int] = None,
    **config_overrides,
) -> RunResult:
    """One BSP (or NP/BSP-WT baseline) application run."""
    params = _SCALE_PARAMS[scale]
    ops = mem_ops if mem_ops is not None else params.bsp_mem_ops
    config = bsp_machine_config(
        scale, design, epoch_stores, undo_logging, persistency,
        **config_overrides,
    )
    machine = Multicore(config)
    programs = app_programs(
        app, params.threads, ops, seed=seed, line_size=config.line_size
    )
    result = machine.run(programs)
    if not result.finished:
        raise RuntimeError(f"BSP run {app}/{design.value} did not finish")
    return result
