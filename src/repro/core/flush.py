"""The epoch flush protocol for multi-banked LLCs (section 4.1, Figure 8).

A flush of epoch E proceeds in four steps, orchestrated by the per-core
arbiter sitting in the L1 controller:

1. The arbiter broadcasts *FlushEpoch* to every LLC bank and the L1
   flush engine writes back E's lines still in the L1 (*FlushLines*).
2. Each bank flushes its share of E's lines to its memory controller;
   the controller answers each durable write with a *PersistAck*.
3. A bank that has collected PersistAcks for all the lines it flushed
   sends a *BankAck* to the arbiter.  Every bank participates -- a bank
   with no lines of E acks immediately -- because in a banked LLC no
   bank may move to the next epoch until *all* banks are done
   (Figure 7's violation is exactly a bank acting on local knowledge).
4. When the arbiter holds BankAcks from all banks it broadcasts
   *PersistCMP*; only then is the epoch persisted and its successor
   eligible to flush.

Flushes are non-invalidating by default (clwb-like): lines stay cached
and merely become clean.  In CLFLUSH mode the flush also invalidates
every cached copy, which the paper measures as ~30% slower because the
working set must be refetched from NVRAM.

Implementation notes (the flush fast path; docs/simulation-model.md has
the full invariant list):

* One :class:`FlushOperation` is owned and reused by each arbiter --
  ``begin(epoch)`` resets its array-indexed per-bank state instead of
  allocating dicts and closures per flush.  The reset is O(banks
  touched), not O(banks): the pool maintains the invariant that
  schedule/position/outstanding slots are clean between flushes
  (restored for exactly the banks the previous flush used), and the
  state byte-array resets with one template copy.
* The per-bank issue schedule is precomputed in ``begin``: issue times,
  controller arrival times, and the FIFO service reservation for every
  (bank -> controller) run are all known up front, so each bank needs
  one self-rescheduling walker event instead of an event per line, and
  the memory controller needs one commit-walker per run instead of a
  closure per line.
* Cache-side transitions still happen at each line's exact issue time
  (via the walker), and NVRAM commits at each line's exact completion
  time (via the run walker) -- which is what keeps conflict
  classification and crash truncation identical to per-line issue.
* Broadcast legs of the handshake cost O(banks *holding lines*)
  events, not O(banks): the FlushEpoch legs to idle banks and the
  whole PersistCMP broadcast are *virtual*, and so is BankAck
  delivery when fault injection is off -- an ack's arrival time is
  fully determined at send time and nothing observes it in flight, so
  each send folds into the ack count and a running arrival *deadline*
  instead of becoming an event, and
  :meth:`FlushOperation._acks_complete` schedules PersistCMP at the
  deadline.  Idle banks (immediate acks) are pre-counted at ``begin``
  the same way.  Fault-injected runs keep per-ack events (drops and
  detours perturb arrival times), which is also what keeps the retry
  state machine observable.  (The engine's
  ``schedule_fanout``/``schedule_fanout_groups`` batch APIs remain
  for broadcasts that need real per-receiver delivery -- one resident
  queue entry regardless of receiver count -- but every broadcast leg
  of this handshake turned out to virtualise away entirely.)
* Handshake *message* counts (as opposed to simulator events) are
  accounted per flush into the core's digest-invisible
  :class:`~repro.sim.stats.HandshakeStats`; batching never changes a
  count, because messages are counted per logical hop, not per event.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.epoch import Epoch
from repro.sim.config import FanoutTopology, FlushMode, HandshakeProtocol
from repro.sim.faults import ProtocolError, backoff_cycles
from repro.sim.stats import HandshakeStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import Multicore

# Cycles between successive line writebacks issued by one flush engine
# (the engine walks its per-epoch set bitmap; section 4.3).
FLUSH_PIPELINE_INTERVAL = 4

# Per-bank handshake states, in strict forward order.  A bank that has
# left _ISSUING can never re-enter it within one flush, and _ACKED is
# terminal: the state machine makes a double BankAck structurally
# impossible (it raises instead of corrupting the ack count).
_IDLE = 0
_ISSUING = 1
_ISSUE_DONE = 2
_ACK_SENT = 3
_ACKED = 4

# Message-count sink for standalone FlushOperation construction (unit
# tests building the op without a full machine); real machines hand
# every flush op the per-core HandshakeStats instead.
_NULL_HANDSHAKE = HandshakeStats()


__all__ = ["FlushOperation", "ProtocolError", "FLUSH_PIPELINE_INTERVAL"]


class FlushOperation:
    """The flush-handshake engine of one arbiter (pooled, reusable).

    ``begin(epoch)`` starts one epoch flush; the object recycles itself
    when PersistCMP fires, so an arbiter drives all its flushes through
    a single instance.
    """

    __slots__ = (
        "_machine", "_on_done", "_engine", "_config", "_mesh", "_amap",
        "_stats", "_ideal", "_invalidate", "_num_banks", "_epoch",
        "_bank_outstanding", "_bank_state", "_bank_sched", "_bank_pos",
        "_bank_cbs", "_acks_received", "_line_shift", "_n_mcs",
        "_faults", "_arbiter", "_tree_mode", "_tree_parents",
        "_ack_cost", "_cmp_msgs",
        "_acked_template", "_used", "_delivery", "_bcast_delay",
        "_ack_deadline", "_rt_desc", "_rt_core", "_handshake_all",
        "_hs", "_flush_msgs",
    )

    def __init__(
        self,
        machine: "Multicore",
        on_done: Callable[[Epoch], None],
        arbiter=None,
    ) -> None:
        self._machine = machine
        self._on_done = on_done
        self._engine = machine.engine
        self._config = machine.config
        self._mesh = machine.mesh
        self._amap = machine.amap
        self._stats = machine.stats.domain("flush")
        # Fault injection (sim/faults.py): BankAck drops and detours.
        # ``arbiter`` owns the retry/drop/delay counters; it is None
        # only for standalone test construction, where faults are off.
        self._faults = getattr(machine, "faults", None)
        self._arbiter = arbiter
        self._ideal = self._config.ideal_flush_coordination
        self._invalidate = self._config.flush_mode is FlushMode.CLFLUSH
        self._tree_mode = (
            self._config.fanout_topology is FanoutTopology.TREE
        )
        # Parent bank per fanout-tree edge (TREE mode only): fault
        # extras on an edge delay the whole subtree hanging off it.
        self._tree_parents: Optional[Tuple[int, ...]] = None
        n = self._config.llc_banks
        self._num_banks = n
        # Message cost of one logical BankAck.  The arbiter protocol
        # delivers it to the initiating core only; the all-to-all
        # strawman announces it to every bank plus the initiator so
        # each can locally determine completion (n messages per ack,
        # no PersistCMP).  Timing is identical either way -- the
        # protocol knob changes accounting, not the event timeline.
        if self._config.handshake_protocol is HandshakeProtocol.ALL_TO_ALL:
            self._ack_cost = n
            self._cmp_msgs = 0
        else:
            self._ack_cost = 1
            self._cmp_msgs = n
        # Inlined address-map arithmetic for the begin() hot loop.
        self._line_shift = self._config.offset_bits
        self._n_mcs = self._config.num_memory_controllers
        self._epoch: Optional[Epoch] = None
        # Array-indexed per-bank accounting.  Invariant between
        # flushes: outstanding == 0, pos == 0, sched is None for every
        # bank (begin() relies on it; _persist_cmp restores it for the
        # banks the finished flush used).
        self._bank_outstanding = [0] * n
        self._bank_state = bytearray(n)
        # Idle banks' acks are virtual (counted at begin, arrival folded
        # into the deadline), so the template plants them directly in
        # the terminal state; begin() rewinds the flushing banks.
        self._acked_template = bytes([_ACKED]) * n
        # Per-bank issue schedule: [t_issue, line, write_run, run_pos,
        # in_l1] entries sorted by issue time, walked by _issue_bank.
        self._bank_sched: List[Optional[List[list]]] = [None] * n
        self._bank_pos = [0] * n
        # One PersistAck receiver per bank, built once for the pool's
        # lifetime (no per-line callback allocation).
        self._bank_cbs = [partial(self._line_persisted, b) for b in range(n)]
        self._acks_received = 0
        self._used: List[int] = []
        self._delivery = None
        self._bcast_delay = 0
        # Latest known BankAck arrival time (absolute) for the flush in
        # flight; _acks_complete honours it when scheduling PersistCMP.
        self._ack_deadline = 0
        # Banks in descending round-trip order for the initiating core
        # (built once -- the core is fixed per arbiter; _rt_core guards
        # the standalone-construction case).  The idle-ack deadline of
        # a flush is the first bank of this order that is not flushing.
        self._rt_desc: List[int] = []
        self._rt_core: Optional[int] = None
        self._handshake_all = getattr(machine, "handshake", None)
        self._hs: HandshakeStats = _NULL_HANDSHAKE
        self._flush_msgs = 0

    @property
    def epoch(self) -> Optional[Epoch]:
        return self._epoch

    # ------------------------------------------------------------------
    def _setup_core(self, core: int) -> None:
        """Per-flush latency/accounting context for the initiating core."""
        if self._handshake_all is not None:
            self._hs = self._handshake_all[core]
        if self._tree_mode:
            tree = self._mesh.flush_tree(core)
            self._delivery = tree.delivery
            self._bcast_delay = tree.bcast
            self._tree_parents = tree.parents
        else:
            self._delivery = self._mesh.c2b[core]
            self._bcast_delay = self._mesh.broadcast_from_core(core)
            self._tree_parents = None
        if self._rt_core != core:
            delivery = self._delivery
            self._rt_desc = sorted(
                range(self._num_banks), key=lambda b: (-delivery[b], b)
            )
            self._rt_core = core

    def _idle_ack_deadline(self, now: int) -> int:
        """Arrival time of the last idle bank's BankAck for this flush.

        The banks with nothing to flush (everyone not in ``_used``) ack
        as soon as FlushEpoch reaches them, so each arrives back at
        ``now + 2 * delivery[bank]`` -- a pure mesh round trip, under
        the FLAT topology the direct core<->bank distance and under
        TREE the fanout-tree path-sum (acks physically merge on their
        way back up the tree).  Those acks are *virtual*: nothing
        observes one in flight, their message cost is charged at
        ``begin``, and an idle round trip (at most a cross-chip mesh
        traversal) is always shorter than any flushing bank's ack,
        which carries at least one NVRAM write in its path.  Completion
        is ``max`` over ack arrivals either way, so pre-counting the
        idle acks and folding this deadline into ``_ack_deadline`` is
        exact -- and costs zero simulator events per flush.
        """
        if self._ideal:
            return now
        used = self._used
        delivery = self._delivery
        for bank in self._rt_desc:
            if bank not in used:
                return now + 2 * delivery[bank]
        return now

    # ------------------------------------------------------------------
    def _fault_delivery_extras(
        self, core: int, seq: int, banks
    ) -> Tuple[Dict[int, int], int]:
        """FlushEpoch-leg fault perturbations for this flush's banks.

        Each fanout edge (keyed by its child bank; under the flat star
        every bank is a root child) independently draws its FlushEpoch
        drop/duplication/link-delay faults.  Returns ``(extras, msgs)``:
        ``extras[bank]`` is the extra delivery latency of the bank's
        FlushEpoch copy -- under TREE the sum over every edge on the
        root-to-bank path, so a faulted edge delays its whole subtree --
        and ``msgs`` the extra FlushEpoch messages (retransmissions plus
        duplicates) to charge.  A dropped copy is retransmitted by the
        arbiter after ``flush_epoch_timeout`` with exponential backoff;
        the watchdog turns a chain past ``max_flush_epoch_retries`` into
        a :class:`ProtocolError`.
        """
        faults = self._faults
        cfg = faults.config
        mesh = self._mesh
        arb = self._arbiter
        parents = self._tree_parents
        edge_extra: Dict[int, int] = {}
        extras: Dict[int, int] = {}
        msgs = 0
        for bank in banks:
            total = 0
            b = bank
            while b >= 0:
                cached = edge_extra.get(b)
                if cached is None:
                    cached = 0
                    resends = faults.flush_epoch_resends(core, b, seq)
                    if resends:
                        if resends > cfg.max_flush_epoch_retries:
                            raise ProtocolError(
                                f"FlushEpoch retry chain for edge {b} of "
                                f"core {core} epoch seq {seq} exceeded "
                                f"bound {cfg.max_flush_epoch_retries} "
                                f"({resends} resends)"
                            )
                        cached += backoff_cycles(
                            cfg.flush_epoch_timeout, resends
                        )
                        msgs += resends
                        if arb is not None:
                            arb.note_fault("flush_epoch_drops", resends)
                    if faults.flush_epoch_dup(core, b, seq):
                        # The duplicate copy is ignored by the bank (the
                        # handshake is idempotent); only the message
                        # count observes it.
                        msgs += 1
                        if arb is not None:
                            arb.note_fault("flush_epoch_dups")
                    hops = faults.link_delay(core, b, seq)
                    if hops:
                        cached += mesh.detour_latency(hops)
                        if arb is not None:
                            arb.note_fault("flush_link_delays")
                    edge_extra[b] = cached
                total += cached
                b = parents[b] if parents is not None else -1
            if total:
                extras[bank] = total
        return extras, msgs

    # ------------------------------------------------------------------
    def begin(self, epoch: Epoch) -> None:
        if self._epoch is not None:
            raise RuntimeError(
                f"flush of {self._epoch} still in flight; cannot begin "
                f"{epoch}"
            )
        self._epoch = epoch
        epoch.flush_active = True
        machine = self._machine
        machine._note_epoch_flush(len(epoch.lines))

        core = epoch.core_id
        engine = self._engine
        now = engine.now
        ideal = self._ideal
        interval = FLUSH_PIPELINE_INTERVAL
        llc_latency = self._config.llc_latency
        self._setup_core(core)

        # Partition the epoch's lines by owning bank.
        num_banks = self._num_banks
        shift = self._line_shift
        epoch_lines = epoch.lines
        if len(epoch_lines) == 1:
            self._begin_single(epoch, next(iter(epoch_lines)))
            return
        per_bank: Dict[int, List[int]] = {}
        for line in sorted(epoch_lines):
            bank = (line >> shift) % num_banks
            bucket = per_bank.get(bank)
            if bucket is None:
                per_bank[bank] = [line]
            else:
                bucket.append(line)

        delivery = self._delivery
        b2mc = self._mesh.b2mc
        mcs = machine.mcs
        l1 = machine.l1s[core]
        # Bulk residency probe: one pass over the epoch's lines instead
        # of a lookup call per line in the per-bank loop below.
        l1_resident = l1.dirty_under(epoch_lines, epoch)
        seq = epoch.seq
        faults = self._faults
        fault_extras: Optional[Dict[int, int]] = None
        fe_msgs = 0
        if faults is not None and faults.flush_epoch_active:
            fault_extras, fe_msgs = self._fault_delivery_extras(
                core, seq, sorted(per_bank)
            )
        state = self._bank_state
        state[:] = self._acked_template
        sched = self._bank_sched
        used = self._used
        used.clear()
        n_mcs = self._n_mcs
        for bank in sorted(per_bank):
            lines = per_bank[bank]
            used.append(bank)
            hop = 0 if ideal else delivery[bank]
            if fault_extras is not None:
                hop += fault_extras.get(bank, 0)
            state[bank] = _ISSUING
            base = now + hop
            if len(lines) == 1:
                # One line on this bank -- the dominant shape on
                # contended runs.  Same schedule, same seq consumption,
                # minus the batching scaffolding.
                line = lines[0]
                in_l1 = line in l1_resident
                t = base + llc_latency if in_l1 else base
                mc_id = (line >> shift) % n_mcs
                arrival = t if ideal else t + b2mc[bank][mc_id]
                entry = [t, line, None, 0, in_l1]
                entry[2] = mcs[mc_id].write_single(
                    arrival, line, core, seq, "data", self._bank_cbs[bank]
                )
                sched[bank] = [entry]
                engine.schedule_call(t - now, self._issue_one, bank)
                continue
            entries: List[list] = []
            monotone = True
            prev = -1
            for i, line in enumerate(lines):
                t = base + i * interval
                in_l1 = line in l1_resident
                if in_l1:
                    # Step 1: FlushLines -- L1 writes the line back
                    # through the mesh to the bank before the bank can
                    # persist it.
                    t += llc_latency
                if t < prev:
                    monotone = False
                prev = t
                # The in_l1 bit lets the issue walker skip the L1 probe
                # for LLC-resident lines: the epoch is complete when its
                # flush begins, so a line can move L1 -> LLC mid-flush
                # (eviction writeback) but can never become newly dirty
                # in the L1 under this epoch.
                entries.append([t, line, None, 0, in_l1])
            # Stable sort by issue time: mixed L1/LLC residency can make
            # the raw sequence non-monotone, and both the walker and the
            # controller FIFO consume lines in issue order.  Uniform
            # residency (the common case) is already sorted.
            if not monotone:
                entries.sort(key=_issue_time)
            on_line = self._bank_cbs[bank]
            if self._n_mcs == 1:
                # Single controller: the whole bank schedule is one run.
                leg = 0 if ideal else b2mc[bank][0]
                arrivals = [entry[0] + leg for entry in entries]
                run_lines = [entry[1] for entry in entries]
                write_run = mcs[0].write_batch(
                    arrivals, run_lines, core, seq, "data", on_line
                )
                for run_pos, entry in enumerate(entries):
                    entry[2] = write_run
                    entry[3] = run_pos
            else:
                # Reserve the controller FIFO per (bank -> MC) run; each
                # line arrives at its issue time plus the bank->MC leg.
                runs: Dict[int, Tuple[List[int], List[int], List[list]]] = {}
                for entry in entries:
                    mc_id = (entry[1] >> shift) % n_mcs
                    run = runs.get(mc_id)
                    if run is None:
                        run = runs[mc_id] = ([], [], [])
                    run[0].append(entry[0] if ideal else
                                  entry[0] + b2mc[bank][mc_id])
                    run[1].append(entry[1])
                    run[2].append(entry)
                for mc_id, (arrivals, run_lines, run_entries) in runs.items():
                    write_run = mcs[mc_id].write_batch(
                        arrivals, run_lines, core, seq, "data", on_line
                    )
                    for run_pos, entry in enumerate(run_entries):
                        entry[2] = write_run
                        entry[3] = run_pos
            sched[bank] = entries
            engine.schedule_call(entries[0][0] - now, self._issue_bank, bank)

        # Message accounting (per logical hop, identical in both engine
        # modes and both topologies): FlushEpoch reaches every bank --
        # n messages whether delivered point-to-point or down the tree
        # (the tree has exactly n edges) -- and every idle bank answers
        # with one BankAck (costed at _ack_cost for the protocol knob).
        n_empty = num_banks - len(used)
        hs = self._hs
        hs.flush_epoch_msgs += num_banks
        hs.bank_ack_msgs += n_empty * self._ack_cost
        self._flush_msgs = num_banks + n_empty * self._ack_cost
        if fe_msgs:
            # Fault extras: FlushEpoch retransmissions and duplicates.
            hs.flush_epoch_msgs += fe_msgs
            self._flush_msgs += fe_msgs

        # Step 3 degenerate case: the idle banks ack the moment
        # FlushEpoch arrives.  Those acks are virtual -- pre-counted
        # here, latest arrival folded into the deadline (see
        # _idle_ack_deadline) -- so the idle broadcast costs no events.
        self._acks_received = n_empty
        self._ack_deadline = self._idle_ack_deadline(now) if n_empty else now
        if not used:
            # Every line left the epoch before begin (or the epoch was
            # empty): the handshake completes on idle acks alone.
            self._acks_complete()

    # ------------------------------------------------------------------
    def _begin_single(self, epoch: Epoch, line: int) -> None:
        """Specialised :meth:`begin` tail for a one-line epoch.

        Contended runs (a barrier per transaction) make single-line
        epochs the dominant flush shape, and the generic path's per-bank
        partition/monotonicity/batching scaffolding is pure overhead for
        them.  Every schedule happens at the same cycle, in the same
        order, consuming the same sequence numbers as the generic path
        would -- this is a fast reformulation of the same handshake, not
        a different one, and both engine modes take it.
        """
        machine = self._machine
        engine = self._engine
        now = engine.now
        ideal = self._ideal
        core = epoch.core_id
        num_banks = self._num_banks
        shift = self._line_shift
        bank = (line >> shift) % num_banks

        state = self._bank_state
        state[:] = self._acked_template
        state[bank] = _ISSUING
        used = self._used
        used.clear()
        used.append(bank)

        faults = self._faults
        fe_msgs = 0
        fe_extra = 0
        if faults is not None and faults.flush_epoch_active:
            fault_extras, fe_msgs = self._fault_delivery_extras(
                core, epoch.seq, (bank,)
            )
            fe_extra = fault_extras.get(bank, 0)

        t = now + (0 if ideal else self._delivery[bank]) + fe_extra
        l1_entry = machine.l1s[core].lookup(line)
        in_l1 = (
            l1_entry is not None
            and l1_entry.dirty
            and l1_entry.epoch is epoch
        )
        if in_l1:
            t += self._config.llc_latency
        mc_id = (line >> shift) % self._n_mcs
        arrival = t if ideal else t + self._mesh.b2mc[bank][mc_id]
        entry = [t, line, None, 0, in_l1]
        entry[2] = machine.mcs[mc_id].write_single(
            arrival, line, core, epoch.seq, "data", self._bank_cbs[bank]
        )
        self._bank_sched[bank] = [entry]
        engine.schedule_call(t - now, self._issue_one, bank)

        hs = self._hs
        hs.flush_epoch_msgs += num_banks
        hs.bank_ack_msgs += (num_banks - 1) * self._ack_cost
        self._flush_msgs = num_banks + (num_banks - 1) * self._ack_cost
        if fe_msgs:
            hs.flush_epoch_msgs += fe_msgs
            self._flush_msgs += fe_msgs

        # Idle acks, virtualised exactly as in the generic path.
        self._acks_received = num_banks - 1
        self._ack_deadline = (
            self._idle_ack_deadline(now) if num_banks > 1 else now
        )

    # ------------------------------------------------------------------
    def _issue_one(self, bank: int) -> None:
        """Single-line bank walk: :meth:`_issue_bank` minus the loop
        and position bookkeeping, for the dominant one-line-per-bank
        shape of contended runs.  Same transitions at the same cycle;
        ``_bank_pos`` stays at its between-flush value of zero.
        """
        entry = self._bank_sched[bank][0]
        epoch = self._epoch
        machine = self._machine
        line = entry[1]
        if machine._untag_line(epoch, line):
            centry = (machine.l1s[epoch.core_id].lookup(line)
                      if entry[4] else None)
            if centry is not None and centry.dirty and centry.epoch is epoch:
                level_core = epoch.core_id
            else:
                centry = machine.llc_banks[bank].lookup(line)
                if (centry is not None and centry.dirty
                        and centry.epoch is epoch):
                    level_core = None
                else:
                    centry = None
                    self._stats.bump("flush_lines_already_inflight")
            if centry is not None:
                epoch.inflight_writes += 1
                entry[2].mark_issued(0, machine.flush_line_transition(
                    centry, line, self._invalidate, level_core))
                self._bank_state[bank] = _ISSUE_DONE
                self._bank_outstanding[bank] = 1
                return
        self._bank_state[bank] = _ISSUE_DONE
        self._schedule_bank_ack(bank)

    def _issue_bank(self, bank: int) -> None:
        """Walk the bank's issue schedule at the current cycle.

        Performs the cache-side flush transition for every line whose
        issue time is now, then re-schedules itself for the next issue
        time (one in-flight event per bank, total, instead of one per
        line).
        """
        entries = self._bank_sched[bank]
        pos = self._bank_pos[bank]
        n = len(entries)
        engine = self._engine
        now = engine.now
        epoch = self._epoch
        machine = self._machine
        untag = machine._untag_line
        stats = self._stats
        invalidate = self._invalidate
        # locate_epoch_line inlined: the walker runs once per flushed
        # line, and the L1/LLC handles are loop-invariant.
        core = epoch.core_id
        l1 = machine.l1s[core]
        bank_cache = machine.llc_banks[bank]
        issued = 0
        while pos < n:
            entry = entries[pos]
            if entry[0] != now:
                break
            pos += 1
            line = entry[1]
            # _untag_line doubles as the membership test: False means
            # the line already left the epoch (evicted and persisted via
            # the eviction path while this flush was queued).
            if not untag(epoch, line):
                continue
            centry = l1.lookup(line) if entry[4] else None
            if centry is not None and centry.dirty and centry.epoch is epoch:
                level_core = core
            else:
                centry = bank_cache.lookup(line)
                if (
                    centry is not None
                    and centry.dirty
                    and centry.epoch is epoch
                ):
                    level_core = None
                else:
                    # The line left the caches since the epoch recorded
                    # it -- its NVRAM write is in flight via the
                    # eviction path.
                    stats.bump("flush_lines_already_inflight")
                    continue
            epoch.inflight_writes += 1
            issued += 1
            entry[2].mark_issued(
                entry[3],
                machine.flush_line_transition(
                    centry, line, invalidate, level_core
                ),
            )
        self._bank_pos[bank] = pos
        if issued:
            self._bank_outstanding[bank] += issued
        if pos < n:
            engine.schedule_call(entries[pos][0] - now,
                                 self._issue_bank, bank)
            return
        self._bank_state[bank] = _ISSUE_DONE
        if self._bank_outstanding[bank] == 0:
            self._schedule_bank_ack(bank)

    def _line_persisted(self, bank: int, _time: int) -> None:
        """PersistAck: one of the bank's lines committed to NVRAM.

        The flushing epoch's ``flush_active`` flag stays set until
        PersistCMP, so ``maybe_persist`` would be a guaranteed no-op
        here -- the persist check happens once, from the arbiter's
        ``_flush_done``.
        """
        self._hs.persist_ack_msgs += 1
        self._flush_msgs += 1
        self._epoch.inflight_writes -= 1
        remaining = self._bank_outstanding[bank] - 1
        self._bank_outstanding[bank] = remaining
        if remaining == 0 and self._bank_state[bank] == _ISSUE_DONE:
            self._schedule_bank_ack(bank)

    def _ack_delay(self, bank: int) -> int:
        if self._ideal:
            return 0
        delivery = self._delivery
        if delivery is None:
            # Standalone poking (tests drive the ack path without a
            # begin()); real flushes always pass through _setup_core.
            delivery = self._mesh.c2b[self._epoch.core_id]
        return delivery[bank]

    def _schedule_bank_ack(self, bank: int) -> None:
        """Send the bank's BankAck (step 3), exactly once per flush.

        Without fault injection the transmission is virtual: the
        arrival time is ``now + delay`` with certainty and no simulator
        state observes the ack in flight, so delivery folds into the
        ack count and the arrival deadline without consuming an event
        -- :meth:`_acks_complete` replays the latest arrival when it
        schedules PersistCMP.  Under fault injection arrival times
        depend on drop/detour draws, so the ack travels as a real event
        through :meth:`_send_bank_ack`.
        """
        if self._bank_state[bank] >= _ACK_SENT:
            return
        delay = self._ack_delay(bank)
        if self._faults is not None:
            self._bank_state[bank] = _ACK_SENT
            self._send_bank_ack(bank, delay, 0)
            return
        self._bank_state[bank] = _ACKED
        self._hs.bank_ack_msgs += self._ack_cost
        self._flush_msgs += self._ack_cost
        arrival = self._engine.now + delay
        if arrival > self._ack_deadline:
            self._ack_deadline = arrival
        self._acks_received += 1
        if self._acks_received == self._num_banks:
            self._acks_complete()

    def _send_bank_ack(self, bank: int, delay: int, attempt: int) -> None:
        """Fault-aware BankAck transmission with bounded retry.

        A dropped ack arms a timeout at the nominal delivery time plus
        ``ack_timeout``; the timeout resends with the attempt counter
        bumped.  The injector guarantees the attempt at the retry bound
        is delivered, so the chain is finite.  At most one transmission
        or timeout per bank is ever outstanding (the _ACK_SENT guard in
        :meth:`_schedule_bank_ack` serialises the chain), which is what
        lets :meth:`_ack_timeout` treat any other state as a
        :class:`ProtocolError`.

        Every transmission counts toward the message totals -- dropped
        acks were sent; the network lost them.
        """
        faults = self._faults
        if attempt > faults.config.max_ack_retries:
            # Simulated-time watchdog: the injector promises the
            # transmission at the bound is delivered, so a chain this
            # long means the retry machinery itself is broken.
            raise ProtocolError(
                f"BankAck retry chain for bank {bank} exceeded bound "
                f"{faults.config.max_ack_retries} (attempt {attempt})"
            )
        self._hs.bank_ack_msgs += self._ack_cost
        self._flush_msgs += self._ack_cost
        epoch = self._epoch
        core = epoch.core_id
        seq = epoch.seq
        if faults.drop_bank_ack(core, bank, seq, attempt):
            if self._arbiter is not None:
                self._arbiter.note_ack_drop()
            self._engine.schedule_call(
                delay + faults.config.ack_timeout,
                self._ack_timeout, bank, attempt,
            )
            return
        detour = faults.bank_ack_detour(core, bank, seq, attempt)
        if detour:
            if self._arbiter is not None:
                self._arbiter.note_ack_delay()
            delay += self._mesh.detour_latency(detour)
        self._engine.schedule_call(delay, self._bank_ack, bank)

    def _ack_timeout(self, bank: int, attempt: int) -> None:
        """The bank concluded its BankAck was lost; resend it."""
        if self._epoch is None or self._bank_state[bank] != _ACK_SENT:
            raise ProtocolError(
                f"ack-retry timeout for bank {bank} fired outside its "
                f"flush (state {self._bank_state[bank]}, "
                f"epoch {self._epoch})"
            )
        if self._arbiter is not None:
            self._arbiter.note_ack_retry()
        self._send_bank_ack(bank, self._ack_delay(bank), attempt + 1)

    def _bank_ack(self, bank: int) -> None:
        """A BankAck arrival event (fault-injected transmissions only;
        fault-free acks deliver virtually in :meth:`_schedule_bank_ack`)."""
        if self._bank_state[bank] == _ACKED:
            raise ProtocolError(
                f"bank {bank} sent a second BankAck for {self._epoch}"
            )
        self._bank_state[bank] = _ACKED
        self._acks_received += 1
        if self._acks_received == self._num_banks:
            self._acks_complete()

    def _acks_complete(self) -> None:
        # Step 4: PersistCMP broadcast (zero messages under all-to-all,
        # where every bank saw every ack and completion is determined
        # locally; the completion event itself fires identically).  The
        # last ack may be virtual -- its arrival recorded only in the
        # deadline -- so the broadcast leaves when the deadline passes,
        # not necessarily at the cycle this ran.
        self._hs.persist_cmp_msgs += self._cmp_msgs
        self._flush_msgs += self._cmp_msgs
        faults = self._faults
        extra = 0
        if (
            faults is not None
            and faults.persist_cmp_active
            and self._cmp_msgs
        ):
            extra = self._persist_cmp_fault_extra()
        engine = self._engine
        lag = self._ack_deadline - engine.now
        if lag < 0:
            lag = 0
        bcast = 0 if self._ideal else self._bcast_delay
        engine.schedule_call(lag + bcast + extra, self._persist_cmp)

    def _persist_cmp_fault_extra(self) -> int:
        """PersistCMP-loss fold: retransmission cost of the completion
        broadcast.

        Each bank's copy of PersistCMP independently draws its loss
        chain; a lost copy is retransmitted after
        ``persist_cmp_timeout`` with exponential backoff.  The epoch is
        complete only when every bank heard the broadcast, so the
        completion event slips by the *worst* per-bank chain; every
        retransmission is charged as a message.  Bounded by
        ``max_persist_cmp_retries`` with the watchdog raising
        :class:`ProtocolError` past it.
        """
        faults = self._faults
        cfg = faults.config
        epoch = self._epoch
        core = epoch.core_id
        seq = epoch.seq
        worst = 0
        total = 0
        for bank in range(self._num_banks):
            resends = faults.persist_cmp_resends(core, bank, seq)
            if not resends:
                continue
            if resends > cfg.max_persist_cmp_retries:
                raise ProtocolError(
                    f"PersistCMP retry chain for bank {bank} of core "
                    f"{core} epoch seq {seq} exceeded bound "
                    f"{cfg.max_persist_cmp_retries} ({resends} resends)"
                )
            total += resends
            stall = backoff_cycles(cfg.persist_cmp_timeout, resends)
            if stall > worst:
                worst = stall
        if total:
            self._hs.persist_cmp_msgs += total
            self._flush_msgs += total
            if self._arbiter is not None:
                self._arbiter.note_fault("flush_cmp_drops", total)
        return worst

    def _persist_cmp(self) -> None:
        epoch = self._epoch
        epoch.flush_active = False
        if epoch.lines:
            raise RuntimeError(f"{epoch} finished flush with lines remaining")
        self._hs.note_flush(self._flush_msgs)
        # Recycle before notifying: on_done re-pumps the arbiter, which
        # may immediately begin() the next flush on this same object.
        # Only the banks this flush actually used need their slots
        # restored (outstanding is already back to zero by accounting).
        self._epoch = None
        sched = self._bank_sched
        pos = self._bank_pos
        for bank in self._used:
            sched[bank] = None
            pos[bank] = 0
        self._on_done(epoch)


def _issue_time(entry: list) -> int:
    return entry[0]
