"""The epoch flush protocol for multi-banked LLCs (section 4.1, Figure 8).

A flush of epoch E proceeds in four steps, orchestrated by the per-core
arbiter sitting in the L1 controller:

1. The arbiter broadcasts *FlushEpoch* to every LLC bank and the L1
   flush engine writes back E's lines still in the L1 (*FlushLines*).
2. Each bank flushes its share of E's lines to its memory controller;
   the controller answers each durable write with a *PersistAck*.
3. A bank that has collected PersistAcks for all the lines it flushed
   sends a *BankAck* to the arbiter.  Every bank participates -- a bank
   with no lines of E acks immediately -- because in a banked LLC no
   bank may move to the next epoch until *all* banks are done
   (Figure 7's violation is exactly a bank acting on local knowledge).
4. When the arbiter holds BankAcks from all banks it broadcasts
   *PersistCMP*; only then is the epoch persisted and its successor
   eligible to flush.

Flushes are non-invalidating by default (clwb-like): lines stay cached
and merely become clean.  In CLFLUSH mode the flush also invalidates
every cached copy, which the paper measures as ~30% slower because the
working set must be refetched from NVRAM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.core.epoch import Epoch
from repro.sim.config import FlushMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import Multicore

# Cycles between successive line writebacks issued by one flush engine
# (the engine walks its per-epoch set bitmap; section 4.3).
FLUSH_PIPELINE_INTERVAL = 4


class FlushOperation:
    """One epoch flush handshake in flight."""

    def __init__(
        self,
        machine: "Multicore",
        epoch: Epoch,
        on_done: Callable[[Epoch], None],
    ) -> None:
        self._machine = machine
        self._epoch = epoch
        self._on_done = on_done
        self._engine = machine.engine
        self._config = machine.config
        self._mesh = machine.mesh
        self._stats = machine.stats.domain("flush")
        self._ideal = self._config.ideal_flush_coordination
        self._fast = machine.engine.fast
        # Per-bank accounting for BankAcks.
        self._bank_outstanding: Dict[int, int] = {}
        self._bank_issue_done: Dict[int, bool] = {}
        self._bank_acked: Dict[int, bool] = {}
        self._acks_received = 0
        self._num_banks = self._config.llc_banks

    # ------------------------------------------------------------------
    def start(self) -> None:
        epoch = self._epoch
        epoch.flush_active = True
        self._machine._note_epoch_flush(len(epoch.lines))

        core = epoch.core_id
        now = self._engine.now

        # Partition the epoch's lines by owning bank and current level.
        per_bank: Dict[int, List[Tuple[int, bool]]] = {
            b: [] for b in range(self._num_banks)
        }
        for line in sorted(epoch.lines):
            in_l1 = self._machine.line_in_l1(core, line, epoch)
            per_bank[self._machine.amap.bank_of(line)].append((line, in_l1))

        c2b_row = self._mesh.c2b[core] if self._fast else None
        for bank, lines in per_bank.items():
            self._bank_outstanding[bank] = 0
            self._bank_acked[bank] = False
            if self._ideal:
                hop = 0
            elif c2b_row is not None:
                hop = c2b_row[bank]
            else:
                hop = self._mesh.core_to_bank(core, bank)
            if not lines:
                # Step 3 degenerate case: nothing to flush in this bank;
                # it acks as soon as FlushEpoch arrives.
                self._bank_issue_done[bank] = True
                self._engine.schedule_call(2 * hop, self._bank_ack, bank)
                continue
            self._bank_issue_done[bank] = False
            flush_epoch_arrival = now + hop
            for i, (line, in_l1) in enumerate(lines):
                if in_l1:
                    # Step 1: FlushLines -- L1 writes the line back through
                    # the mesh to the bank before the bank can persist it.
                    t = (
                        now
                        + i * FLUSH_PIPELINE_INTERVAL
                        + hop
                        + self._config.llc_latency
                    )
                else:
                    t = flush_epoch_arrival + i * FLUSH_PIPELINE_INTERVAL
                last = i == len(lines) - 1
                self._engine.schedule_call(t - now, self._issue_line,
                                           bank, line, last)


    # ------------------------------------------------------------------
    def _issue_line(self, bank: int, line: int, last_for_bank: bool) -> None:
        epoch = self._epoch
        if line in epoch.lines:
            entry, level_core = self._machine.locate_epoch_line(epoch, line)
            if entry is not None:
                self._bank_outstanding[bank] += 1
                if self._ideal:
                    extra = 0
                elif self._fast:
                    extra = self._mesh.b2mc[bank][
                        self._machine.amap.mc_of(line)]
                else:
                    extra = self._mesh.bank_to_mc(
                        bank, self._machine.amap.mc_of(line)
                    )
                self._machine.persist_line(
                    entry,
                    epoch,
                    kind="data",
                    extra_delay=extra,
                    on_ack=lambda t, b=bank: self._line_acked(b),
                    invalidate=self._config.flush_mode is FlushMode.CLFLUSH,
                    from_l1_core=level_core,
                )
            else:
                # The line left the caches since the epoch recorded it --
                # its NVRAM write is in flight via the eviction path.
                epoch.lines.discard(line)
                self._stats.bump("flush_lines_already_inflight")
        if last_for_bank:
            self._bank_issue_done[bank] = True
            if self._bank_outstanding[bank] == 0:
                self._schedule_bank_ack(bank)

    def _line_acked(self, bank: int) -> None:
        self._bank_outstanding[bank] -= 1
        if self._bank_outstanding[bank] == 0 and self._bank_issue_done[bank]:
            self._schedule_bank_ack(bank)

    def _schedule_bank_ack(self, bank: int) -> None:
        if self._bank_acked[bank]:
            return
        self._bank_acked[bank] = True
        if self._ideal:
            delay = 0
        elif self._fast:
            delay = self._mesh.c2b[self._epoch.core_id][bank]
        else:
            delay = self._mesh.core_to_bank(self._epoch.core_id, bank)
        self._engine.schedule_call(delay, self._bank_ack, bank)

    def _bank_ack(self, bank: int) -> None:
        # Degenerate-bank path may arrive here directly; mark it acked.
        self._bank_acked[bank] = True
        self._acks_received += 1
        if self._acks_received == self._num_banks:
            # Step 4: PersistCMP broadcast.
            bcast = (0 if self._ideal else
                     self._mesh.broadcast_from_core(self._epoch.core_id))
            self._engine.schedule_call(bcast, self._persist_cmp)

    def _persist_cmp(self) -> None:
        epoch = self._epoch
        epoch.flush_active = False
        if epoch.lines:
            raise RuntimeError(f"{epoch} finished flush with lines remaining")
        self._on_done(epoch)
