"""Inter-thread Dependence Tracking (section 3.1).

On an inter-thread conflict, instead of flushing the source epoch in the
critical path, IDT records a (source epoch -> dependent epoch) ordering
edge and lets the request complete.  The arbiter enforces the edge
offline: the dependent epoch will not flush until the source persists,
and the source's arbiter informs the dependent's when it does.

Hardware provides a fixed number of dependence/inform register pairs per
in-flight epoch (4 in the paper, section 4.3).  When either side runs out
of registers, the conflict falls back to the LB behaviour: an online
flush of the source epoch chain.  Because epochs of one strand of a
source core persist in order, an edge to epoch *(c, e)* subsumes any
edge to an earlier epoch of the same core *and strand* -- the tracker
exploits this to keep at most one register per (dependent epoch, source
core, source strand) triple, the compression a CoreID-indexed register
file gives hardware (strands of a core persist independently, so a
newer epoch of another strand implies nothing about an older source).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.engine import fast_paths_enabled
from repro.sim.stats import StatDomain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.epoch import Epoch


class IDTracker:
    """Machine-wide front end for recording IDT edges."""

    def __init__(self, registers_per_epoch: int, stats: StatDomain) -> None:
        if registers_per_epoch < 1:
            raise ValueError("need at least one IDT register pair per epoch")
        self._registers = registers_per_epoch
        self._stats = stats
        self._fast = fast_paths_enabled()

    def try_record(self, source: "Epoch", dependent: "Epoch") -> bool:
        """Attempt to record ``source`` happens-before ``dependent``.

        Returns True when the edge is tracked (or was unnecessary), False
        when register pressure forces the caller to fall back to an
        online flush.
        """
        if source.persisted:
            return True
        if self._fast and dependent.idt_last is source:
            # Interned edge (fast mode): the immediately preceding
            # record on this dependent was the same source, so the edge
            # is already tracked or subsumed and ``all_sources`` already
            # logged the pair.  Contended sharing repeats one epoch pair
            # per touched line; this skips the re-scan.  Every path that
            # sets the memo bumps no counters on re-entry, so fast and
            # reference stat counters stay identical.
            return True
        if source.core_id == dependent.core_id:
            raise ValueError("IDT edges are inter-thread only")
        dependent.all_sources.add(source.key)
        if source in dependent.idt_sources:
            dependent.idt_last = source
            return True

        # Subsumption: an existing edge to a *newer* epoch of the same
        # source core and strand already implies this one; an edge to an
        # *older* epoch of that (core, strand) can be upgraded in place.
        # The strand qualifier matters: epochs of *different* strands of
        # one core persist independently, so an edge to a newer epoch of
        # another strand implies nothing about this source.
        superseded: Optional[Epoch] = None
        for existing in dependent.idt_sources:
            if (existing.core_id != source.core_id
                    or existing.strand != source.strand):
                continue
            if existing.seq >= source.seq:
                dependent.idt_last = source
                return True
            superseded = existing
            break
        if superseded is not None:
            dependent.idt_sources.discard(superseded)
            superseded.idt_dependents.discard(dependent)

        if (
            len(dependent.idt_sources) >= self._registers
            or len(source.idt_dependents) >= self._registers
        ):
            self._stats.bump("idt_register_overflow")
            if superseded is not None:
                # Restore the edge we tentatively removed.
                dependent.idt_sources.add(superseded)
                superseded.idt_dependents.add(dependent)
            return False

        dependent.idt_sources.add(source)
        source.idt_dependents.add(dependent)
        dependent.idt_last = source
        self._stats.bump("idt_edges")
        return True
