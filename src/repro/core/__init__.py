"""The paper's primary contribution: efficient persist barriers.

* :mod:`repro.core.epoch`    -- epoch lifecycle, per-core epoch managers,
  epoch splitting (the deadlock-avoidance mechanism of section 3.3).
* :mod:`repro.core.idt`      -- inter-thread dependence tracking
  (section 3.1): dependence/inform registers and edge bookkeeping.
* :mod:`repro.core.arbiter`  -- the per-core epoch arbiter that orders
  flushes (program order + IDT edges) and serves online flush requests.
* :mod:`repro.core.flush`    -- the multi-banked epoch flush handshake of
  Figure 8 (FlushEpoch / FlushLines / PersistAck / BankAck / PersistCMP),
  with invalidating (clflush) and non-invalidating (clwb) modes.
* :mod:`repro.core.undo_log` -- hardware undo logging for BSP epoch
  atomicity (section 5.2.1).
* :mod:`repro.core.checkpoint` -- register-state checkpointing per BSP
  epoch (section 5.2).
"""

from repro.core.epoch import Epoch, EpochManager, EpochStatus
from repro.core.idt import IDTracker

__all__ = ["Epoch", "EpochManager", "EpochStatus", "IDTracker"]
