"""The per-core epoch arbiter (sections 4.1 and 4.2).

Each core's L1 controller hosts an arbiter that orchestrates the flushing
of that core's epochs.  The arbiter:

* flushes epochs strictly in sequence order, one at a time;
* will not start flushing an epoch until all its happens-before
  predecessors (older same-core epochs, IDT source epochs on other
  cores) have persisted, its write-buffer stores have drained
  (EpochCMP), and -- for BSP -- its undo-log entries are durable;
* serves *online* flush requests (epoch conflicts: the requester is
  stalled in the critical path) and *offline* requests (proactive
  flushing, natural drain at the end of a run) through the same pump,
  differing only in whether demand is propagated to IDT source arbiters
  and whether the flushed epochs are accounted as conflict-flushed
  (Figure 12's metric).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.epoch import Epoch, EpochManager
from repro.core.flush import FlushOperation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import Multicore


class Arbiter:
    """Per-core flush orchestrator."""

    def __init__(self, core_id: int, machine: "Multicore",
                 manager: EpochManager) -> None:
        self.core_id = core_id
        self._machine = machine
        self._manager = manager
        self._stats = machine.stats.domain(f"arbiter{core_id}")
        # Highest epoch seq requested to flush, per strand (strands are
        # mutually unordered, so a conflict on one never forces another).
        self._flush_horizon: dict = {}
        # Highest epoch seq with an *online* waiter, per strand; demand
        # up to this seq propagates to IDT source arbiters.
        self._online_horizon: dict = {}
        # The flush-handshake engine is pooled: one reusable operation
        # per arbiter, begun per epoch.  ``active`` points at it while a
        # flush is in flight.
        self._flush_op = FlushOperation(machine, self._flush_done,
                                        arbiter=self)
        self.active: Optional[FlushOperation] = None
        # Reusable strand-seen scratch set for the pump's candidate walk
        # (the pump runs after every flush completion and unblock event,
        # and iterates a window of up to eight epochs each time).
        self._seen: set = set()
        self._fast = machine.engine.fast
        # Fault-injection accounting for the BankAck retry path (only
        # bumped when faults are enabled): drops observed, timeouts that
        # resent, and acks that took a detour.  Hot-counter idiom: plain
        # attributes in fast mode, merged by flush_hot_stats().
        self._n_ack_drops = 0
        self._n_ack_retries = 0
        self._n_ack_delays = 0
        # Generic fault-leg counters (FlushEpoch drops/dups, link
        # delays, PersistCMP drops, ...): keyed by stat name, merged by
        # flush_hot_stats() exactly like the dedicated ack counters.
        self._n_faults: dict = {}

    # ------------------------------------------------------------------
    # Fault-injection accounting (called by the flush operation)
    # ------------------------------------------------------------------
    def note_ack_drop(self) -> None:
        if self._fast:
            self._n_ack_drops += 1
        else:
            self._stats.bump("flush_ack_drops")

    def note_ack_retry(self) -> None:
        if self._fast:
            self._n_ack_retries += 1
        else:
            self._stats.bump("flush_ack_retries")

    def note_ack_delay(self) -> None:
        if self._fast:
            self._n_ack_delays += 1
        else:
            self._stats.bump("flush_ack_delays")

    def note_fault(self, key: str, count: int = 1) -> None:
        """Record ``count`` occurrences of fault leg ``key`` (a stat
        name like ``flush_epoch_drops``)."""
        if self._fast:
            self._n_faults[key] = self._n_faults.get(key, 0) + count
        else:
            self._stats.bump(key, count)

    def flush_hot_stats(self) -> None:
        """Merge the attribute-held ack-fault counters into the stat
        domain (idempotent; the machine calls this at run end)."""
        if self._n_ack_drops:
            self._stats.bump("flush_ack_drops", self._n_ack_drops)
            self._n_ack_drops = 0
        if self._n_ack_retries:
            self._stats.bump("flush_ack_retries", self._n_ack_retries)
            self._n_ack_retries = 0
        if self._n_ack_delays:
            self._stats.bump("flush_ack_delays", self._n_ack_delays)
            self._n_ack_delays = 0
        if self._n_faults:
            for key, count in sorted(self._n_faults.items()):
                self._stats.bump(key, count)
            self._n_faults.clear()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request_flush_upto(
        self, epoch: Epoch, online: bool, mark_conflict: Optional[bool] = None
    ) -> None:
        """Ask for every epoch up to ``epoch`` (inclusive) to be flushed.

        ``online`` requests come from conflicts: a memory request is
        stalled until ``epoch`` persists, so demand must propagate through
        IDT edges.  ``mark_conflict`` controls Figure 12 accounting and
        defaults to ``online`` (EP-model barrier stalls pass False: they
        are online but are not *conflicts*).
        """
        if epoch.persisted:
            return
        if mark_conflict is None:
            mark_conflict = online
        strand = epoch.strand
        if mark_conflict:
            # Figure 12 accounting: every epoch that a conflict forces to
            # persist (or catches still persisting) counts as conflict-
            # flushed; only epochs that completed their persist before any
            # conflict arrived count as clean offline persists.
            # (unpersisted_upto inlined: no list allocation per request.)
            seq = epoch.seq
            for e in self._manager.window:
                if e.seq <= seq and e.strand == strand:
                    e.conflict_flush = True
        # Pump only when the demand is *new* (either horizon advanced).
        # A request that changes nothing cannot change the pump's
        # outcome -- every blocked candidate has a wake-up callback
        # registered (completion, source persist, log ack) -- and
        # skipping it is what makes the cross-arbiter online demand
        # propagation in _flushable terminate: two cores whose strand
        # heads depend on each other would otherwise re-request each
        # other's sources with unchanged horizons forever.
        advanced = False
        if epoch.seq > self._flush_horizon.get(strand, -1):
            self._flush_horizon[strand] = epoch.seq
            advanced = True
        if online and epoch.seq > self._online_horizon.get(strand, -1):
            self._online_horizon[strand] = epoch.seq
            advanced = True
        if advanced:
            self.pump()

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Start the next eligible flush, if any.

        Idempotent and cheap; safe to call from any event that might have
        unblocked the head epoch.
        """
        if self.active is not None:
            return
        manager = self._manager
        window = manager.window
        if self._fast and not manager.multi_strand:
            # Single strand (the common case): the only candidate is the
            # window head -- the walk below would visit it first and skip
            # every later epoch as a seen-strand duplicate.
            if not window:
                return
            candidate = window[0]
            if candidate.seq > self._flush_horizon.get(
                candidate.strand, -1
            ):
                return
            head = self._flushable(candidate)
        else:
            # The candidate walk (EpochManager.flush_candidates) is
            # inlined: each strand's head epoch that is within its flush
            # horizon, in window order, horizon read straight off the
            # dict.
            horizon = self._flush_horizon.get
            seen = self._seen
            seen.clear()
            head = None
            for candidate in window:
                strand = candidate.strand
                if strand in seen:
                    continue
                seen.add(strand)
                if candidate.seq > horizon(strand, -1):
                    continue
                head = self._flushable(candidate)
                if head is not None:
                    break
        if head is None:
            return
        online = head.seq <= self._online_horizon.get(head.strand, -1)
        head.flush_started = True
        self._stats.bump("flushes_online" if online else "flushes_offline")
        if self._machine.tracer:
            self._machine.tracer.record(
                self._machine.engine.now, "flush_start", self.core_id,
                epoch=str(head), online=online, lines=len(head.lines),
            )
        self.active = self._flush_op
        self._flush_op.begin(head)

    def _flushable(self, candidate: Epoch) -> Optional[Epoch]:
        """``candidate`` if it can start flushing right now, else None.

        Registers the re-pump callbacks (barrier completion, IDT source
        persists) and propagates online demand through IDT edges as a
        side effect, exactly as the historical inline walk did.
        """
        if candidate.ongoing:
            # The horizon can only cover an ongoing epoch transiently
            # (e.g. requests raced with a split); wait for its barrier.
            # The completion callback is the wake-up -- duplicate
            # requests no longer pump unconditionally.
            candidate.on_complete(self.pump)
            return None
        if not candidate.complete:
            # EpochCMP not yet received: stores still draining from
            # the write buffer.  FIFO drain guarantees completion soon.
            candidate.on_complete(self.pump)
            return None
        online = candidate.seq <= self._online_horizon.get(
            candidate.strand, -1
        )
        blocked = False
        for source in (list(candidate.idt_sources)
                       if candidate.idt_sources else ()):
            if source.persisted:
                continue
            blocked = True
            source.on_persist(self.pump)
            if online:
                # Propagate critical-path demand through the IDT edge.
                self._machine.arbiters[source.core_id].request_flush_upto(
                    source, online=True, mark_conflict=False
                )
        if blocked:
            self._stats.bump("flush_blocked_on_source")
            return None
        if candidate.outstanding_log_writes:
            # Undo-log entries must be durable before any data line of
            # the epoch persists; the log-ack callback re-pumps.
            self._stats.bump("flush_blocked_on_log")
            return None
        return candidate

    def _flush_done(self, epoch: Epoch) -> None:
        self.active = None
        self._machine.maybe_persist(epoch)
        self.pump()

    # ------------------------------------------------------------------
    def drain_all(self, online: bool = False) -> None:
        """Request a flush of every currently unpersisted epoch.

        Used by the machine's end-of-run drain to obtain the durable
        completion time, and by tests.
        """
        self._manager.close_all_strands()
        # Request the newest epoch of every strand (strands flush
        # independently); still-ongoing empty epochs have no work.
        newest: dict = {}
        for epoch in self._manager.window:
            if not epoch.ongoing:
                newest[epoch.strand] = epoch
        for epoch in newest.values():
            self.request_flush_upto(epoch, online=online,
                                    mark_conflict=False)
