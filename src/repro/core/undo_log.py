"""Hardware undo logging for BSP epoch atomicity (section 5.2.1).

BSP requires each epoch to update persistent memory atomically, but the
hardware's atomic unit is a cache line.  Undo logging bridges the gap:
before a cache line is modified *for the first time in an epoch*, its old
value is written to a per-core log region in NVRAM.  After a crash,
partially persisted epochs are rolled back by replaying their log
entries.

First-modification detection uses the cache line's epoch tag, exactly as
the paper describes: if the line's tag already names the current epoch,
it has been logged (or freshly written) in this epoch and no log entry is
needed.

Log writes are issued asynchronously at store time -- they are not in the
critical path -- but an epoch may not begin flushing its data lines until
all of its log entries are durable (otherwise a crash could find new data
without the means to undo it).  The arbiter enforces that via
``Epoch.outstanding_log_writes``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.config import MachineConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.epoch import Epoch
    from repro.system import Multicore

# Each core owns a slice of the log region this many bytes long; entries
# are written round-robin within the slice (a circular log -- entries for
# persisted epochs are dead and may be overwritten).
_PER_CORE_LOG_BYTES = 1 << 20


class UndoLog:
    """Per-core hardware undo log."""

    def __init__(self, core_id: int, machine: "Multicore") -> None:
        self._core_id = core_id
        self._machine = machine
        config: MachineConfig = machine.config
        self._base = config.log_region_base + core_id * _PER_CORE_LOG_BYTES
        self._line_size = config.line_size
        self._slots = _PER_CORE_LOG_BYTES // config.line_size
        self._next_slot = 0
        self._stats = machine.stats.domain(f"undolog{core_id}")

    def record(
        self,
        epoch: "Epoch",
        data_line: int,
        old_values: Optional[Dict[int, object]],
    ) -> None:
        """Write an undo entry for the first modification of ``data_line``
        in ``epoch``.  Asynchronous; the epoch tracks the outstanding ack.
        """
        log_line = self._base + (self._next_slot % self._slots) * self._line_size
        self._next_slot += 1
        epoch.outstanding_log_writes += 1
        self._stats.bump("log_writes")
        mc = self._machine.mcs[self._machine.amap.mc_of(log_line)]
        mc.write_log(
            log_line,
            data_line,
            epoch.core_id,
            epoch.seq,
            old_values,
            callback=lambda t, e=epoch: self._acked(e),
        )

    def _acked(self, epoch: "Epoch") -> None:
        epoch.outstanding_log_writes -= 1
        if epoch.outstanding_log_writes < 0:
            raise RuntimeError("undo-log ack accounting underflow")
        if epoch.outstanding_log_writes == 0:
            # The arbiter may have been waiting on the log to drain.
            self._machine.arbiters[epoch.core_id].pump()
            self._machine.maybe_persist(epoch)
