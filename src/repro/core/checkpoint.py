"""Register-state checkpointing for BSP in bulk mode (section 5.2).

At the end of each hardware-created epoch the persistence engine saves
the processor state -- general-purpose, special, privilege and
(non-AVX) floating-point registers -- to persistent memory, so that
execution can restart from the last fully persisted epoch.  The paper
models this as extra persists at every epoch boundary; so do we: a fixed
number of line writes into a per-core checkpoint region, issued
asynchronously when the epoch closes.  The epoch does not count as
persisted until its checkpoint is durable, but the writes are off the
critical path of execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.epoch import Epoch
    from repro.system import Multicore

_PER_CORE_CKPT_BYTES = 1 << 16


class CheckpointEngine:
    """Per-core processor-state checkpoint writer."""

    def __init__(self, core_id: int, machine: "Multicore") -> None:
        self._core_id = core_id
        self._machine = machine
        config = machine.config
        self._base = (
            config.checkpoint_region_base + core_id * _PER_CORE_CKPT_BYTES
        )
        self._line_size = config.line_size
        self._lines_per_checkpoint = max(
            1, -(-config.checkpoint_bytes // config.line_size)
        )
        self._slots = _PER_CORE_CKPT_BYTES // config.line_size
        self._next_slot = 0
        self._stats = machine.stats.domain(f"checkpoint{core_id}")

    @property
    def lines_per_checkpoint(self) -> int:
        return self._lines_per_checkpoint

    def capture(self, epoch: "Epoch") -> None:
        """Persist the register file alongside ``epoch``."""
        self._stats.bump("checkpoints")
        for _ in range(self._lines_per_checkpoint):
            line = self._base + (self._next_slot % self._slots) * self._line_size
            self._next_slot += 1
            epoch.outstanding_checkpoint_writes += 1
            mc = self._machine.mcs[self._machine.amap.mc_of(line)]
            mc.write(
                line,
                epoch.core_id,
                epoch.seq,
                kind="checkpoint",
                callback=lambda t, e=epoch: self._acked(e),
            )

    def _acked(self, epoch: "Epoch") -> None:
        epoch.outstanding_checkpoint_writes -= 1
        if epoch.outstanding_checkpoint_writes < 0:
            raise RuntimeError("checkpoint ack accounting underflow")
        if epoch.outstanding_checkpoint_writes == 0:
            self._machine.maybe_persist(epoch)
