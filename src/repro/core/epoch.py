"""Epoch lifecycle and per-core epoch management.

An epoch is the group of stores between two persist barriers.  Its
lifecycle::

    ONGOING --barrier--> CLOSED --last store drains--> COMPLETE
            --all lines durable + deps persisted--> PERSISTED

``CLOSED`` is the window where the barrier has executed but stores of the
epoch are still draining from the core's write buffer; hardware-wise the
L1 has not yet seen every line of the epoch (no EpochCMP yet), so a flush
cannot finish.  Because the write buffer is FIFO, epochs always reach
``COMPLETE`` in program order.

The per-core :class:`EpochManager` owns the ordered list of unpersisted
epochs, enforces the hardware in-flight limit (3-bit epoch IDs => 8
in-flight epochs, Table/section 4.3), and implements *epoch splitting*,
the paper's deadlock-avoidance move (section 3.3): when a request from
another thread hits a line written by the *ongoing* epoch, the ongoing
epoch is divided into a completed prefix (which can now be a safe IDT
source or be flushed) and a fresh ongoing remainder.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.sim.engine import Engine
    from repro.sim.stats import StatDomain


class EpochStatus(enum.Enum):
    ONGOING = "ongoing"
    CLOSED = "closed"
    COMPLETE = "complete"
    PERSISTED = "persisted"


class Epoch:
    """One epoch of one core."""

    __slots__ = (
        "core_id",
        "seq",
        "key",
        "strand",
        "status",
        "lines",
        "all_lines",
        "pending_stores",
        "num_stores",
        "inflight_writes",
        "outstanding_log_writes",
        "outstanding_checkpoint_writes",
        "idt_sources",
        "idt_dependents",
        "idt_last",
        "all_sources",
        "persist_waiters",
        "complete_waiters",
        "conflict_flush",
        "flush_started",
        "flush_active",
        "split_from",
        "redirect",
        "created_at",
        "closed_at",
        "persisted_at",
        "persisted",
        "manager",
    )

    def __init__(self, core_id: int, seq: int, created_at: int,
                 manager: "EpochManager", strand: int = 0) -> None:
        self.core_id = core_id
        self.seq = seq
        # Interned identity tuple: every structure that records the
        # epoch by (core, seq) -- the IDT's all_sources log, digests --
        # shares this one object instead of building a fresh tuple per
        # conflict.
        self.key = (core_id, seq)
        # Strand persistency (Pelley et al.): epochs of different strands
        # of the same thread carry no mutual ordering constraint.  The
        # default single strand (0) gives ordinary (buffered) epoch
        # persistency.
        self.strand = strand
        self.status = EpochStatus.ONGOING
        # Mirrors ``status is PERSISTED`` as a plain attribute: the
        # persisted check sits under every unpersisted-line test in the
        # request hot path, where a property descriptor call would cost
        # more than the rest of the check combined.
        self.persisted = False
        # Lines whose current unpersisted dirty version belongs to this
        # epoch (they live in the core's L1 or in the LLC).
        self.lines: Set[int] = set()
        # Every line this epoch ever wrote (for the recovery checker).
        self.all_lines: Set[int] = set()
        # Stores tagged to this epoch still sitting in the write buffer.
        self.pending_stores = 0
        self.num_stores = 0
        # NVRAM writes of this epoch's lines issued but not yet acked.
        self.inflight_writes = 0
        # BSP bookkeeping: undo-log and checkpoint writes not yet durable.
        self.outstanding_log_writes = 0
        self.outstanding_checkpoint_writes = 0
        # IDT edges (section 3.1).
        self.idt_sources: Set["Epoch"] = set()
        self.idt_dependents: Set["Epoch"] = set()
        # Edge-interning memo (fast mode): the last source this epoch
        # recorded (or found already covered) via IDTracker.try_record.
        # Contended sharing hits the same epoch pair many times in a
        # row; the memo short-circuits the re-scan of idt_sources.
        self.idt_last: Optional["Epoch"] = None
        # Permanent (core, seq) log of every IDT source ever recorded,
        # for the recovery checker (idt_sources drains as sources persist).
        self.all_sources: Set[tuple] = set()
        # Callbacks.
        self.persist_waiters: List[Callable[[], None]] = []
        self.complete_waiters: List[Callable[[], None]] = []
        # Accounting for Figure 12: was this epoch's flush forced online?
        self.conflict_flush = False
        self.flush_started = False
        # True while the Figure 8 handshake for this epoch is in flight;
        # the epoch may not be declared persisted until PersistCMP.
        self.flush_active = False
        self.split_from: Optional[int] = None
        # When a split occurs while a store is in flight, that store is
        # "not yet completed" and belongs to the remainder epoch (section
        # 3.3); the redirect pointer routes its completion there.
        self.redirect: Optional["Epoch"] = None
        self.created_at = created_at
        self.closed_at: Optional[int] = None
        self.persisted_at: Optional[int] = None
        self.manager = manager

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.status in (EpochStatus.COMPLETE, EpochStatus.PERSISTED)

    @property
    def ongoing(self) -> bool:
        return self.status is EpochStatus.ONGOING

    @property
    def empty(self) -> bool:
        """True when the epoch has no durable work left or pending."""
        return (
            not self.lines
            and self.inflight_writes == 0
            and self.outstanding_log_writes == 0
            and self.outstanding_checkpoint_writes == 0
        )

    def resolve(self) -> "Epoch":
        """The epoch an in-flight store tagged to this epoch now belongs
        to, following split redirects."""
        epoch = self
        while epoch.redirect is not None:
            epoch = epoch.redirect
        return epoch

    def on_persist(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the epoch persists (immediately if done)."""
        if self.persisted:
            callback()
        else:
            self.persist_waiters.append(callback)

    def on_complete(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the epoch completes (immediately if so)."""
        if self.complete:
            callback()
        else:
            self.complete_waiters.append(callback)

    def happens_before_predecessors(self) -> Set["Epoch"]:
        """Direct hb-predecessors: prior same-core epoch + IDT sources."""
        preds: Set[Epoch] = set(self.idt_sources)
        prev = self.manager.predecessor_of(self)
        if prev is not None:
            preds.add(prev)
        return preds

    def __repr__(self) -> str:
        strand = f"s{self.strand}" if self.strand else ""
        return (
            f"<E{self.core_id}.{self.seq}{strand} {self.status.value}"
            f" lines={len(self.lines)}>"
        )


class EpochManager:
    """Per-core epoch bookkeeping (the epoch-ID counter of section 2.1
    plus the unpersisted-epoch window of section 4.3)."""

    def __init__(
        self,
        core_id: int,
        engine: "Engine",
        stats: "StatDomain",
        max_inflight: int,
    ) -> None:
        self.core_id = core_id
        self._engine = engine
        self._stats = stats
        self._max_inflight = max_inflight
        self._next_seq = 0
        # Unpersisted epochs in seq order.  With a single strand the
        # last entry is the ongoing epoch when one exists; with strand
        # persistency each strand has at most one ongoing epoch.
        self.window: List[Epoch] = []
        # Strand persistency state: the thread's active strand and the
        # ongoing epoch of each strand.
        self.active_strand = 0
        self._ongoing: "dict[int, Epoch]" = {}
        # Latched once any non-default strand appears (via set_strand or
        # an explicit-strand epoch).  While False -- the overwhelmingly
        # common case -- the window is totally ordered, so the arbiter
        # and the dependency checks can use head-only fast paths.
        self.multi_strand = False
        self.total_epochs = 0
        # Epochs that have persisted, kept for the recovery checker when
        # epoch logging is enabled.
        self.retired: List[Epoch] = []
        self.keep_retired = False
        # Wired by the machine: called whenever an epoch *might* now be
        # able to persist (a dependency cleared, work drained, ...).
        self.persist_check: Callable[[Epoch], None] = lambda epoch: None
        # Wired by the machine: called when an epoch completes -- the
        # proactive-flushing trigger of section 3.2.
        self.completion_hook: Callable[[Epoch], None] = lambda epoch: None
        # Wired by the machine: the core's digest-invisible handshake
        # message accounting (None under standalone construction).
        # mark_persisted charges one inform-register notification per
        # IDT dependent cleared.
        self.handshake = None

    # ------------------------------------------------------------------
    # Epoch creation / closing
    # ------------------------------------------------------------------
    def _new_epoch(self, strand: Optional[int] = None) -> Epoch:
        strand = self.active_strand if strand is None else strand
        if strand != 0:
            self.multi_strand = True
        epoch = Epoch(self.core_id, self._next_seq, self._engine.now,
                      self, strand=strand)
        self._next_seq += 1
        self.window.append(epoch)
        self._ongoing[strand] = epoch
        self.total_epochs += 1
        self._stats.bump("epochs")
        return epoch

    def set_strand(self, strand: int) -> None:
        """Switch the thread's active persistence strand (Pelley et
        al.'s NewStrand primitive).  Subsequent stores and barriers apply
        to this strand; epochs of different strands persist
        independently."""
        if strand < 0:
            raise ValueError("strand ids must be non-negative")
        if strand != self.active_strand:
            self._stats.bump("strand_switches")
        if strand != 0:
            self.multi_strand = True
        self.active_strand = strand

    @property
    def current(self) -> Optional[Epoch]:
        """The active strand's ongoing epoch, if any."""
        epoch = self._ongoing.get(self.active_strand)
        if epoch is not None and epoch.ongoing:
            return epoch
        return None

    def current_or_new(self) -> Epoch:
        """The ongoing epoch, creating one if none is open."""
        # ``current``, inlined: this runs once per drained store (via
        # tag_store) and the two property hops are measurable there.
        epoch = self._ongoing.get(self.active_strand)
        if epoch is None or epoch.status is not EpochStatus.ONGOING:
            epoch = self._new_epoch()
        return epoch

    def can_open_epoch(self) -> bool:
        """True when the 3-bit epoch-ID window has a free slot."""
        return len(self.window) < self._max_inflight

    def tag_store(self) -> Epoch:
        """Account one store entering the write buffer to the current epoch."""
        epoch = self.current_or_new()
        epoch.pending_stores += 1
        return epoch

    def store_drained(self, epoch: Epoch) -> None:
        """A store of ``epoch`` completed at the L1."""
        epoch = epoch.resolve()
        epoch.pending_stores -= 1
        epoch.num_stores += 1
        if epoch.pending_stores < 0:
            raise RuntimeError(f"store accounting underflow on {epoch}")
        if epoch.status is EpochStatus.CLOSED and epoch.pending_stores == 0:
            self._complete(epoch)

    def close_current(self) -> Optional[Epoch]:
        """Execute a persist barrier: close the ongoing epoch.

        Returns the closed epoch, or None when there was nothing to close
        (consecutive barriers collapse, as they carry no ordering beyond
        the first).
        """
        epoch = self.current
        if epoch is None:
            return None
        if epoch.pending_stores == 0 and epoch.num_stores == 0:
            # Nothing was stored in this epoch: the barrier is a no-op.
            return None
        epoch.status = EpochStatus.CLOSED
        epoch.closed_at = self._engine.now
        self._ongoing.pop(epoch.strand, None)
        if epoch.pending_stores == 0:
            self._complete(epoch)
        return epoch

    def close_all_strands(self) -> List[Epoch]:
        """Close every strand's ongoing epoch (end-of-run drain)."""
        closed = []
        saved = self.active_strand
        for strand in list(self._ongoing):
            self.active_strand = strand
            epoch = self.close_current()
            if epoch is not None:
                closed.append(epoch)
        self.active_strand = saved
        return closed

    def _complete(self, epoch: Epoch) -> None:
        epoch.status = EpochStatus.COMPLETE
        waiters, epoch.complete_waiters = epoch.complete_waiters, []
        # Hold the clock across the fan-out: an inline completion inside
        # one waiter must not warp ``now`` for the continuations that
        # follow it in this same event.
        engine = self._engine
        engine.advance_holds += 1
        try:
            for callback in waiters:
                callback()
            self.completion_hook(epoch)
            # An epoch that drained all its lines before completing
            # (natural evictions) may be able to persist right away.
            self.persist_check(epoch)
        finally:
            engine.advance_holds -= 1

    # ------------------------------------------------------------------
    # Splitting (deadlock avoidance, section 3.3)
    # ------------------------------------------------------------------
    def split_current(self) -> Optional[Epoch]:
        """Split the active strand's ongoing epoch; see
        :meth:`split_epoch`."""
        return self.split_epoch(self.current)

    def split_epoch(self, epoch: Optional[Epoch]) -> Optional[Epoch]:
        """Split an ongoing epoch at the current point.

        The prefix (all operations completed so far) becomes a CLOSED
        epoch that can safely serve as an IDT source or be flushed; a
        fresh ongoing epoch in the same strand takes over the remainder.
        Returns the prefix epoch, or None when there is nothing to split.
        """
        if epoch is None or not epoch.ongoing:
            return None
        epoch.status = EpochStatus.CLOSED
        epoch.closed_at = self._engine.now
        self._ongoing.pop(epoch.strand, None)
        self._stats.bump("epoch_splits")
        successor = self._new_epoch(strand=epoch.strand)
        successor.split_from = epoch.seq
        if epoch.pending_stores:
            # In-flight stores have not completed at the time of the
            # split, so they are part of the *remainder* epoch -- this is
            # what makes the prefix immediately completable and therefore
            # keeps the dependence graph acyclic (section 3.3).
            successor.pending_stores = epoch.pending_stores
            epoch.pending_stores = 0
            epoch.redirect = successor
        self._complete(epoch)
        return epoch

    # ------------------------------------------------------------------
    # Persist-order structure
    # ------------------------------------------------------------------
    def predecessor_of(self, epoch: Epoch) -> Optional[Epoch]:
        """The previous unpersisted epoch of the same strand, or None."""
        idx = self._index_of(epoch)
        if idx is None:
            return None
        for i in range(idx - 1, -1, -1):
            if self.window[i].strand == epoch.strand:
                return self.window[i]
        return None

    def _index_of(self, epoch: Epoch) -> Optional[int]:
        # The window is short (<= max_inflight, typically 8); linear scan.
        for i, e in enumerate(self.window):
            if e is epoch:
                return i
        return None

    def oldest_unpersisted(self) -> Optional[Epoch]:
        return self.window[0] if self.window else None

    def unpersisted_upto(self, seq: int,
                         strand: Optional[int] = None) -> List[Epoch]:
        """Unpersisted epochs with sequence number <= ``seq``, optionally
        restricted to one strand (cross-strand epochs carry no mutual
        ordering, so a conflict never forces them)."""
        return [
            e for e in self.window
            if e.seq <= seq and (strand is None or e.strand == strand)
        ]

    def deps_persisted(self, epoch: Epoch) -> bool:
        """True when every hb-predecessor of ``epoch`` has persisted.

        Program order binds epochs of the *same strand* only (with the
        default single strand: all older window epochs); IDT sources are
        cross-core edges.
        """
        if self._engine.fast and not self.multi_strand:
            # Single strand: the window is totally ordered, so the only
            # epoch with no unpersisted predecessor is the head; any
            # epoch off the window has retired.  Same answer as the
            # scan below, without walking the prefix.
            window = self.window
            if window and window[0] is epoch:
                return all(src.persisted for src in epoch.idt_sources)
            return epoch.persisted
        idx = self._index_of(epoch)
        if idx is None:
            return True  # already retired
        for i in range(idx):
            if self.window[i].strand == epoch.strand:
                return False
        return all(src.persisted for src in epoch.idt_sources)

    def mark_persisted(self, epoch: Epoch) -> None:
        """Retire a fully durable epoch and wake its waiters."""
        if epoch.persisted:
            raise RuntimeError(f"{epoch} persisted twice")
        if not epoch.empty:
            raise RuntimeError(f"{epoch} marked persisted with work pending")
        window = self.window
        if self._engine.fast and window and window[0] is epoch:
            # Fast path for the overwhelmingly common case (single
            # strand: epochs persist strictly in window order, so the
            # retiree is the head).  The reference mode keeps the full
            # scan below -- the window-membership and same-strand
            # predecessor checks are internal-bug assertions with no
            # observable effect on a correct run.
            window.pop(0)
        else:
            idx = self._index_of(epoch)
            if idx is None:
                raise RuntimeError(f"{epoch} not in window")
            for i in range(idx):
                if window[i].strand == epoch.strand:
                    raise RuntimeError(
                        f"{epoch} persisted before same-strand predecessor "
                        f"{window[i]}"
                    )
            window.pop(idx)
        epoch.status = EpochStatus.PERSISTED
        epoch.persisted = True
        epoch.persisted_at = self._engine.now
        self._stats.bump("epochs_persisted")
        if epoch.conflict_flush:
            self._stats.bump("epochs_conflict_flushed")
        if self.keep_retired:
            self.retired.append(epoch)
        # Inform dependents first (the inform registers of section 4.2) so
        # that waiters re-examining dependency state see the edges gone.
        if epoch.idt_dependents:
            dependents = list(epoch.idt_dependents)
            epoch.idt_dependents.clear()
            for dependent in dependents:
                dependent.idt_sources.discard(epoch)
            if self.handshake is not None:
                # One inform-register notification per dependent core
                # (section 4.2), attributed to the persisting epoch's
                # core -- it is the sender.
                self.handshake.idt_notify_msgs += len(dependents)
        else:
            dependents = ()
        waiters, epoch.persist_waiters = epoch.persist_waiters, []
        # Hold the clock across the fan-out (see EpochManager._complete):
        # waking a parked core can complete its next request inline, and
        # that inline completion must not advance ``now`` while further
        # waiters/dependents of this persist still have to run.
        engine = self._engine
        engine.advance_holds += 1
        try:
            for callback in waiters:
                callback()
            for dependent in dependents:
                dependent.manager.persist_check(dependent)
            # The strand's next epoch may already be drained and able to
            # persist (and with one strand, that is the new window head).
            for e in self.window:
                if e.strand == epoch.strand:
                    self.persist_check(e)
                    break
        finally:
            engine.advance_holds -= 1

    def next_flushable(self, horizon_of) -> Optional[Epoch]:
        """The first epoch the arbiter could flush now (see
        :meth:`flush_candidates`)."""
        for epoch in self.flush_candidates(horizon_of):
            return epoch
        return None

    def flush_candidates(self, horizon_of):
        """Yield each strand's head epoch that is within its flush
        horizon, in window (seq) order.

        ``horizon_of(strand)`` gives the highest requested flush seq for
        a strand.  An epoch is a candidate when every earlier same-strand
        epoch has persisted; completion/IDT/log gating is the arbiter's
        business.  With a single strand this yields at most the window
        head.
        """
        seen: set = set()
        for epoch in self.window:
            if epoch.strand in seen:
                continue
            seen.add(epoch.strand)
            if epoch.seq <= horizon_of(epoch.strand):
                yield epoch

    def audit(self) -> None:
        """Invariant checks used by the test suite."""
        ongoing_seen: set = set()
        for i, epoch in enumerate(self.window):
            if i and epoch.seq <= self.window[i - 1].seq:
                raise AssertionError("window out of order")
            if epoch.persisted:
                raise AssertionError("persisted epoch still in window")
            if epoch.ongoing:
                if epoch.strand in ongoing_seen:
                    raise AssertionError("two ongoing epochs in a strand")
                ongoing_seen.add(epoch.strand)
                if self._ongoing.get(epoch.strand) is not epoch:
                    raise AssertionError("ongoing map out of sync")
                later = self.window[i + 1:]
                if any(e.strand == epoch.strand for e in later):
                    raise AssertionError(
                        "ongoing epoch not last of its strand"
                    )
