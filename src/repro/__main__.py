"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run``     -- run one workload on one machine configuration and print
  the result (throughput, conflicts, NVRAM traffic).
* ``figures`` -- regenerate the paper's figures (delegates to
  :mod:`repro.harness.experiments`; sweeps fan out over ``--jobs``
  worker processes and reuse cached results from ``.repro-cache/``).
* ``bench``   -- time the sweep executor serial vs parallel vs warm
  cache and write ``BENCH_sweep.json``.
* ``cache``   -- inspect (``--stats``) or garbage-collect (``--prune``)
  the content-addressed result cache.
* ``crash``   -- crash a workload at a given cycle, check consistency,
  and (for BSP) perform undo-log recovery.
* ``crashsweep`` -- run a workload once, capture its persist history,
  and validate the recovery invariants at *every* crash point (with an
  optional injected reorder fault as a checker self-test).
* ``campaign`` -- systematic fault campaign: enumerate every injectable
  protocol coordinate of a captured run (FlushEpoch edges, BankAcks,
  PersistAcks, PersistCMP copies, controller transactions), probe each
  one plus seeded multi-fault rounds, and triage every probe into
  survived / aborted-clean / violation (exit nonzero on any violation,
  each with a minimized repro command).
* ``inspect`` -- print the machine configuration at each scale.

Examples::

    python -m repro run --workload queue --design LB++ --scale small
    python -m repro run --workload ssca2 --model BSP --design LB
    python -m repro figures fig11 fig12 --scale tiny --jobs 4
    python -m repro bench --jobs 4
    python -m repro crash --workload queue --cycle 20000
    python -m repro crashsweep --workload pingpong --transactions 10
    python -m repro crashsweep --reorder-window 6 --expect-violation
    python -m repro campaign --workload pingpong --cores 4 --check-digests
    python -m repro campaign --reorder-window 6 --expect-violation
    python -m repro campaign --inject bank_ack_drop:0,1,2
    python -m repro inspect --scale paper
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.harness.runner import Scale, run_bep, run_bsp
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore, RunResult
from repro.workloads.apps.profiles import APP_PROFILES
from repro.workloads.micro import MICROBENCHMARKS

_DESIGNS = {d.value: d for d in BarrierDesign}
_MODELS = {m.value: m for m in PersistencyModel}


def _print_result(result: RunResult) -> None:
    print(f"cycles (visible) : {result.cycles_visible}")
    print(f"cycles (durable) : {result.cycles_durable}")
    print(f"transactions     : {result.transactions}")
    if result.transactions:
        print(f"throughput       : {result.throughput:.3f} txn/kcycle")
    print(f"epochs persisted : {result.total_epochs}")
    print(f"conflicting      : {result.conflict_epoch_pct:.1f}%")
    print(f"conflicts        : intra={result.intra_conflicts} "
          f"inter={result.inter_conflicts}")
    nvram = result.stats.domain("nvram")
    print(f"NVRAM writes     : {result.nvram_writes} "
          f"(data={nvram.get('writes_data')} "
          f"log={nvram.get('writes_log')} "
          f"ckpt={nvram.get('writes_checkpoint')} "
          f"evict={nvram.get('writes_eviction')})")


def cmd_run(args: argparse.Namespace) -> int:
    scale = Scale(args.scale)
    design = _DESIGNS[args.design]
    if args.workload in MICROBENCHMARKS:
        model = PersistencyModel.BEP
        if args.model and args.model != model.value:
            print("note: microbenchmarks run under BEP (the paper's "
                  "programmer-annotated workloads)", file=sys.stderr)
        result = run_bep(args.workload, design, scale=scale,
                         seed=args.seed, transactions=args.transactions)
    elif args.workload in APP_PROFILES:
        model = _MODELS[args.model] if args.model else PersistencyModel.BSP
        result = run_bsp(args.workload, design, scale=scale,
                         seed=args.seed, persistency=model,
                         epoch_stores=args.epoch_stores,
                         mem_ops=args.mem_ops)
    else:
        known = sorted(MICROBENCHMARKS) + sorted(APP_PROFILES)
        print(f"unknown workload {args.workload!r}; choose from {known}",
              file=sys.stderr)
        return 2
    print(f"== {args.workload} / {design.value} / {model.value} "
          f"@ {scale.value} ==")
    _print_result(result)
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.harness.experiments import main as experiments_main
    argv = list(args.figures) + ["--seed", str(args.seed),
                                 "--cache-dir", args.cache_dir]
    if args.scale is not None:
        argv += ["--scale", args.scale]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.refresh:
        argv.append("--refresh")
    if args.full:
        argv.append("--full")
    if args.budget is not None:
        argv += ["--budget", str(args.budget)]
    if args.shard is not None:
        argv += ["--shard", args.shard]
    if args.plan_file is not None:
        argv += ["--plan-file", args.plan_file]
    if args.csv_dir is not None:
        argv += ["--csv-dir", args.csv_dir]
    return experiments_main(argv)


def _parse_size(text: str) -> int:
    """Byte count with an optional K/M/G suffix (e.g. ``64M``)."""
    scales = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    t = text.strip().lower().rstrip("b")
    if t and t[-1] in scales:
        return int(float(t[:-1]) * scales[t[-1]])
    return int(t)


def _fmt_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.1f} {unit}" if unit != "B"
                    else f"{count} B")
        value /= 1024
    return f"{count} B"


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness.cache import ResultCache
    cache = ResultCache(args.cache_dir)
    if args.prune:
        if args.max_bytes is None and args.max_age_days is None:
            print("cache --prune needs --max-bytes and/or --max-age-days",
                  file=sys.stderr)
            return 2
        removed, freed = cache.prune(
            max_bytes=args.max_bytes, max_age_days=args.max_age_days,
            dry_run=args.dry_run,
        )
        verb = "would remove" if args.dry_run else "removed"
        print(f"[cache] {verb} {removed} entries, "
              f"{_fmt_bytes(freed)} freed")
    if args.stats or not args.prune:
        stats = cache.stats()
        print(f"== cache {stats['root']} ==")
        print(f"result entries   : {stats['entries']} "
              f"({_fmt_bytes(stats['bytes'])})")
        print(f"corrupt entries  : {stats['corrupt_entries']}"
              + (" (checksum/parse failures; deleted and recomputed "
                 "on next read)" if stats["corrupt_entries"] else ""))
        print(f"cost records     : {stats['cost_entries']} "
              f"({_fmt_bytes(stats['cost_bytes'])})")
        if stats["entries"]:
            print(f"last use (age)   : newest {stats['newest_age_s']}s, "
                  f"mean {stats['mean_age_s']}s, "
                  f"oldest {stats['oldest_age_s']}s")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import digests_ok, run_bench
    record = run_bench(jobs=args.jobs, seed=args.seed, output=args.output,
                       transactions=args.transactions, profile=args.profile,
                       sweep=not args.no_sweep, workload=args.workload,
                       only=args.only, profile_top=args.profile_top,
                       million=not args.no_million, cores=args.cores)
    if args.check_digests and not digests_ok(record):
        print("[bench] ERROR: fast/reference digest mismatch")
        return 1
    return 0


def cmd_crash(args: argparse.Namespace) -> int:
    from repro.recovery import (
        check_bsp_recoverable,
        check_epoch_order,
        recover_bsp,
        recover_queue,
        run_with_crash,
    )
    from repro.workloads.micro import QueueWorkload
    from repro.workloads.apps import app_programs

    design = _DESIGNS[args.design]
    if args.workload in MICROBENCHMARKS:
        config = MachineConfig.tiny(
            barrier_design=design, persistency=PersistencyModel.BEP,
        )
        machine = Multicore(config, track_values=True,
                            track_persist_order=True, keep_epoch_log=True)
        if args.workload == "queue":
            queues = [QueueWorkload(thread_id=t, seed=args.seed)
                      for t in range(config.num_cores)]
            outcome = run_with_crash(
                machine, [q.ops(80) for q in queues], args.cycle
            )
            checked = check_epoch_order(outcome)
            print(f"crash @ {outcome.crash_cycle}: {checked} persists in "
                  "valid epoch order")
            for q in queues:
                recovered = recover_queue(outcome, q)
                print(f"  thread {q.thread_id}: recovered queue "
                      f"[{recovered.tail}, {recovered.head}) = "
                      f"{recovered.length} intact entries")
            return 0
        from repro.workloads.micro import make_benchmark
        benches = [make_benchmark(args.workload, thread_id=t,
                                  seed=args.seed)
                   for t in range(config.num_cores)]
        outcome = run_with_crash(
            machine, [b.ops(80) for b in benches], args.cycle
        )
        checked = check_epoch_order(outcome)
        print(f"crash @ {outcome.crash_cycle}: {checked} persists in "
              "valid epoch order")
        return 0
    if args.workload in APP_PROFILES:
        config = MachineConfig.tiny(
            barrier_design=design, persistency=PersistencyModel.BSP,
            bsp_epoch_stores=args.epoch_stores,
        )
        machine = Multicore(config, track_values=True,
                            track_persist_order=True, keep_epoch_log=True)
        outcome = run_with_crash(
            machine,
            app_programs(args.workload, config.num_cores, 2000,
                         seed=args.seed),
            args.cycle,
        )
        checked = check_epoch_order(outcome)
        covered = check_bsp_recoverable(outcome)
        state = recover_bsp(outcome)
        print(f"crash @ {outcome.crash_cycle}: {checked} persists in valid "
              f"epoch order, {covered} torn lines log-covered")
        print(f"recovery rolled back {len(state.rolled_back)} epochs, "
              f"restored {len(state.restored_lines)} lines")
        for core_id in sorted(state.survivor_epoch):
            print(f"  core {core_id} restarts from epoch "
                  f"{state.survivor_epoch[core_id]}'s checkpoint")
        return 0
    print(f"unknown workload {args.workload!r}", file=sys.stderr)
    return 2


def cmd_crashsweep(args: argparse.Namespace) -> int:
    """Capture one run and validate every crash point of its history."""
    from repro.harness.bench import _multicore_setup
    from repro.recovery import capture_run, sweep_crash_points
    from repro.sim.faults import FaultConfig
    from repro.workloads.micro import make_benchmark

    design = _DESIGNS[args.design]
    faults = (FaultConfig(reorder_window=args.reorder_window)
              if args.reorder_window else None)
    queues: list = []
    if args.workload == "pingpong":
        config, programs = _multicore_setup(
            args.seed, args.transactions, barrier_design=design)
    elif args.workload in MICROBENCHMARKS:
        config = MachineConfig.tiny(
            barrier_design=design, persistency=PersistencyModel.BEP,
        )
        bench = make_benchmark(args.workload, thread_id=0, seed=args.seed,
                               line_size=config.line_size)
        programs = [list(bench.ops(args.transactions))]
        if args.workload == "queue":
            queues = [bench]
    else:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{sorted(MICROBENCHMARKS)}", file=sys.stderr)
        return 2
    machine = Multicore(config, track_values=True, track_persist_order=True,
                        keep_epoch_log=True, faults=faults)
    outcome = capture_run(machine, programs)
    report = sweep_crash_points(outcome, queues=queues,
                                raise_on_violation=False)
    print(f"== crashsweep {args.workload} / {design.value} "
          f"({config.num_cores} core(s), {args.transactions} txns"
          f"{', reorder fault' if faults else ''}) ==")
    print(f"persist history  : {report.history_len} records")
    print(f"crash points     : {report.points} "
          f"({report.data_persists} epoch-tagged persists, "
          f"{report.queue_checks} queue re-checks)")
    if report.ok:
        print("verdict          : consistent at every crash point")
    else:
        print(f"verdict          : VIOLATION at point "
              f"{report.first_violation}: {report.violation}")
    if args.expect_violation:
        if report.ok:
            print("error: expected the sweep to flag a violation "
                  "(checker self-test failed)", file=sys.stderr)
            return 1
        return 0
    return 0 if report.ok else 1


def _parse_inject(text: str):
    """``leg:c1,c2,...`` -> ``(leg, (c1, c2, ...))``, validated."""
    from repro.sim.faults import FAULT_LEGS
    try:
        leg, coords_s = text.split(":", 1)
        coords = tuple(int(c) for c in coords_s.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--inject expects leg:c1,c2,... got {text!r}"
        ) from None
    if leg not in FAULT_LEGS:
        raise argparse.ArgumentTypeError(
            f"unknown fault leg {leg!r}; choose from {sorted(FAULT_LEGS)}"
        )
    return leg, coords


def cmd_campaign(args: argparse.Namespace) -> int:
    """Fault campaign: exhaustive singles + randomized combos, or one
    injected combination (repro mode), or the reorder self-test."""
    from repro.recovery import (
        VIOLATION,
        CampaignSpec,
        campaign_selftest,
        run_campaign,
        triage,
    )
    from repro.recovery.campaign import run_baseline

    designs = {d.name.lower(): d for d in BarrierDesign}
    designs.update(_DESIGNS)
    spec = CampaignSpec(
        workload=args.workload,
        design=designs[args.design],
        num_cores=args.cores,
        transactions=args.transactions,
        seed=args.seed,
        fault_seed=args.fault_seed,
        mc_stride=args.mc_stride,
        tree=args.tree,
    )

    def print_entry(entry) -> None:
        print(f"verdict          : {entry.verdict}")
        if entry.detail:
            print(f"detail           : {entry.detail}")
        if entry.repro:
            print(f"repro            : {entry.repro}")

    if args.reorder_window:
        # Checker self-test: the unsound reorder fault MUST be flagged.
        entry = campaign_selftest(spec,
                                  reorder_window=args.reorder_window)
        print(f"== campaign self-test {spec.describe()} "
              f"(reorder window {args.reorder_window}) ==")
        print_entry(entry)
        flagged = entry.verdict == VIOLATION
        if args.expect_violation:
            if not flagged:
                print("error: expected the triage to flag a violation "
                      "(campaign self-test failed)", file=sys.stderr)
            return 0 if flagged else 1
        return 1 if flagged else 0

    if args.inject:
        inject = tuple(args.inject)
        baseline_values = (
            run_baseline(spec).machine.image.values
            if spec.workload == "queue" else None
        )
        print(f"== campaign repro {spec.describe()} ==")
        for leg, coords in inject:
            print(f"inject           : {leg}{coords}")
        entry = triage(spec, inject, baseline_values)
        print_entry(entry)
        return 1 if entry.verdict == VIOLATION else 0

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"[campaign] {message}")

    def run_once():
        return run_campaign(
            spec,
            exhaustive=True,
            random_rounds=args.random_rounds,
            max_points=args.max_points,
            progress=progress,
        )

    report = run_once()
    print(f"== {report.summary()} ==")
    for entry in report.violations:
        print(f"VIOLATION {entry.inject}: {entry.detail}")
        if entry.repro:
            print(f"  repro: {entry.repro}")
    if args.check_digests:
        from repro.harness.bench import reference_mode
        with reference_mode():
            reference = run_once()
        if reference.verdict_map() != report.verdict_map():
            print("[campaign] ERROR: fast/reference verdict maps "
                  "differ", file=sys.stderr)
            return 1
        print(f"[campaign] fast/reference parity: "
              f"{len(report.entries)} verdicts identical")
    return 0 if report.ok else 1


def cmd_inspect(args: argparse.Namespace) -> int:
    builders = {
        "tiny": MachineConfig.tiny,
        "small": MachineConfig.small,
        "paper": MachineConfig.paper,
    }
    config = builders[args.scale]()
    print(f"== MachineConfig.{args.scale}() ==")
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, (BarrierDesign, PersistencyModel)):
            value = value.value
        print(f"  {field.name:28s} {value}")
    print(f"  {'l1_sets (derived)':28s} {config.l1_sets}")
    print(f"  {'llc_bank_sets (derived)':28s} {config.llc_bank_sets}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient Persist Barriers for Multicores "
                    "(MICRO 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--design", default="LB++", choices=_DESIGNS)
    run_p.add_argument("--model", default=None, choices=_MODELS)
    run_p.add_argument("--scale", default="small",
                       choices=[s.value for s in Scale])
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--transactions", type=int, default=None)
    run_p.add_argument("--mem-ops", type=int, default=None)
    run_p.add_argument("--epoch-stores", type=int, default=1500)
    run_p.set_defaults(func=cmd_run)

    fig_p = sub.add_parser("figures", help="regenerate paper figures")
    fig_p.add_argument("figures", nargs="+")
    fig_p.add_argument("--scale", default=None,
                       choices=[s.value for s in Scale],
                       help="machine scale (default: small; paper "
                            "under --full)")
    fig_p.add_argument("--seed", type=int, default=1)
    fig_p.add_argument("--csv-dir", default=None,
                       help="write each figure's data as CSV here")
    from repro.harness.experiments import add_executor_args
    add_executor_args(fig_p)
    fig_p.set_defaults(func=cmd_figures)

    cache_p = sub.add_parser(
        "cache", help="inspect or prune the result cache"
    )
    from repro.harness.cache import DEFAULT_CACHE_DIR
    cache_p.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    cache_p.add_argument("--stats", action="store_true",
                         help="print entry counts, bytes, and last-use "
                              "ages (the default action)")
    cache_p.add_argument("--prune", action="store_true",
                         help="LRU/age garbage collection; scope with "
                              "--max-bytes / --max-age-days")
    cache_p.add_argument("--max-bytes", type=_parse_size, default=None,
                         metavar="N[K|M|G]",
                         help="evict least-recently-used results until "
                              "the cache fits this budget")
    cache_p.add_argument("--max-age-days", type=float, default=None,
                         help="drop records not used for this long")
    cache_p.add_argument("--dry-run", action="store_true",
                         help="report what --prune would delete")
    cache_p.set_defaults(func=cmd_cache)

    bench_p = sub.add_parser(
        "bench", help="time the sweep executor (writes BENCH_sweep.json)"
    )
    bench_p.add_argument("--jobs", type=int, default=4)
    bench_p.add_argument("--seed", type=int, default=1)
    bench_p.add_argument("--transactions", type=int, default=None,
                         help="single-run length in transactions")
    bench_p.add_argument("--profile", action="store_true",
                         help="cProfile one single run into "
                              "BENCH_profile.txt")
    bench_p.add_argument("--profile-top", type=int, default=30,
                         help="rows of the profile table --profile writes "
                              "(default 30)")
    bench_p.add_argument("--no-sweep", action="store_true",
                         help="skip the sweep-executor timing (smoke mode)")
    bench_p.add_argument("--no-million", action="store_true",
                         help="skip the million-transaction scale run")
    bench_p.add_argument("--workload", default=None,
                         help="micro for the flush-bound run and --profile "
                              "(default flushbound)")
    bench_p.add_argument("--only",
                         choices=("single", "flush", "multicore", "serving",
                                  "scaling", "crash", "campaign", "farm"),
                         default=None,
                         help="run just one bench family (skips the "
                              "matrix, crash-recovery, million, and sweep "
                              "sections; 'scaling' runs the core-count "
                              "sweep, 'crash' the exhaustive crash-point "
                              "sweeps and fault-injection checks, "
                              "'campaign' the exhaustive fault campaign "
                              "fast vs reference, 'farm' the planner "
                              "cold/warm/sharded timings)")
    from repro.harness.bench import parse_cores
    bench_p.add_argument("--cores", type=parse_cores, default=None,
                         metavar="N,N,...",
                         help="core counts for the scaling sweep: powers "
                              "of two between 2 and 64 "
                              "(default 4,8,16,32,64)")
    bench_p.add_argument("--check-digests", action="store_true",
                         help="exit nonzero unless every fast-vs-reference "
                              "digest and crash-recovery verdict matches")
    bench_p.add_argument("--output", default="BENCH_sweep.json")
    bench_p.set_defaults(func=cmd_bench)

    crash_p = sub.add_parser("crash", help="crash + recovery demo")
    crash_p.add_argument("--workload", default="queue")
    crash_p.add_argument("--design", default="LB++", choices=_DESIGNS)
    crash_p.add_argument("--cycle", type=int, default=20_000)
    crash_p.add_argument("--seed", type=int, default=1)
    crash_p.add_argument("--epoch-stores", type=int, default=100)
    crash_p.set_defaults(func=cmd_crash)

    sweep_p = sub.add_parser(
        "crashsweep",
        help="validate every crash point of one captured run",
    )
    sweep_p.add_argument("--workload", default="queue",
                         help="a microbenchmark; 'pingpong' uses the "
                              "contended 4-core configuration")
    sweep_p.add_argument("--design", default="LB++", choices=_DESIGNS)
    sweep_p.add_argument("--transactions", type=int, default=15)
    sweep_p.add_argument("--seed", type=int, default=1)
    sweep_p.add_argument("--reorder-window", type=int, default=0,
                         help="enable the unsound reorder-persists fault "
                              "with this window (checker self-test)")
    sweep_p.add_argument("--expect-violation", action="store_true",
                         help="exit 0 only if the sweep flags a violation")
    sweep_p.set_defaults(func=cmd_crashsweep)

    camp_p = sub.add_parser(
        "campaign",
        help="fault campaign: probe every injectable protocol "
             "coordinate of a captured run (exit nonzero on any "
             "violation)",
    )
    camp_p.add_argument("--workload", default="pingpong",
                        choices=("pingpong", "queue"))
    camp_p.add_argument("--design", default="lb_pp",
                        help="barrier design (lb, lb_pp, LB, LB++, ...)")
    camp_p.add_argument("--cores", type=int, default=4,
                        help="core count for the pingpong workload")
    camp_p.add_argument("--transactions", type=int, default=6)
    camp_p.add_argument("--seed", type=int, default=1)
    camp_p.add_argument("--fault-seed", type=int, default=0)
    camp_p.add_argument("--tree", action="store_true",
                        help="route FlushEpoch down the fanout tree "
                             "(per-edge fault coverage)")
    camp_p.add_argument("--mc-stride", type=int, default=1,
                        help="probe every Nth controller transaction "
                             "ordinal (thins the mc legs)")
    camp_p.add_argument("--max-points", type=int, default=None,
                        help="cap the exhaustive enumeration "
                             "(deterministic prefix; smoke mode)")
    camp_p.add_argument("--random-rounds", type=int, default=0,
                        help="seeded multi-fault rounds on top of the "
                             "exhaustive singles")
    camp_p.add_argument("--inject", action="append", type=_parse_inject,
                        default=None, metavar="LEG:C1,C2,...",
                        help="repro mode: triage exactly this fault "
                             "combination (repeatable)")
    camp_p.add_argument("--reorder-window", type=int, default=0,
                        help="self-test mode: run the unsound reorder "
                             "fault through the triage")
    camp_p.add_argument("--expect-violation", action="store_true",
                        help="with --reorder-window: exit 0 only if "
                             "the triage flags a violation")
    camp_p.add_argument("--check-digests", action="store_true",
                        help="re-run the campaign on the reference "
                             "engine and require identical verdicts")
    camp_p.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    camp_p.set_defaults(func=cmd_campaign)

    inspect_p = sub.add_parser("inspect", help="print a machine config")
    inspect_p.add_argument("--scale", default="small",
                           choices=[s.value for s in Scale])
    inspect_p.set_defaults(func=cmd_inspect)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
