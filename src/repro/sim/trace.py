"""Event tracing for debugging and analysis.

A :class:`Tracer` collects timestamped records of the interesting
moments in a run -- conflicts, epoch lifecycle transitions, flush
handshakes, persists -- with optional filtering by kind.  Attach one to
a machine::

    tracer = Tracer(kinds={"conflict", "epoch_persist"})
    machine = Multicore(config, tracer=tracer)
    machine.run(programs)
    for record in tracer.records:
        print(record)

Tracing is off (and costs one attribute test per hook) unless a tracer
is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

TRACE_KINDS = frozenset({
    "conflict",        # intra/inter/eviction conflict detected
    "stall",           # a request parked behind an online flush
    "epoch_close",     # barrier closed an epoch
    "epoch_split",     # deadlock-avoidance split
    "flush_start",     # arbiter began the Figure 8 handshake
    "epoch_persist",   # PersistCMP: epoch fully durable
    "idt_edge",        # IDT recorded a dependence
})


@dataclass(frozen=True)
class TraceRecord:
    time: int
    kind: str
    core_id: int
    detail: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:>9}] core{self.core_id} {self.kind:13s} {fields}"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered."""

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 limit: Optional[int] = None) -> None:
        if kinds is not None:
            unknown = set(kinds) - TRACE_KINDS
            if unknown:
                raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
            self.kinds: Optional[Set[str]] = set(kinds)
        else:
            self.kinds = None
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def record(self, time: int, kind: str, core_id: int,
               **detail: object) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, kind, core_id, detail))

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.kind == kind)

    def count(self, kind: str) -> int:
        return sum(1 for _ in self.of_kind(kind))

    def dump(self, limit: Optional[int] = None) -> str:
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in rows)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        # An attached-but-empty tracer must still be truthy: the machine
        # guards every hook with ``if self.tracer:``.
        return True
