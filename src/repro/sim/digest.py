"""Determinism digest: a stable fingerprint of one finished run.

The engine's fast paths (same-cycle ready queue, inline completion) must
be *observationally identical* to the pure-heap reference mode selected
by ``REPRO_SLOW_ENGINE=1``: same cycle counts, same stats, same NVRAM
image, same persist order.  :func:`state_digest` reduces a finished run
to one SHA-256 hex string over a canonical JSON encoding of exactly that
observable state, so "the fast path changed nothing" becomes a single
string comparison -- asserted per persistency model by the determinism
tests and by ``repro bench``.

Everything hashed is deterministic simulated state; nothing about host
timing, object identity, or dict insertion order can leak in (keys are
sorted, values canonicalised via ``repr``).
"""

from __future__ import annotations

import hashlib
import json
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig
    from repro.system import Multicore, RunResult


def run_digest(config: "MachineConfig", programs: List[list]) -> str:
    """Digest of one fresh run of ``programs`` on ``config``.

    Convenience wrapper used by the digest matrices: builds a machine
    with value and persist-order tracking enabled (so the digest covers
    the full NVRAM image, not just the counters), runs it to
    completion, and fingerprints the outcome.  Engine mode is whatever
    ``REPRO_SLOW_ENGINE`` says at call time.
    """
    from repro.system import Multicore  # runtime import: cycle guard

    machine = Multicore(config, track_values=True, track_persist_order=True)
    result = machine.run(programs)
    return state_digest(machine, result)


def state_digest(machine: "Multicore", result: "RunResult") -> str:
    """SHA-256 digest of a run's observable outcome.

    Covers the final flattened stats, the visible/durable cycle counts,
    and the NVRAM image: per-line last-persist records (index, time,
    producing epoch, kind), persisted value tokens, and the global
    persist count.  Two runs with the same digest made the same writes
    durable in the same order at the same cycles and counted the same
    events along the way.
    """
    image = machine.image
    payload = {
        "cycles_visible": result.cycles_visible,
        "cycles_durable": result.cycles_durable,
        "finished": result.finished,
        "stats": dict(sorted(result.stats.flatten().items())),
        "persist_count": image.persist_count,
        "last_persist": {
            str(line): [rec.index, rec.time, rec.core_id,
                        rec.epoch_seq, rec.kind]
            for line, rec in sorted(image.last_persist.items())
        },
        "values": {
            str(line): {str(off): repr(val)
                        for off, val in sorted(vals.items())}
            for line, vals in sorted(image.values.items())
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
