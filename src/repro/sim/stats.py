"""Statistics collection.

Every component owns a :class:`StatDomain` (a named bag of counters and
histograms) registered with the machine-wide :class:`Stats` object.  The
harness reads these after a run to produce the paper's tables and
figures.  Counters are plain ints -- cheap enough to bump on every
memory transaction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class StatDomain:
    """A named namespace of counters and value accumulators."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, int] = defaultdict(int)
        self._sums: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)
        self._maxes: Dict[str, float] = {}

    # -- counters ------------------------------------------------------
    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] += amount

    def get(self, key: str, default: int = 0) -> int:
        return self.counters.get(key, default)

    # -- accumulators (for means / maxima) ------------------------------
    def record(self, key: str, value: float) -> None:
        self._sums[key] += value
        self._counts[key] += 1
        prev = self._maxes.get(key)
        if prev is None or value > prev:
            self._maxes[key] = value

    def merge_samples(self, key: str, total: float, count: int,
                      maximum: float) -> None:
        """Fold ``count`` pre-aggregated samples into the accumulator.

        Exactly equivalent to ``count`` individual :meth:`record` calls
        whose values sum to ``total`` with maximum ``maximum`` -- the
        merge point for hot-path code that accumulates samples in plain
        attributes and flushes them once at run end.
        """
        if count == 0:
            return
        self._sums[key] += total
        self._counts[key] += count
        prev = self._maxes.get(key)
        if prev is None or maximum > prev:
            self._maxes[key] = maximum

    def mean(self, key: str) -> float:
        n = self._counts.get(key, 0)
        return self._sums[key] / n if n else 0.0

    def total(self, key: str) -> float:
        return self._sums.get(key, 0.0)

    def count(self, key: str) -> int:
        return self._counts.get(key, 0)

    def maximum(self, key: str) -> float:
        return self._maxes.get(key, 0.0)

    # -- introspection ---------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(self.counters)
        for key in self._sums:
            out[f"{key}.mean"] = self.mean(key)
            out[f"{key}.total"] = self._sums[key]
            out[f"{key}.count"] = self._counts[key]
        return out

    def __repr__(self) -> str:
        return f"StatDomain({self.name!r}, {dict(self.counters)!r})"


class Stats:
    """Machine-wide registry of stat domains."""

    def __init__(self) -> None:
        self._domains: Dict[str, StatDomain] = {}

    def domain(self, name: str) -> StatDomain:
        """Get (creating if needed) the domain with the given name."""
        dom = self._domains.get(name)
        if dom is None:
            dom = StatDomain(name)
            self._domains[name] = dom
        return dom

    def __iter__(self) -> Iterator[Tuple[str, StatDomain]]:
        return iter(sorted(self._domains.items()))

    def total(self, counter: str) -> int:
        """Sum a counter across all domains (e.g. per-core counters)."""
        return sum(dom.get(counter) for _, dom in self)

    def flatten(self) -> Dict[str, float]:
        """All counters as ``domain.counter`` keys, for reports."""
        out: Dict[str, float] = {}
        for name, dom in self:
            for key, value in dom.as_dict().items():
                out[f"{name}.{key}"] = value
        return out


class HandshakeStats:
    """Per-core message accounting for the Figure 8 flush handshake.

    Deliberately *not* a :class:`StatDomain`: every domain counter is
    part of the determinism digest (``Stats.flatten`` feeds
    ``state_digest``), and these counts are bumped from batched fast
    paths whose per-event shape differs from the reference engine even
    though the message *totals* are identical.  Keeping them as plain
    slotted attributes makes them digest-invisible by construction --
    the same contract as the fast-forward drain counters -- while the
    bench harness asserts fast-vs-reference equality explicitly, the
    way the conflict counters are checked.

    Counter semantics (messages, not events -- a batched simulator event
    covering k banks still counts k messages):

    * ``flush_epoch_msgs``  -- FlushEpoch broadcasts, one per bank per
      flush (step 1).
    * ``bank_ack_msgs``     -- BankAck transmissions (step 3), including
      dropped/retried transmissions under fault injection.  Under the
      all-to-all protocol each ack is announced to every bank plus the
      initiator, so one logical ack costs ``llc_banks`` messages.
    * ``persist_ack_msgs``  -- per-line PersistAck hops from the memory
      controller back to the owning bank (step 2->3 internal leg).
    * ``persist_cmp_msgs``  -- PersistCMP broadcasts, one per bank per
      flush (step 4); zero under all-to-all, where banks self-determine
      completion.
    * ``idt_notify_msgs``   -- inter-thread dependence-clear notices
      sent to dependent cores when an epoch persists.

    Flushes overlap (the arbiter pipelines several epochs), so the
    per-flush (i.e. per-epoch) cost cannot be bracketed with global
    snapshots: each flush operation accumulates its own message count
    and reports it once at completion via :meth:`note_flush`, which
    maintains the count, sum, and maximum needed for the
    messages-per-flush curves without storing a per-epoch list.
    """

    __slots__ = ("flushes", "flush_epoch_msgs", "bank_ack_msgs",
                 "persist_ack_msgs", "persist_cmp_msgs", "idt_notify_msgs",
                 "flush_msgs_sum", "last_flush_msgs", "max_flush_msgs")

    def __init__(self) -> None:
        self.flushes = 0
        self.flush_epoch_msgs = 0
        self.bank_ack_msgs = 0
        self.persist_ack_msgs = 0
        self.persist_cmp_msgs = 0
        self.idt_notify_msgs = 0
        self.flush_msgs_sum = 0
        self.last_flush_msgs = 0
        self.max_flush_msgs = 0

    # ------------------------------------------------------------------
    def total_msgs(self) -> int:
        return (self.flush_epoch_msgs + self.bank_ack_msgs
                + self.persist_ack_msgs + self.persist_cmp_msgs
                + self.idt_notify_msgs)

    def note_flush(self, msgs: int) -> None:
        """Record one completed flush handshake costing ``msgs`` messages."""
        self.flushes += 1
        self.flush_msgs_sum += msgs
        self.last_flush_msgs = msgs
        if msgs > self.max_flush_msgs:
            self.max_flush_msgs = msgs

    def mean_flush_msgs(self) -> float:
        return self.flush_msgs_sum / self.flushes if self.flushes else 0.0

    def merge(self, other: "HandshakeStats") -> None:
        """Fold another core's counts into this one (aggregation)."""
        self.flush_epoch_msgs += other.flush_epoch_msgs
        self.bank_ack_msgs += other.bank_ack_msgs
        self.persist_ack_msgs += other.persist_ack_msgs
        self.persist_cmp_msgs += other.persist_cmp_msgs
        self.idt_notify_msgs += other.idt_notify_msgs
        self.flushes += other.flushes
        self.flush_msgs_sum += other.flush_msgs_sum
        self.last_flush_msgs = other.last_flush_msgs or self.last_flush_msgs
        if other.max_flush_msgs > self.max_flush_msgs:
            self.max_flush_msgs = other.max_flush_msgs

    def as_dict(self) -> Dict[str, float]:
        return {
            "flushes": self.flushes,
            "flush_epoch_msgs": self.flush_epoch_msgs,
            "bank_ack_msgs": self.bank_ack_msgs,
            "persist_ack_msgs": self.persist_ack_msgs,
            "persist_cmp_msgs": self.persist_cmp_msgs,
            "idt_notify_msgs": self.idt_notify_msgs,
            "total_msgs": self.total_msgs(),
            "mean_flush_msgs": self.mean_flush_msgs(),
            "last_flush_msgs": self.last_flush_msgs,
            "max_flush_msgs": self.max_flush_msgs,
        }


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, as used for the paper's gmean bars."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: list[float]) -> float:
    """Arithmetic mean, as used for the paper's amean bars (Figure 12)."""
    if not values:
        raise ValueError("arithmetic mean of empty sequence")
    return sum(values) / len(values)
