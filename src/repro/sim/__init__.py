"""Discrete-event simulation kernel.

This package provides the substrate every other subsystem is built on:

* :mod:`repro.sim.engine` -- a deterministic event queue with a cycle
  clock, the spine of the whole simulator.
* :mod:`repro.sim.config` -- configuration dataclasses mirroring Table 1
  of the paper, plus scaled-down variants for laptop runs.
* :mod:`repro.sim.stats` -- counters, histograms and derived-metric
  helpers used by every component to report results.
"""

from repro.sim.config import (
    BarrierDesign,
    FlushMode,
    MachineConfig,
    PersistencyModel,
)
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatDomain, Stats

__all__ = [
    "BarrierDesign",
    "Engine",
    "Event",
    "FlushMode",
    "MachineConfig",
    "PersistencyModel",
    "StatDomain",
    "Stats",
]
