"""Deterministic, seeded fault injection for the persist pipeline.

The robustness story of the flush protocol (section 4.1, Figure 8) rests
on every message of the handshake arriving: a lost BankAck would wedge
the arbiter, a stalled memory controller stretches the persist window a
crash can land in.  This module injects exactly those hazards, one knob
per protocol leg:

* **dropped FlushEpoch broadcasts** -- the copy crossing one fanout
  edge is lost; the arbiter retransmits after ``flush_epoch_timeout``
  with exponential backoff, bounded by ``max_flush_epoch_retries``.
  Edges are keyed by their *child* bank, which makes the coordinate
  scheme uniform across topologies: under the flat star every bank is a
  root child (edge == bank), under ``FanoutTopology.TREE`` a dropped
  edge delays the whole subtree hanging off it.
* **duplicated FlushEpoch broadcasts** -- the edge delivers a second
  copy.  The protocol is idempotent (a bank already issuing ignores the
  duplicate), so the only observable is the message count -- which is
  exactly what the injection proves.
* **fanout link delays** -- the FlushEpoch copy on one edge is rerouted
  ``link_delay_hops`` extra mesh hops (congestion / adaptive routing).
* **dropped BankAcks** -- the bank's ack is lost in the mesh; the bank
  times out and resends, bounded by ``max_ack_retries`` (the attempt at
  the retry bound is always delivered, so forward progress is
  guaranteed);
* **delayed BankAcks** -- the ack is rerouted ``delay_ack_hops`` extra
  mesh hops;
* **dropped PersistAcks** -- the controller's per-line ack back to the
  owning bank is lost; the controller retransmits after
  ``persist_ack_timeout`` with exponential backoff, bounded by
  ``max_persist_ack_retries``.  The line is already durable (the commit
  happened); only its acknowledgement is late.
* **dropped PersistCMP broadcasts** -- the completion broadcast to one
  bank is lost and retransmitted (bounded); the epoch's persist
  completion is delayed by the worst per-bank retry chain.
* **transient NVRAM bank stalls** -- a controller transaction's service
  start slips by ``mc_stall_cycles`` (media-level retries, thermal
  throttling);
* **torn line writes** -- the media write is detected torn
  (verify-after-write / ECC) and rewritten; each rewrite costs
  ``torn_write_cycles``, bounded by ``max_torn_write_retries``.
* **media write retries** -- a single transient retry costing
  ``write_retry_cycles`` (no chain).
* **persist reordering** -- a deliberately *unsound* fault: the NVRAM
  image buffers ``reorder_window`` data persists and records them in
  reversed order, modelling hardware that ignores the epoch ordering
  protocol.  Its sole purpose is the checker self-test: the crash sweep
  (:mod:`repro.recovery.crashsweep`) MUST raise
  :class:`~repro.recovery.checker.ConsistencyViolation` under it,
  proving the oracle can actually fail.

Every decision is a pure function of the seed and stable simulated
coordinates (core, bank, epoch sequence, line, attempt number,
controller write ordinal) via a splitmix64-style integer hash -- never
of wall clock, Python hashes, or a shared sequential PRNG stream.  Both
engine modes (fast paths and the ``REPRO_SLOW_ENGINE=1`` reference
heap) therefore make bit-identical fault decisions, which is what keeps
the determinism digests comparable across modes *with faults enabled*.

Besides the rate knobs, :attr:`FaultConfig.inject` targets *specific*
coordinates: ``(("persist_ack_drop", (core, seq, line)), ...)`` faults
exactly those protocol events (at attempt 0; the bounded retry machinery
then recovers).  The campaign driver
(:mod:`repro.recovery.campaign`) enumerates the injectable coordinates
of a captured run and probes them one at a time this way.

Every retry chain is bounded *twice*: the injector never faults an
attempt at or past the leg's retry bound, and the consuming state
machine independently raises :class:`ProtocolError` if a chain somehow
exceeds the bound (the simulated-time watchdog) -- a buggy injector
turns into a typed error, never a hang.

Fault injection deliberately does not cover the degenerate empty-bank
acks (a bank with no lines of the epoch): those model the arbiter's own
bookkeeping rather than mesh traffic, and faulting them would only
re-exercise the same retry path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

# Stream tags: one per decision kind, so the same coordinates never
# share a draw across kinds.
_STREAM_DROP = 1
_STREAM_DELAY = 2
_STREAM_MC = 3
_STREAM_FLUSH_EPOCH = 4
_STREAM_FLUSH_DUP = 5
_STREAM_LINK = 6
_STREAM_PERSIST_ACK = 7
_STREAM_PERSIST_CMP = 8
_STREAM_TORN = 9
_STREAM_WRETRY = 10

# The injectable protocol legs, by the name the targeted-injection
# tuples and the campaign driver use.  Coordinates per leg:
#
#   bank_ack_drop / bank_ack_detour : (core, bank, epoch_seq)
#   flush_epoch_drop / flush_epoch_dup / link_delay
#                                   : (core, edge_child_bank, epoch_seq)
#   persist_cmp_drop                : (core, bank, epoch_seq)
#   persist_ack_drop                : (core, epoch_seq, line)
#   mc_stall / torn_write / write_retry : (mc_id, ordinal)
FAULT_LEGS: Tuple[str, ...] = (
    "bank_ack_drop",
    "bank_ack_detour",
    "flush_epoch_drop",
    "flush_epoch_dup",
    "link_delay",
    "persist_ack_drop",
    "persist_cmp_drop",
    "mc_stall",
    "torn_write",
    "write_retry",
)


class ProtocolError(RuntimeError):
    """The flush/persist protocol's state machine was violated.

    Raised when a bank acks twice, when an ack-retry timeout fires for
    a bank that is no longer waiting, or when any bounded retry chain
    (FlushEpoch, BankAck, PersistAck, PersistCMP, torn-write rewrite)
    exceeds its configured bound -- the simulated-time watchdog that
    turns a non-terminating retry chain into a typed error instead of a
    hang.  All of these indicate a simulator bug (or a fault-injection
    hole), never a legal protocol state.
    """


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a strong 64-bit integer mixer."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def backoff_cycles(timeout: int, resends: int) -> int:
    """Total stall of a retry chain with ``resends`` retransmissions.

    Exponential backoff: retry ``i`` waits ``timeout * 2**i``, so the
    cumulative extra is ``timeout * (2**resends - 1)`` -- zero when the
    first transmission got through.
    """
    return timeout * ((1 << resends) - 1)


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault-injection layer.  All rates default to 0
    (no faults); ``reorder_window=0`` disables the unsound fault."""

    seed: int = 0
    # BankAck loss: probability per (data-bearing) BankAck transmission.
    drop_ack_rate: float = 0.0
    # Cycles the sending bank waits (past the nominal delivery time)
    # before concluding its ack was lost and resending.
    ack_timeout: int = 200
    # Retry bound: the ack sent at attempt == max_ack_retries is always
    # delivered, so a flush can stall at most max_ack_retries timeouts.
    max_ack_retries: int = 3
    # BankAck rerouting: probability and detour length in mesh hops.
    delay_ack_rate: float = 0.0
    delay_ack_hops: int = 2
    # FlushEpoch delivery loss, per fanout edge (keyed by child bank).
    drop_flush_epoch_rate: float = 0.0
    flush_epoch_timeout: int = 300
    max_flush_epoch_retries: int = 3
    # FlushEpoch duplication, per fanout edge.
    dup_flush_epoch_rate: float = 0.0
    # Fanout link congestion: probability and detour length per edge.
    link_delay_rate: float = 0.0
    link_delay_hops: int = 3
    # PersistAck loss: probability per flush-handshake line ack.
    drop_persist_ack_rate: float = 0.0
    persist_ack_timeout: int = 400
    max_persist_ack_retries: int = 3
    # PersistCMP loss: probability per per-bank completion broadcast.
    drop_persist_cmp_rate: float = 0.0
    persist_cmp_timeout: int = 300
    max_persist_cmp_retries: int = 3
    # Transient NVRAM stalls: probability per controller transaction,
    # and the service-start slip in cycles.
    mc_stall_rate: float = 0.0
    mc_stall_cycles: int = 100
    # Torn media writes: probability per rewrite attempt, rewrite cost,
    # and the rewrite-chain bound.
    torn_write_rate: float = 0.0
    torn_write_cycles: int = 150
    max_torn_write_retries: int = 3
    # Single-shot transient media retry.
    write_retry_rate: float = 0.0
    write_retry_cycles: int = 60
    # The unsound reorder-persists fault (checker self-test only):
    # buffer this many data/eviction persists and record them reversed.
    reorder_window: int = 0
    # Targeted injection: ((leg_name, coords), ...) faults exactly
    # those coordinates at attempt 0 (see FAULT_LEGS for the coordinate
    # scheme per leg), independently of the rate knobs.  The campaign
    # driver's exhaustive enumeration runs one such config per point.
    inject: Tuple[Tuple[str, Tuple[int, ...]], ...] = field(
        default_factory=tuple
    )


class FaultInjector:
    """Stateless-per-decision fault oracle built from a
    :class:`FaultConfig`.

    Decisions are order-independent: each is a hash of its coordinates,
    so replaying the same simulated events in a different wall-clock
    interleaving (fast vs reference engine) yields the same faults.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._base = _mix64(config.seed * _GOLDEN + 0x1234567)
        targets: Dict[str, Set[Tuple[int, ...]]] = {}
        for leg, coords in config.inject:
            if leg not in FAULT_LEGS:
                raise ValueError(
                    f"unknown fault leg {leg!r}; choose from {FAULT_LEGS}"
                )
            targets.setdefault(leg, set()).add(tuple(coords))
        self._targets = targets
        # Per-leg activity flags: consumers skip the whole fold (and
        # its draws) when a leg can never fire, which is what keeps an
        # all-zero FaultConfig digest-neutral and cheap.
        self.flush_epoch_active = (
            config.drop_flush_epoch_rate > 0.0
            or config.dup_flush_epoch_rate > 0.0
            or config.link_delay_rate > 0.0
            or "flush_epoch_drop" in targets
            or "flush_epoch_dup" in targets
            or "link_delay" in targets
        )
        self.persist_ack_active = (
            config.drop_persist_ack_rate > 0.0
            or "persist_ack_drop" in targets
        )
        self.persist_cmp_active = (
            config.drop_persist_cmp_rate > 0.0
            or "persist_cmp_drop" in targets
        )
        self.media_active = (
            config.torn_write_rate > 0.0
            or config.write_retry_rate > 0.0
            or "torn_write" in targets
            or "write_retry" in targets
        )

    # ------------------------------------------------------------------
    def _draw(self, stream: int, *coords: int) -> float:
        """A uniform [0, 1) draw keyed on (seed, stream, coords)."""
        x = self._base ^ (stream * _GOLDEN)
        for c in coords:
            x = _mix64(x ^ ((c & _MASK64) * _GOLDEN))
        return _mix64(x) / float(1 << 64)

    def _target(self, leg: str, coords: Tuple[int, ...]) -> bool:
        bucket = self._targets.get(leg)
        return bucket is not None and coords in bucket

    # ------------------------------------------------------------------
    # Flush-handshake faults (core/flush.py)
    # ------------------------------------------------------------------
    def drop_bank_ack(self, core_id: int, bank: int, epoch_seq: int,
                      attempt: int) -> bool:
        """True when this BankAck transmission is lost in the mesh.

        Bounded: the transmission at ``attempt == max_ack_retries`` is
        never dropped, so the retry chain always terminates.
        """
        cfg = self.config
        if attempt >= cfg.max_ack_retries:
            return False
        if attempt == 0 and self._target(
                "bank_ack_drop", (core_id, bank, epoch_seq)):
            return True
        if cfg.drop_ack_rate <= 0.0:
            return False
        return (
            self._draw(_STREAM_DROP, core_id, bank, epoch_seq, attempt)
            < cfg.drop_ack_rate
        )

    def bank_ack_detour(self, core_id: int, bank: int, epoch_seq: int,
                        attempt: int) -> int:
        """Extra mesh hops this BankAck is rerouted (0 = direct)."""
        cfg = self.config
        if attempt == 0 and self._target(
                "bank_ack_detour", (core_id, bank, epoch_seq)):
            return cfg.delay_ack_hops
        if cfg.delay_ack_rate <= 0.0:
            return 0
        if (
            self._draw(_STREAM_DELAY, core_id, bank, epoch_seq, attempt)
            < cfg.delay_ack_rate
        ):
            return cfg.delay_ack_hops
        return 0

    def flush_epoch_resends(self, core_id: int, bank: int,
                            epoch_seq: int) -> int:
        """Retransmissions of the FlushEpoch copy on one fanout edge.

        ``bank`` is the edge's child end.  0 means the first copy
        arrived; the chain is bounded by ``max_flush_epoch_retries``
        (the copy at the bound is never dropped).
        """
        cfg = self.config
        resends = 0
        if self._target("flush_epoch_drop", (core_id, bank, epoch_seq)):
            resends = 1
        if cfg.drop_flush_epoch_rate > 0.0:
            while (
                resends < cfg.max_flush_epoch_retries
                and self._draw(_STREAM_FLUSH_EPOCH, core_id, bank,
                               epoch_seq, resends)
                < cfg.drop_flush_epoch_rate
            ):
                resends += 1
        return resends

    def flush_epoch_dup(self, core_id: int, bank: int,
                        epoch_seq: int) -> bool:
        """True when the edge delivers a duplicate FlushEpoch copy."""
        cfg = self.config
        if self._target("flush_epoch_dup", (core_id, bank, epoch_seq)):
            return True
        if cfg.dup_flush_epoch_rate <= 0.0:
            return False
        return (
            self._draw(_STREAM_FLUSH_DUP, core_id, bank, epoch_seq)
            < cfg.dup_flush_epoch_rate
        )

    def link_delay(self, core_id: int, bank: int, epoch_seq: int) -> int:
        """Extra mesh hops the FlushEpoch copy on this edge detours."""
        cfg = self.config
        if self._target("link_delay", (core_id, bank, epoch_seq)):
            return cfg.link_delay_hops
        if cfg.link_delay_rate <= 0.0:
            return 0
        if (
            self._draw(_STREAM_LINK, core_id, bank, epoch_seq)
            < cfg.link_delay_rate
        ):
            return cfg.link_delay_hops
        return 0

    def persist_cmp_resends(self, core_id: int, bank: int,
                            epoch_seq: int) -> int:
        """Retransmissions of the PersistCMP broadcast to one bank."""
        cfg = self.config
        resends = 0
        if self._target("persist_cmp_drop", (core_id, bank, epoch_seq)):
            resends = 1
        if cfg.drop_persist_cmp_rate > 0.0:
            while (
                resends < cfg.max_persist_cmp_retries
                and self._draw(_STREAM_PERSIST_CMP, core_id, bank,
                               epoch_seq, resends)
                < cfg.drop_persist_cmp_rate
            ):
                resends += 1
        return resends

    # ------------------------------------------------------------------
    # Memory-controller faults (mem/nvram.py)
    # ------------------------------------------------------------------
    def persist_ack_resends(self, core_id: int, epoch_seq: int,
                            line: int) -> int:
        """Retransmissions of one flush-handshake PersistAck."""
        cfg = self.config
        resends = 0
        if self._target("persist_ack_drop", (core_id, epoch_seq, line)):
            resends = 1
        if cfg.drop_persist_ack_rate > 0.0:
            while (
                resends < cfg.max_persist_ack_retries
                and self._draw(_STREAM_PERSIST_ACK, core_id, epoch_seq,
                               line, resends)
                < cfg.drop_persist_ack_rate
            ):
                resends += 1
        return resends

    def mc_stall(self, mc_id: int, ordinal: int) -> int:
        """Service-start slip (cycles) for the controller's
        ``ordinal``-th transaction; 0 = no stall."""
        cfg = self.config
        if self._target("mc_stall", (mc_id, ordinal)):
            return cfg.mc_stall_cycles
        if cfg.mc_stall_rate <= 0.0:
            return 0
        if self._draw(_STREAM_MC, mc_id, ordinal) < cfg.mc_stall_rate:
            return cfg.mc_stall_cycles
        return 0

    def torn_write_retries(self, mc_id: int, ordinal: int) -> int:
        """Rewrites the controller's ``ordinal``-th write needed before
        it verified intact (0 = clean first write; bounded)."""
        cfg = self.config
        tears = 0
        if self._target("torn_write", (mc_id, ordinal)):
            tears = 1
        if cfg.torn_write_rate > 0.0:
            while (
                tears < cfg.max_torn_write_retries
                and self._draw(_STREAM_TORN, mc_id, ordinal, tears)
                < cfg.torn_write_rate
            ):
                tears += 1
        return tears

    def write_retry(self, mc_id: int, ordinal: int) -> bool:
        """True when the ``ordinal``-th write takes one transient media
        retry."""
        cfg = self.config
        if self._target("write_retry", (mc_id, ordinal)):
            return True
        if cfg.write_retry_rate <= 0.0:
            return False
        return self._draw(_STREAM_WRETRY, mc_id, ordinal) < \
            cfg.write_retry_rate

    # ------------------------------------------------------------------
    @property
    def reorder_window(self) -> int:
        return self.config.reorder_window
