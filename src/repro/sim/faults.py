"""Deterministic, seeded fault injection for the persist pipeline.

The robustness story of the flush protocol (section 4.1, Figure 8) rests
on every message of the handshake arriving: a lost BankAck would wedge
the arbiter, a stalled memory controller stretches the persist window a
crash can land in.  This module injects exactly those hazards:

* **dropped BankAcks** -- the bank's ack is lost in the mesh; the bank
  times out and resends, bounded by ``max_ack_retries`` (the attempt at
  the retry bound is always delivered, so forward progress is
  guaranteed);
* **delayed BankAcks** -- the ack is rerouted ``delay_ack_hops`` extra
  mesh hops (congestion / adaptive-routing detour);
* **transient NVRAM bank stalls** -- a controller transaction's service
  start slips by ``mc_stall_cycles`` (media-level retries, thermal
  throttling);
* **persist reordering** -- a deliberately *unsound* fault: the NVRAM
  image buffers ``reorder_window`` data persists and records them in
  reversed order, modelling hardware that ignores the epoch ordering
  protocol.  Its sole purpose is the checker self-test: the crash sweep
  (:mod:`repro.recovery.crashsweep`) MUST raise
  :class:`~repro.recovery.checker.ConsistencyViolation` under it,
  proving the oracle can actually fail.

Every decision is a pure function of the seed and stable simulated
coordinates (core, bank, epoch sequence, attempt number, controller
write ordinal) via a splitmix64-style integer hash -- never of wall
clock, Python hashes, or a shared sequential PRNG stream.  Both engine
modes (fast paths and the ``REPRO_SLOW_ENGINE=1`` reference heap)
therefore make bit-identical fault decisions, which is what keeps the
determinism digests comparable across modes *with faults enabled*.

Fault injection deliberately does not cover the degenerate empty-bank
acks (a bank with no lines of the epoch): those model the arbiter's own
bookkeeping rather than mesh traffic, and faulting them would only
re-exercise the same retry path.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

# Stream tags: one per decision kind, so the same coordinates never
# share a draw across kinds.
_STREAM_DROP = 1
_STREAM_DELAY = 2
_STREAM_MC = 3


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a strong 64-bit integer mixer."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault-injection layer.  All rates default to 0
    (no faults); ``reorder_window=0`` disables the unsound fault."""

    seed: int = 0
    # BankAck loss: probability per (data-bearing) BankAck transmission.
    drop_ack_rate: float = 0.0
    # Cycles the sending bank waits (past the nominal delivery time)
    # before concluding its ack was lost and resending.
    ack_timeout: int = 200
    # Retry bound: the ack sent at attempt == max_ack_retries is always
    # delivered, so a flush can stall at most max_ack_retries timeouts.
    max_ack_retries: int = 3
    # BankAck rerouting: probability and detour length in mesh hops.
    delay_ack_rate: float = 0.0
    delay_ack_hops: int = 2
    # Transient NVRAM stalls: probability per controller transaction,
    # and the service-start slip in cycles.
    mc_stall_rate: float = 0.0
    mc_stall_cycles: int = 100
    # The unsound reorder-persists fault (checker self-test only):
    # buffer this many data/eviction persists and record them reversed.
    reorder_window: int = 0


class FaultInjector:
    """Stateless-per-decision fault oracle built from a
    :class:`FaultConfig`.

    Decisions are order-independent: each is a hash of its coordinates,
    so replaying the same simulated events in a different wall-clock
    interleaving (fast vs reference engine) yields the same faults.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._base = _mix64(config.seed * _GOLDEN + 0x1234567)

    # ------------------------------------------------------------------
    def _draw(self, stream: int, *coords: int) -> float:
        """A uniform [0, 1) draw keyed on (seed, stream, coords)."""
        x = self._base ^ (stream * _GOLDEN)
        for c in coords:
            x = _mix64(x ^ ((c & _MASK64) * _GOLDEN))
        return _mix64(x) / float(1 << 64)

    # ------------------------------------------------------------------
    # Flush-handshake faults (core/flush.py)
    # ------------------------------------------------------------------
    def drop_bank_ack(self, core_id: int, bank: int, epoch_seq: int,
                      attempt: int) -> bool:
        """True when this BankAck transmission is lost in the mesh.

        Bounded: the transmission at ``attempt == max_ack_retries`` is
        never dropped, so the retry chain always terminates.
        """
        cfg = self.config
        if cfg.drop_ack_rate <= 0.0 or attempt >= cfg.max_ack_retries:
            return False
        return (
            self._draw(_STREAM_DROP, core_id, bank, epoch_seq, attempt)
            < cfg.drop_ack_rate
        )

    def bank_ack_detour(self, core_id: int, bank: int, epoch_seq: int,
                        attempt: int) -> int:
        """Extra mesh hops this BankAck is rerouted (0 = direct)."""
        cfg = self.config
        if cfg.delay_ack_rate <= 0.0:
            return 0
        if (
            self._draw(_STREAM_DELAY, core_id, bank, epoch_seq, attempt)
            < cfg.delay_ack_rate
        ):
            return cfg.delay_ack_hops
        return 0

    # ------------------------------------------------------------------
    # Memory-controller faults (mem/nvram.py)
    # ------------------------------------------------------------------
    def mc_stall(self, mc_id: int, ordinal: int) -> int:
        """Service-start slip (cycles) for the controller's
        ``ordinal``-th transaction; 0 = no stall."""
        cfg = self.config
        if cfg.mc_stall_rate <= 0.0:
            return 0
        if self._draw(_STREAM_MC, mc_id, ordinal) < cfg.mc_stall_rate:
            return cfg.mc_stall_cycles
        return 0

    # ------------------------------------------------------------------
    @property
    def reorder_window(self) -> int:
        return self.config.reorder_window
