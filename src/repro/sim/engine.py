"""Deterministic discrete-event engine.

The engine orders events by ``(time, priority, sequence)``.  The sequence
number makes ordering fully deterministic: two events scheduled for the
same cycle with the same priority fire in the order they were scheduled.
Determinism matters here because the persistence machinery is full of
races (flush completions vs. new conflicting requests) and reproducible
experiments are a hard requirement for the benchmark harness.

Components never spin; they schedule a callback for the cycle at which a
hardware event (message arrival, NVRAM write completion, ...) would occur
and return.  Blocking behaviour (a core stalled on an online persist) is
expressed by simply not scheduling the continuation until the unblocking
event fires.

Implementation notes -- the two-tier queue:

* The dominant event class by far is the zero-delay continuation: every
  op transition in :mod:`repro.cpu.processor` re-schedules itself for
  the *current* cycle.  Routing those through a binary heap costs two
  O(log n) operations plus an :class:`Event` allocation per transition.
  Instead, same-cycle default-priority work goes into a plain FIFO
  *ready deque* that is drained before the heap is consulted.
* The drain preserves the exact ``(time, priority, seq)`` firing order:
  every ready entry carries key ``(now, 0, seq)``, the deque is FIFO in
  ``seq``, and the heap head (whose time is always ``>= now``) is fired
  first whenever its key sorts below the ready head's -- i.e. when it is
  at the current cycle with a negative priority or an older sequence
  number.  The clock only advances off the heap, so the ready deque can
  never hold entries from two different cycles.
* :meth:`Engine.call_soon` is the allocation-free entry to the ready
  deque (no :class:`Event`, no cancellation support); ``schedule(0,
  ...)`` with default priority is routed there too but still returns a
  cancellable :class:`Event`.
* Timed events keep the min-heap of ``(time, priority, seq, event)``
  tuples, so ordering resolves through C-level tuple comparison.
  Cancellation is lazy: a cancelled event stays queued until it reaches
  the head, where it is dropped.  A live-event counter keeps
  :meth:`Engine.pending` O(1), and when cancelled entries come to
  dominate a large heap the queue is compacted in place.
* ``REPRO_SLOW_ENGINE=1`` in the environment forces the pure-heap
  reference path (every event, including ``call_soon``, goes through
  the heap) and disables :meth:`try_advance`.  The fast and reference
  paths fire callbacks in bit-identical order; the determinism-digest
  tests assert this across every persistency model.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

# Compact the heap when it holds more than this many entries and fewer
# than half of them are live.  Small heaps are never compacted; the
# rebuild would cost more than the dead entries it removes.
_COMPACT_MIN_SIZE = 64


def _slow_engine_requested() -> bool:
    return os.environ.get("REPRO_SLOW_ENGINE", "") not in ("", "0", "false")


def fast_paths_enabled() -> bool:
    """True unless ``REPRO_SLOW_ENGINE=1`` selected the reference mode.

    The flag gates every hot-path shortcut in the simulator, not just
    the engine's queues: the processor's attribute-held stat counters,
    the cache last-line memo and the machine's accounting hoists all
    fall back to their straightforward per-event reference
    implementations in slow mode.  That keeps the reference run an
    executable specification -- the determinism-digest tests assert the
    shortcuts change nothing -- and makes the ``repro bench`` speedup an
    honest fast-vs-reference comparison.  Read once at construction
    time, like :class:`Engine` does.
    """
    return not _slow_engine_requested()


class Event:
    """A scheduled callback; kept alive inside the queue entry tuple."""

    __slots__ = ("time", "callback", "args", "cancelled", "_engine")

    def __init__(self, time: int, callback: Callable[..., None],
                 args: tuple, engine: Optional["Engine"] = None) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing when it reaches the queue head.

        Idempotent: cancelling twice decrements the engine's live-event
        count exactly once.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancel()


class Engine:
    """The global event queue and simulation clock.

    Typical use::

        engine = Engine()
        engine.schedule(10, handler, arg1, arg2)
        engine.run()
        print(engine.now)
    """

    def __init__(self) -> None:
        # Heap entries are ``(time, priority, seq, event)`` for
        # cancellable work and ``(time, priority, seq, None, callback,
        # args)`` for the allocation-free schedule_call path; the unique
        # seq means tuple comparison never reaches element 3.
        self._queue: List[Tuple] = []
        # Same-cycle FIFO: (seq, callback, args, event-or-None).  Entries
        # with an Event were routed from schedule(0, ...) and may be
        # cancelled; call_soon entries carry None and cannot be.
        self._ready: Deque[
            Tuple[int, Callable[..., None], tuple, Optional[Event]]
        ] = deque()
        self._seq = 0
        self._live = 0
        self.now: int = 0
        self._stopped = False
        # True while run() is executing with no max_events bound; gates
        # the try_advance inline fast path.
        self._in_run = False
        self._until: Optional[int] = None
        # While positive, try_advance refuses to warp the clock.  Held
        # by components that dispatch several independent continuations
        # synchronously from one event (the epoch managers' waiter
        # loops): an inline completion inside the first continuation
        # must not advance ``now`` under the feet of the rest.
        self.advance_holds = 0
        # REPRO_SLOW_ENGINE=1 selects the pure-heap reference mode.
        self.fast = not _slow_engine_requested()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay runs later in the
        current cycle (after already-queued same-cycle events with lower
        sequence numbers).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        event = Event(time, callback, args, engine=self)
        if delay == 0 and priority == 0 and self.fast:
            self._ready.append((self._seq, callback, args, event))
        else:
            heapq.heappush(self._queue, (time, priority, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Queue ``callback(*args)`` for later in the current cycle.

        Equivalent to ``schedule(0, callback, *args)`` but without
        allocating an :class:`Event`; the continuation cannot be
        cancelled.  This is the hot-path API for the per-op state
        transitions of :mod:`repro.cpu.processor`.
        """
        if self.fast:
            self._ready.append((self._seq, callback, args, None))
            self._seq += 1
            self._live += 1
        else:
            self.schedule(0, callback, *args)

    def schedule_call(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule ``callback(*args)`` with no cancellation support.

        The timed sibling of :meth:`call_soon`: same firing order as
        ``schedule(delay, ...)`` (one sequence number is consumed either
        way) but without allocating an :class:`Event`, for the many hot
        callers -- core issue/compute self-schedules, memory-controller
        completions, request completions -- that never cancel.  In
        reference mode it degrades to plain :meth:`schedule`.
        """
        if not self.fast:
            self.schedule(delay, callback, *args)
            return
        if delay == 0:
            self._ready.append((self._seq, callback, args, None))
        elif delay > 0:
            heapq.heappush(
                self._queue,
                (self.now + delay, 0, self._seq, None, callback, args),
            )
        else:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        self._live += 1

    def schedule_fanout(
        self,
        delay: int,
        callback: Callable[..., None],
        items: list,
    ) -> None:
        """Schedule ``callback(item)`` for every item at ``now + delay``.

        The batching API for same-cycle message fan-outs (invalidation
        and ack broadcasts): one sequence number is consumed *per item*
        in both modes, so the firing order relative to interleaved
        scheduling is identical to per-item :meth:`schedule_call`, but
        in fast mode the whole batch occupies a single queue entry and
        the items dispatch back to back from :meth:`_run_fanout`.  The
        batch's sequence block is allocated synchronously, so no foreign
        event can land between two items of one fanout in either mode.

        Item callbacks must not schedule negative-priority work for the
        same cycle and expect it to preempt later items of the batch --
        the only ordering difference from per-item scheduling.
        """
        n = len(items)
        if n == 0:
            return
        if not self.fast:
            for item in items:
                self.schedule(delay, callback, item)
            return
        if n == 1:
            self.schedule_call(delay, callback, items[0])
            return
        if delay == 0:
            self._ready.append(
                (self._seq, self._run_fanout, (callback, items), None)
            )
        elif delay > 0:
            heapq.heappush(
                self._queue,
                (self.now + delay, 0, self._seq, None,
                 self._run_fanout, (callback, items)),
            )
        else:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += n
        self._live += n

    def _run_fanout(self, callback: Callable[..., None],
                    items: list) -> None:
        # The dispatcher decremented the live count once for the batch
        # entry; the remaining items are accounted here.  The clock hold
        # keeps an inline completion inside one item from warping ``now``
        # for the rest -- with per-item scheduling the queued siblings
        # would have refused the warp themselves.
        self._live -= len(items) - 1
        self.advance_holds += 1
        try:
            for item in items:
                callback(item)
        finally:
            self.advance_holds -= 1

    def schedule_fanout_groups(
        self,
        groups: list,
        callback: Callable[..., None],
    ) -> None:
        """Schedule several same-callback fanouts with one heap entry.

        ``groups`` is a list of ``(delay, items)`` pairs with
        non-descending, non-negative delays -- the shape of a broadcast
        whose receivers sit at different mesh distances.  Semantically
        identical to calling :meth:`schedule_fanout` once per group (one
        sequence number per item, allocated synchronously here), but in
        fast mode the *entire* multi-group broadcast occupies a single
        in-flight heap entry: when group ``g`` fires, the walker pushes
        group ``g + 1`` under its preallocated time/sequence key and
        dispatches group ``g``'s items back to back.  A 64-way broadcast
        spread over a dozen latency rings therefore costs one heap push
        per ring instead of one per receiver, and only one entry is ever
        resident.

        Ordering parity with the reference engine holds because the
        sequence block is contiguous across all groups (no foreign event
        can ever sort between two items of the broadcast) and each
        group's heap key ``(time, 0, first_seq)`` is exactly the key of
        its first item under per-item scheduling.  The
        :meth:`schedule_fanout` caveat applies: item callbacks must not
        schedule negative-priority same-cycle work and expect it to
        preempt later items.
        """
        if not self.fast:
            prev = 0
            for delay, items in groups:
                if delay < 0:
                    raise ValueError(
                        f"cannot schedule into the past (delay={delay})")
                if delay < prev:
                    raise ValueError("fanout group delays must ascend")
                prev = delay
                for item in items:
                    self.schedule(delay, callback, item)
            return
        now = self.now
        seq = self._seq
        total = 0
        plan = []
        prev = 0
        for delay, items in groups:
            if delay < 0:
                raise ValueError(
                    f"cannot schedule into the past (delay={delay})")
            if delay < prev:
                raise ValueError("fanout group delays must ascend")
            prev = delay
            if items:
                plan.append((now + delay, seq + total, items))
                total += len(items)
        if not plan:
            return
        self._seq = seq + total
        self._live += total
        time0, seq0, _items = plan[0]
        if time0 == now:
            self._ready.append(
                (seq0, self._run_fanout_groups, (callback, plan, 0), None)
            )
        else:
            heapq.heappush(
                self._queue,
                (time0, 0, seq0, None,
                 self._run_fanout_groups, (callback, plan, 0)),
            )

    def _run_fanout_groups(self, callback: Callable[..., None],
                           plan: list, index: int) -> None:
        # Same live-count arithmetic as _run_fanout, per group: the
        # dispatcher decremented once for this walker entry, the rest of
        # the group's preallocated counts are settled here.  The *next*
        # group's entry re-enters the queue under its preallocated key
        # without touching the live count (it was counted at schedule
        # time), and is pushed before this group's items run so their
        # callbacks can never observe the broadcast absent from the heap.
        _time, _seq, items = plan[index]
        nxt = index + 1
        if nxt < len(plan):
            t, s, _ = plan[nxt]
            heapq.heappush(
                self._queue,
                (t, 0, s, None, self._run_fanout_groups,
                 (callback, plan, nxt)),
            )
        self._live -= len(items) - 1
        self.advance_holds += 1
        try:
            for item in items:
                callback(item)
        finally:
            self.advance_holds -= 1

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute cycle count."""
        return self.schedule(time - self.now, callback, *args,
                             priority=priority)

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._live -= 1
        queue = self._queue
        if len(queue) > _COMPACT_MIN_SIZE and self._live * 2 < len(queue):
            # In-place slice assignment: ``run`` holds a local alias to
            # the queue list, so the list object must not be replaced.
            queue[:] = [
                entry for entry in queue
                if entry[3] is None or not entry[3].cancelled
            ]
            heapq.heapify(queue)

    def _discard_cancelled_head(self) -> None:
        """Reap cancelled entries at the heads of both queues.

        After it returns, the ready head and heap head (if any) are
        live.  Cancelled entries were already removed from the live
        count when they were cancelled.
        """
        ready = self._ready
        while ready and ready[0][3] is not None and ready[0][3].cancelled:
            ready.popleft()
        queue = self._queue
        while queue and queue[0][3] is not None and queue[0][3].cancelled:
            heapq.heappop(queue)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Runs until the queue is empty, the clock passes ``until``,
        ``stop()`` is called, or ``max_events`` events have fired.
        Returns the number of events executed.
        """
        executed = 0
        self._stopped = False
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        bounded = max_events is not None
        self._in_run = not bounded
        self._until = until
        try:
            while True:
                # Cancelled entries are reaped lazily at dispatch: a
                # popped entry whose event was cancelled is dropped
                # without firing (its live count was already decremented
                # at cancel time).  A cancelled *head* can therefore win
                # an ordering comparison below, but winning only gets it
                # popped and skipped, which preserves the firing order of
                # everything live.
                if self._stopped:
                    break
                if bounded and executed >= max_events:
                    break
                if ready:
                    # Ready head has key (now, 0, seq).  The heap head
                    # (time >= now) fires first only when it sorts below
                    # that key: same cycle with a negative priority or an
                    # older sequence number.
                    if queue:
                        head = queue[0]
                        if head[0] <= self.now and (
                            head[1] < 0
                            or (head[1] == 0 and head[2] < ready[0][0])
                        ):
                            entry = pop(queue)
                            event = entry[3]
                            if event is None:
                                self._live -= 1
                                entry[4](*entry[5])
                                executed += 1
                            elif not event.cancelled:
                                self._live -= 1
                                event.callback(*event.args)
                                executed += 1
                            continue
                    item = popleft()
                    event = item[3]
                    if event is not None and event.cancelled:
                        continue
                    self._live -= 1
                    item[1](*item[2])
                    executed += 1
                    continue
                if not queue:
                    break
                head = queue[0]
                time = head[0]
                if until is not None and time > until:
                    # All heap times are >= the head's, so nothing
                    # (cancelled or live) runs within the bound.
                    self.now = until
                    break
                entry = pop(queue)
                event = entry[3]
                if event is not None and event.cancelled:
                    continue
                self._live -= 1
                self.now = time
                if event is None:
                    entry[4](*entry[5])
                else:
                    event.callback(*event.args)
                executed += 1
        finally:
            self._in_run = False
            self._until = None
        return executed

    def try_advance(self, time: int) -> bool:
        """Claim the clock for an inline completion at ``time``.

        Returns True -- advancing ``now`` to ``time`` -- exactly when a
        callback scheduled at ``time`` would be the very next event to
        fire: nothing is pending at or before ``time``, no component
        holds the clock (``advance_holds``), and the active ``run()``
        would reach it (inside a bounded run the fast path is disabled
        so event accounting stays exact).  The caller then invokes the
        completion directly, skipping a heap round-trip; firing order
        is identical to the scheduled path by construction.

        The hold matters for soundness: a synchronous fan-out (an epoch
        waking several parked waiters in one event) is invisible to the
        queues, so without the hold the first waiter could warp ``now``
        and the remaining waiters would observe the wrong cycle.
        """
        if (
            not self._in_run
            or self._stopped
            or not self.fast
            or self.advance_holds
        ):
            return False
        if self._until is not None and time > self._until:
            return False
        self._discard_cancelled_head()
        if self._ready:
            return False
        queue = self._queue
        if queue and queue[0][0] <= time:
            return False
        self.now = time
        return True

    # ------------------------------------------------------------------
    # Fast-forward sessions
    # ------------------------------------------------------------------
    # A fast-forward session lets one component (the core's write-buffer
    # drain) advance a stretch of its own future work analytically while
    # interleaved foreign events still fire in exact (time, priority,
    # seq) order.  The session holds the clock (``advance_holds``), so
    # every inline-completion shortcut elsewhere conservatively
    # schedules -- the queues stay the single source of truth for
    # foreign work -- and the session's own *virtual* events live
    # outside the queues as (time, seq) keys that the caller merges
    # against :meth:`ff_next_key`.  Virtual events draw their sequence
    # numbers from :meth:`ff_take_seq`, the same counter real scheduling
    # uses, so a virtual event that has to be re-materialized into the
    # heap (session bail-out) lands exactly where its scheduled twin
    # would have been.  Virtual events are not counted in ``_live``; the
    # re-materializing caller adds them back.

    def ff_begin(self) -> bool:
        """Open a fast-forward session.

        Refuses (returning False) in reference mode, outside an
        unbounded :meth:`run`, after :meth:`stop`, or while any
        component holds the clock -- which includes another session, so
        sessions never nest.
        """
        if (
            not self.fast
            or not self._in_run
            or self._stopped
            or self.advance_holds
        ):
            return False
        self.advance_holds += 1
        return True

    def ff_end(self) -> None:
        """Close the session opened by the matching :meth:`ff_begin`."""
        self.advance_holds -= 1

    def ff_take_seq(self) -> int:
        """Allocate one sequence number for a virtual event."""
        seq = self._seq
        self._seq += 1
        return seq

    def ff_next_key(self) -> Optional[Tuple[int, int, int]]:
        """Key ``(time, priority, seq)`` of the next live queued event.

        Returns None when both queues are empty.  Mirrors :meth:`run`'s
        ordering: the ready head carries key ``(now, 0, seq)``, and the
        heap head wins exactly when its key sorts below that.
        """
        self._discard_cancelled_head()
        queue = self._queue
        ready = self._ready
        if ready:
            rkey = (self.now, 0, ready[0][0])
            if queue:
                head = queue[0]
                hkey = (head[0], head[1], head[2])
                if hkey < rkey:
                    return hkey
            return rkey
        if queue:
            head = queue[0]
            return (head[0], head[1], head[2])
        return None

    def ff_dispatch_one(self) -> None:
        """Fire exactly one queued event, exactly as :meth:`run` would.

        The caller has already decided via :meth:`ff_next_key` that this
        event precedes its next virtual event and has checked the
        stop/until bounds.  The clock advances off the heap just like in
        the main loop; cancelled entries are skipped without firing.
        """
        queue = self._queue
        ready = self._ready
        while True:
            if ready:
                if queue:
                    head = queue[0]
                    if head[0] <= self.now and (
                        head[1] < 0
                        or (head[1] == 0 and head[2] < ready[0][0])
                    ):
                        entry = heapq.heappop(queue)
                        event = entry[3]
                        if event is None:
                            self._live -= 1
                            entry[4](*entry[5])
                            return
                        if not event.cancelled:
                            self._live -= 1
                            event.callback(*event.args)
                            return
                        continue
                item = ready.popleft()
                event = item[3]
                if event is not None and event.cancelled:
                    continue
                self._live -= 1
                item[1](*item[2])
                return
            if not queue:
                return
            entry = heapq.heappop(queue)
            event = entry[3]
            if event is not None and event.cancelled:
                continue
            self._live -= 1
            self.now = entry[0]
            if event is None:
                entry[4](*entry[5])
            else:
                event.callback(*event.args)
            return

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._discard_cancelled_head()
        if self._ready:
            # Ready entries are always same-cycle work: the clock cannot
            # advance while any are queued.
            return self.now
        return self._queue[0][0] if self._queue else None
