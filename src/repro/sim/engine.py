"""Deterministic discrete-event engine.

The engine is a min-heap of :class:`Event` records keyed by
``(time, priority, sequence)``.  The sequence number makes ordering fully
deterministic: two events scheduled for the same cycle with the same
priority fire in the order they were scheduled.  Determinism matters here
because the persistence machinery is full of races (flush completions vs.
new conflicting requests) and reproducible experiments are a hard
requirement for the benchmark harness.

Components never spin; they schedule a callback for the cycle at which a
hardware event (message arrival, NVRAM write completion, ...) would occur
and return.  Blocking behaviour (a core stalled on an online persist) is
expressed by simply not scheduling the continuation until the unblocking
event fires.

Implementation notes:

* Heap entries are ``(time, priority, seq, event)`` tuples rather than
  rich objects, so ordering resolves through C-level tuple comparison
  (the sequence number is unique, so the event itself is never
  compared) -- a measurable win given the event volume of a multicore
  simulation.
* Cancellation is lazy: a cancelled event stays in the heap until it
  reaches the head, where :meth:`Engine._discard_cancelled_head` drops
  it.  This is the single place cancelled entries are reaped, shared by
  :meth:`Engine.run` and :meth:`Engine.peek_time`, so both observe the
  same head.  A live-event counter keeps :meth:`Engine.pending` O(1),
  and when cancelled entries come to dominate a large heap the queue is
  compacted in place so heap operations stay proportional to live work.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

# Compact the heap when it holds more than this many entries and fewer
# than half of them are live.  Small heaps are never compacted; the
# rebuild would cost more than the dead entries it removes.
_COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback; kept alive inside the heap entry tuple."""

    __slots__ = ("time", "callback", "args", "cancelled", "_engine")

    def __init__(self, time: int, callback: Callable[..., None],
                 args: tuple, engine: Optional["Engine"] = None) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing when it reaches the heap head.

        Idempotent: cancelling twice decrements the engine's live-event
        count exactly once.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancel()


class Engine:
    """The global event queue and simulation clock.

    Typical use::

        engine = Engine()
        engine.schedule(10, handler, arg1, arg2)
        engine.run()
        print(engine.now)
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, int, Event]] = []
        self._seq = 0
        self._live = 0
        self.now: int = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay runs later in the
        current cycle (after already-queued same-cycle events with lower
        sequence numbers).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        event = Event(time, callback, args, engine=self)
        heapq.heappush(self._queue, (time, priority, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute cycle count."""
        return self.schedule(time - self.now, callback, *args,
                             priority=priority)

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._live -= 1
        queue = self._queue
        if len(queue) > _COMPACT_MIN_SIZE and self._live * 2 < len(queue):
            # In-place slice assignment: ``run`` holds a local alias to
            # the queue list, so the list object must not be replaced.
            queue[:] = [entry for entry in queue if not entry[3].cancelled]
            heapq.heapify(queue)

    def _discard_cancelled_head(self) -> None:
        """Reap cancelled entries at the heap head.

        The one place lazy deletion resolves; after it returns, the head
        (if any) is live.  Cancelled entries were already removed from
        the live count when they were cancelled.
        """
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Runs until the queue is empty, the clock passes ``until``,
        ``stop()`` is called, or ``max_events`` events have fired.
        Returns the number of events executed.
        """
        executed = 0
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        while True:
            self._discard_cancelled_head()
            if not queue or self._stopped:
                break
            if max_events is not None and executed >= max_events:
                break
            time = queue[0][0]
            if until is not None and time > until:
                self.now = until
                break
            event = pop(queue)[3]
            self._live -= 1
            self.now = time
            event.callback(*event.args)
            executed += 1
        return executed

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._discard_cancelled_head()
        return self._queue[0][0] if self._queue else None
