"""Machine configuration (Table 1 of the paper) and experiment knobs.

The paper's evaluation machine (Table 1)::

    Cores                 32 OoO cores @ 2GHz
    ROB Size              192 Entry
    Write Buffer          32 Entry
    L1 I/D Cache          32KB 64B lines, 4-way
    L1 Access Latency     3 cycles
    L2 Cache              1MB x 32 tiles, 64B lines, 16-way
    L2 Access Latency     30 cycles
    Memory Controllers    4
    NVRAM Access Latency  360 (240) cycles write (read)
    On-chip network       2D Mesh, 4 rows, 16B flits

:meth:`MachineConfig.paper` reproduces this configuration exactly.
:meth:`MachineConfig.small` is a scaled-down machine (8 cores, smaller
caches) used as the default for tests and benchmarks so the whole suite
runs on a laptop; every result the paper reports is a *normalized* ratio,
which is stable under this scaling (see DESIGN.md section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class BarrierDesign(enum.Enum):
    """The persist-barrier designs evaluated in the paper.

    * ``LB``      -- the lazy barrier of Condit et al. (state of the art).
    * ``LB_IDT``  -- LB + inter-thread dependence tracking (section 3.1).
    * ``LB_PF``   -- LB + proactive flushing (section 3.2).
    * ``LB_PP``   -- LB++ = LB + IDT + PF (the paper's contribution).
    """

    LB = "LB"
    LB_IDT = "LB+IDT"
    LB_PF = "LB+PF"
    LB_PP = "LB++"

    @property
    def uses_idt(self) -> bool:
        return self in (BarrierDesign.LB_IDT, BarrierDesign.LB_PP)

    @property
    def uses_pf(self) -> bool:
        return self in (BarrierDesign.LB_PF, BarrierDesign.LB_PP)


class PersistencyModel(enum.Enum):
    """Persistency models from Pelley et al. enforced by the barrier.

    * ``NP``  -- no persistency guarantees; the baseline of section 7.2.
    * ``SP``  -- strict persistency: each store persists before the next
      becomes visible (write-through behaviour, Figure 1a).
    * ``EP``  -- epoch persistency: the core stalls at each barrier until
      the previous epoch has persisted (Figure 1b).
    * ``BEP`` -- buffered epoch persistency: execution continues across
      barriers; the cache subsystem orders epoch persists (Figure 1c).
    * ``BSP`` -- buffered strict persistency in bulk mode: hardware groups
      stores into epochs, checkpoints register state, and undo-logs for
      epoch atomicity (section 5.2).
    * ``BSP_WT`` -- the naive write-through implementation of BSP that the
      paper measures at ~8x NP and discards (section 7.2).
    """

    NP = "NP"
    SP = "SP"
    EP = "EP"
    BEP = "BEP"
    BSP = "BSP"
    BSP_WT = "BSP-WT"

    @property
    def buffered(self) -> bool:
        return self in (PersistencyModel.BEP, PersistencyModel.BSP)

    @property
    def hardware_epochs(self) -> bool:
        """True when hardware, not the programmer, inserts barriers."""
        return self in (PersistencyModel.BSP, PersistencyModel.BSP_WT)


class FanoutTopology(enum.Enum):
    """How the flush handshake's broadcast legs spread across banks.

    ``FLAT`` delivers FlushEpoch/PersistCMP point-to-point from the
    initiating core's tile to every bank (one message per bank, latency
    = the core->bank mesh distance).  ``TREE`` routes the same messages
    through a ``fanout_degree``-ary aggregation tree rooted at the
    core's tile: each hop forwards to at most ``fanout_degree``
    children, and BankAcks combine on the way back up, so a 64-bank
    handshake costs O(log n) sequential latency and the simulator can
    batch whole subtrees into single events.  At ``llc_banks <=
    fanout_degree`` the tree degenerates to the flat star, making the
    two modes event-for-event identical on small machines.
    """

    FLAT = "flat"
    TREE = "tree"


class HandshakeProtocol(enum.Enum):
    """Who coordinates the Figure 8 persist handshake.

    ``ARBITER`` is the paper's design: the initiating core's arbiter
    collects one BankAck per bank and broadcasts one PersistCMP per
    bank -- O(n) messages per flush.  ``ALL_TO_ALL`` models the strawman
    the paper argues against: every bank announces its ack to every
    other bank (and the initiator) so each can locally determine
    completion -- the same event timeline, but n messages per ack and
    no PersistCMP broadcast, i.e. O(n^2) messages per flush.  The
    simulated *timing* is identical by construction (completion is
    known as soon as the last ack lands); only the message accounting
    differs, which is exactly the axis the scaling bench measures.
    """

    ARBITER = "arbiter"
    ALL_TO_ALL = "all-to-all"


class FlushMode(enum.Enum):
    """Whether a persist-flush invalidates the cached copy.

    ``CLWB`` (non-invalidating, what LB++ uses) keeps the line cached and
    merely cleans it; ``CLFLUSH`` evicts it, destroying locality.  The
    paper measures CLWB as ~30% faster (section 7).
    """

    CLWB = "clwb"
    CLFLUSH = "clflush"


@dataclass(frozen=True)
class MachineConfig:
    """Full description of the simulated multicore (Table 1)."""

    # Cores
    num_cores: int = 32
    write_buffer_entries: int = 32
    issue_width_cycles: int = 1  # cycles consumed issuing one memory op

    # Caches
    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_assoc: int = 4
    l1_latency: int = 3
    llc_bank_size: int = 1024 * 1024
    llc_assoc: int = 16
    llc_latency: int = 30
    # One LLC bank per core tile, as in the paper's tiled design.
    llc_banks: int = 32

    # Memory
    num_memory_controllers: int = 4
    nvram_read_latency: int = 240
    nvram_write_latency: int = 360
    # Minimum cycles between successive line writes retired by one MC
    # (bandwidth model; the latency above is pipelined behind this).
    mc_write_occupancy: int = 24
    mc_read_occupancy: int = 12

    # On-chip network: 2D mesh, `mesh_rows` rows as in Table 1.
    mesh_rows: int = 4
    hop_latency: int = 2
    router_latency: int = 1

    # Persistence machinery (section 4.3)
    max_inflight_epochs: int = 8  # 3-bit epoch IDs
    idt_registers_per_epoch: int = 4
    # Ablation knob: pretend the Figure 8 arbiter handshake is free
    # (zero-latency FlushEpoch/BankAck/PersistCMP messages) to isolate
    # the coordination cost of the multi-banked flush protocol.
    ideal_flush_coordination: bool = False
    # Broadcast topology for the handshake's FlushEpoch/BankAck legs
    # and the protocol variant whose message complexity is accounted
    # (see the enum docstrings; timing-neutral by construction for
    # ALL_TO_ALL, latency-shaping for TREE).
    fanout_topology: FanoutTopology = FanoutTopology.FLAT
    fanout_degree: int = 4
    handshake_protocol: HandshakeProtocol = HandshakeProtocol.ARBITER
    flush_mode: FlushMode = FlushMode.CLWB
    barrier_design: BarrierDesign = BarrierDesign.LB_PP
    persistency: PersistencyModel = PersistencyModel.BEP

    # BSP bulk mode (section 5.2)
    bsp_epoch_stores: int = 10_000
    # Registers checkpointed per epoch: GPRs + special + privilege + FP
    # (non-AVX) comes to ~13 cache lines.
    checkpoint_bytes: int = 832
    undo_logging: bool = True

    # Address-space layout
    mem_size: int = 1 << 32
    log_region_base: int = 0xF000_0000
    checkpoint_region_base: int = 0xF800_0000

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a power of two")
        if self.llc_banks < 1 or self.num_memory_controllers < 1:
            raise ValueError("need at least one LLC bank and one MC")
        if self.mesh_rows < 1:
            raise ValueError("mesh needs at least one row")
        if self.max_inflight_epochs < 2:
            raise ValueError("need at least two in-flight epochs")
        if self.fanout_degree < 2:
            raise ValueError("fanout tree degree must be at least 2")

    # ------------------------------------------------------------------
    # Stock configurations
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides) -> "MachineConfig":
        """The exact Table 1 machine."""
        return cls(**overrides)

    @classmethod
    def small(cls, **overrides) -> "MachineConfig":
        """A laptop-scale machine: 8 cores, proportionally sized LLC.

        Cache capacities are scaled so that working-set pressure (and
        therefore natural eviction rates, the engine behind LB's offline
        persists) remains comparable to the paper machine per core.
        """
        defaults = dict(
            num_cores=8,
            llc_banks=8,
            l1_size=16 * 1024,
            llc_bank_size=256 * 1024,
            num_memory_controllers=2,
            mesh_rows=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, **overrides) -> "MachineConfig":
        """A 2-core machine for fast unit tests."""
        defaults = dict(
            num_cores=2,
            llc_banks=2,
            l1_size=4 * 1024,
            llc_bank_size=32 * 1024,
            num_memory_controllers=1,
            mesh_rows=1,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_(self, **overrides) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def l1_sets(self) -> int:
        return self.l1_size // (self.line_size * self.l1_assoc)

    @property
    def llc_bank_sets(self) -> int:
        return self.llc_bank_size // (self.line_size * self.llc_assoc)

    @property
    def offset_bits(self) -> int:
        return self.line_size.bit_length() - 1

    def line_of(self, addr: int) -> int:
        """Cache-line address (aligned) containing byte address ``addr``."""
        return addr & ~(self.line_size - 1)

    def lines_in(self, addr: int, size: int) -> list[int]:
        """All line addresses touched by an access of ``size`` bytes."""
        first = self.line_of(addr)
        last = self.line_of(addr + size - 1)
        return list(range(first, last + 1, self.line_size))
