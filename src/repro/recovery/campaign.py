"""Systematic fault campaigns over the persist-barrier protocol.

A single faulted run proves one hand-picked hazard is survivable.  A
*campaign* proves the protocol against the whole fault space of a
workload: capture one fault-free baseline run, enumerate every
injectable coordinate its protocol traffic exposes (every FlushEpoch
edge, BankAck, PersistAck, PersistCMP copy, and controller transaction
-- see :data:`repro.sim.faults.FAULT_LEGS`), then re-run the workload
once per coordinate with exactly that fault targeted
(:attr:`~repro.sim.faults.FaultConfig.inject`).  Seeded randomized
multi-fault rounds compose several coordinates per run on top of the
exhaustive singles.

Every probed run is triaged into one of three verdicts:

* ``survived`` -- the run completed, the machine's structural audit
  passed, every truncation point of its persist history satisfies the
  recovery checkers (:func:`~repro.recovery.crashsweep.
  sweep_crash_points`, including the workload's semantic queue checks),
  and the final durable image equals the baseline's: the fault cost
  time, not correctness.
* ``aborted-clean`` -- a retry chain exceeded its configured bound and
  the simulated-time watchdog raised
  :class:`~repro.sim.faults.ProtocolError`; the partial durable state
  left behind still passes every checker.  The machine failed *stop*,
  not *silent*.
* ``violation`` -- anything else: a wedged run, a checker rejection, or
  a diverged durable image.  Each violation carries a minimized repro
  command (greedy fixed-point removal of injected faults while the
  verdict still fails) so the failure is one paste away from a
  debugger.

Verdicts are pure functions of the spec: the injector draws from stable
simulated coordinates (never wall clock), so the fast and reference
engines -- and any process, any shard -- produce identical verdict
maps, which the bench's ``campaign`` family asserts.

The deliberately unsound ``reorder_window`` fault is the campaign's
self-test (:func:`campaign_selftest`): it must be triaged as a
violation, proving the triage can actually fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.recovery.crash import CrashOutcome, snapshot_epochs
from repro.recovery.crashsweep import sweep_crash_points
from repro.sim.config import (
    BarrierDesign,
    FanoutTopology,
    MachineConfig,
    PersistencyModel,
)
from repro.sim.faults import (
    _GOLDEN,
    FaultConfig,
    ProtocolError,
    _mix64,
)
from repro.system import Multicore, RunResult
from repro.workloads.micro import make_benchmark

# Verdict strings (stable: they appear in reports, digests, and CI logs).
SURVIVED = "survived"
ABORTED_CLEAN = "aborted-clean"
VIOLATION = "violation"

_PINGPONG_CONFLICT_RATE = 1.0


class FaultPoint(NamedTuple):
    """One injectable coordinate of a captured run."""

    leg: str
    coords: Tuple[int, ...]


Inject = Tuple[Tuple[str, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign's workload and fault-space parameters.

    ``mc_stride`` thins the controller-transaction legs (stall / torn /
    retry), which otherwise dominate the point count: only every
    ``mc_stride``-th ordinal is probed.
    """

    workload: str = "pingpong"          # "pingpong" | "queue"
    design: BarrierDesign = BarrierDesign.LB_PP
    num_cores: int = 4
    transactions: int = 6
    seed: int = 1
    fault_seed: int = 0
    mc_stride: int = 1
    # Route FlushEpoch down the degree-4 fanout tree instead of the
    # flat star; the edge legs then cover every tree edge on the path.
    tree: bool = False

    def describe(self) -> str:
        return (
            f"{self.workload}/{self.design.name.lower()} "
            f"{self.num_cores}c x{self.transactions} seed={self.seed} "
            f"fault_seed={self.fault_seed}"
            + (" tree" if self.tree else "")
        )


@dataclass
class CampaignEntry:
    """Verdict for one probed fault combination."""

    inject: Inject
    verdict: str
    detail: str = ""
    repro: Optional[str] = None

    def key(self) -> Tuple:
        """The cross-engine parity key: what was injected, what came
        of it."""
        return (self.inject, self.verdict)


@dataclass
class CampaignReport:
    """Outcome of one campaign."""

    spec: CampaignSpec
    entries: List[CampaignEntry] = field(default_factory=list)
    exhaustive_points: int = 0
    random_rounds: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violations(self) -> List[CampaignEntry]:
        return [e for e in self.entries if e.verdict == VIOLATION]

    @property
    def survived(self) -> int:
        return sum(1 for e in self.entries if e.verdict == SURVIVED)

    @property
    def aborted(self) -> int:
        return sum(1 for e in self.entries if e.verdict == ABORTED_CLEAN)

    def verdict_map(self) -> Dict[Inject, str]:
        """Injected-faults -> verdict, the map two engines must agree
        on exactly."""
        return {e.inject: e.verdict for e in self.entries}

    def summary(self) -> str:
        return (
            f"campaign {self.spec.describe()}: {len(self.entries)} runs "
            f"({self.exhaustive_points} exhaustive, "
            f"{self.random_rounds} randomized) -> "
            f"{self.survived} survived, {self.aborted} aborted-clean, "
            f"{len(self.violations)} violation(s)"
        )


@dataclass
class _RunProbe:
    """One faulted run plus everything the triage inspects."""

    machine: Multicore
    result: Optional[RunResult]
    outcome: CrashOutcome
    queues: Sequence
    error: Optional[ProtocolError]


# ----------------------------------------------------------------------
# Workload setup (kept local: recovery must not import the harness)
# ----------------------------------------------------------------------
def _setup(spec: CampaignSpec):
    """Config, per-core programs, and semantic-check queues for a spec.

    ``pingpong`` replicates the bench's contended multicore shape (one
    LLC bank per tile on a 2-row mesh, fully conflicting
    producer/consumer pairs); ``queue`` is the Figure 10 durable queue,
    whose recovered head/slot values the sweep validates semantically.
    """
    if spec.workload == "pingpong":
        overrides = {}
        if spec.tree:
            overrides["fanout_topology"] = FanoutTopology.TREE
        config = MachineConfig.tiny(
            persistency=PersistencyModel.BEP,
            barrier_design=spec.design,
            num_cores=spec.num_cores,
            llc_banks=spec.num_cores,
            mesh_rows=2,
            **overrides,
        )
        programs = [
            list(
                make_benchmark(
                    "pingpong", thread_id=tid, seed=spec.seed,
                    line_size=config.line_size,
                    conflict_rate=_PINGPONG_CONFLICT_RATE,
                ).ops(spec.transactions)
            )
            for tid in range(config.num_cores)
        ]
        return config, programs, ()
    if spec.workload == "queue":
        config = MachineConfig.tiny(
            persistency=PersistencyModel.BEP,
            barrier_design=spec.design,
        )
        queue = make_benchmark(
            "queue", thread_id=0, seed=spec.seed,
            line_size=config.line_size,
        )
        programs = [list(queue.ops(spec.transactions))]
        return config, programs, (queue,)
    raise ValueError(
        f"unknown campaign workload {spec.workload!r} "
        "(choose pingpong or queue)"
    )


def _run_probe(spec: CampaignSpec,
               fault_config: Optional[FaultConfig]) -> _RunProbe:
    """Run the spec's workload under ``fault_config`` and capture the
    persist history; a watchdog :class:`ProtocolError` aborts the run
    but still yields its partial outcome for triage."""
    config, programs, queues = _setup(spec)
    machine = Multicore(
        config, track_values=True, track_persist_order=True,
        keep_epoch_log=True, faults=fault_config,
    )
    error: Optional[ProtocolError] = None
    result: Optional[RunResult] = None
    try:
        result = machine.run(programs)
    except ProtocolError as exc:
        error = exc
    outcome = CrashOutcome(
        crash_cycle=machine.engine.now,
        image=machine.image,
        epochs=snapshot_epochs(machine),
    )
    return _RunProbe(machine, result, outcome, queues, error)


def run_baseline(spec: CampaignSpec) -> _RunProbe:
    """The fault-free capture the campaign enumerates and compares
    against.  Built with an all-zero :class:`FaultConfig` (digest-
    neutral by test) so the protocol walks the same event-level ack
    paths the faulted probes do."""
    probe = _run_probe(spec, FaultConfig(seed=spec.fault_seed))
    if probe.error is not None or probe.result is None \
            or not probe.result.finished:
        raise RuntimeError(
            f"campaign baseline did not complete: {spec.describe()}"
        )
    report = sweep_crash_points(probe.outcome, queues=probe.queues,
                                raise_on_violation=False)
    if not report.ok:
        raise RuntimeError(
            "campaign baseline fails its own crash sweep at point "
            f"{report.first_violation}: {report.violation}"
        )
    return probe


# ----------------------------------------------------------------------
# Fault-space enumeration
# ----------------------------------------------------------------------
def enumerate_points(spec: CampaignSpec,
                     baseline: _RunProbe) -> List[FaultPoint]:
    """Every injectable coordinate the baseline run's traffic exposes.

    Derived from stable simulated coordinates only -- the persist
    history's (core, epoch seq, line) triples and the controllers'
    transaction ordinals -- so the same spec enumerates the same points
    in any process and either engine mode.  Handshake legs enumerate
    per flushed epoch and per *used* bank (idle-bank acks are virtual
    and deliberately unfaulted); under ``FanoutTopology.TREE`` the
    FlushEpoch edge legs cover every edge on the root-to-bank path.
    PersistCMP covers every bank -- the completion broadcast reaches
    idle banks too.
    """
    machine = baseline.machine
    config = machine.config
    shift = config.offset_bits
    num_banks = config.llc_banks
    tree_mode = config.fanout_topology is FanoutTopology.TREE

    # (core, seq) -> used banks, plus per-line PersistAck coordinates,
    # straight from the flush-handshake persists of the history.
    epoch_banks: Dict[Tuple[int, int], List[int]] = {}
    points: List[FaultPoint] = []
    seen_ack: set = set()
    for record in baseline.outcome.image.history:
        if record.kind != "data" or record.epoch_seq < 0:
            continue
        key = (record.core_id, record.epoch_seq)
        bank = (record.line >> shift) % num_banks
        banks = epoch_banks.setdefault(key, [])
        if bank not in banks:
            banks.append(bank)
        ack = (record.core_id, record.epoch_seq, record.line)
        if ack not in seen_ack:
            seen_ack.add(ack)
            points.append(FaultPoint("persist_ack_drop", ack))

    for (core, seq), banks in sorted(epoch_banks.items()):
        edges: List[int] = []
        if tree_mode:
            parents = machine.mesh.flush_tree(core).parents
            for bank in banks:
                b = bank
                while b >= 0:
                    if b not in edges:
                        edges.append(b)
                    b = parents[b]
        else:
            edges = list(banks)
        for edge in sorted(edges):
            coords = (core, edge, seq)
            points.append(FaultPoint("flush_epoch_drop", coords))
            points.append(FaultPoint("flush_epoch_dup", coords))
            points.append(FaultPoint("link_delay", coords))
        for bank in sorted(banks):
            coords = (core, bank, seq)
            points.append(FaultPoint("bank_ack_drop", coords))
            points.append(FaultPoint("bank_ack_detour", coords))
        for bank in range(num_banks):
            points.append(FaultPoint("persist_cmp_drop",
                                     (core, bank, seq)))

    stride = max(1, spec.mc_stride)
    for mc in machine.mcs:
        for ordinal in range(0, mc._txn_ordinal, stride):
            coords = (mc.mc_id, ordinal)
            points.append(FaultPoint("mc_stall", coords))
            points.append(FaultPoint("torn_write", coords))
            points.append(FaultPoint("write_retry", coords))
    return points


# ----------------------------------------------------------------------
# Triage
# ----------------------------------------------------------------------
def repro_command(spec: CampaignSpec, inject: Inject,
                  reorder_window: int = 0) -> str:
    """The one-paste reproduction command for a probed combination."""
    parts = [
        "python -m repro campaign",
        f"--workload {spec.workload}",
        f"--design {spec.design.name.lower()}",
        f"--cores {spec.num_cores}",
        f"--transactions {spec.transactions}",
        f"--seed {spec.seed}",
        f"--fault-seed {spec.fault_seed}",
    ]
    if spec.tree:
        parts.append("--tree")
    for leg, coords in inject:
        parts.append(
            "--inject " + leg + ":" + ",".join(str(c) for c in coords)
        )
    if reorder_window:
        parts.append(f"--reorder-window {reorder_window}")
    return " ".join(parts)


def triage(spec: CampaignSpec, inject: Inject,
           baseline_values: Optional[Dict[int, Dict[int, object]]],
           probe: Optional[_RunProbe] = None) -> CampaignEntry:
    """Run ``inject`` (unless ``probe`` is supplied) and classify it.

    ``baseline_values`` enables the byte-exact final-image comparison.
    It is only sound for race-free workloads (``queue``): on contended
    ones a fault legitimately shifts which core's store lands last on a
    shared line, so callers pass None there and the crash sweep's
    order/semantic checks carry the verdict alone.
    """
    if probe is None:
        probe = _run_probe(
            spec, FaultConfig(seed=spec.fault_seed, inject=inject)
        )
    if probe.error is not None:
        # Watchdog abort: survivable iff what made it to NVRAM is
        # still a consistent crash state.
        report = sweep_crash_points(probe.outcome, queues=probe.queues,
                                    raise_on_violation=False)
        if report.ok:
            return CampaignEntry(
                inject, ABORTED_CLEAN,
                detail=f"watchdog: {probe.error}",
            )
        return CampaignEntry(
            inject, VIOLATION,
            detail=(
                f"watchdog abort left an inconsistent image (point "
                f"{report.first_violation}: {report.violation})"
            ),
            repro=repro_command(spec, inject),
        )
    if probe.result is None or not probe.result.finished:
        return CampaignEntry(
            inject, VIOLATION,
            detail="run wedged: the event queue drained before every "
                   "core finished",
            repro=repro_command(spec, inject),
        )
    report = sweep_crash_points(probe.outcome, queues=probe.queues,
                                raise_on_violation=False)
    if not report.ok:
        return CampaignEntry(
            inject, VIOLATION,
            detail=(
                f"crash sweep rejects point {report.first_violation} "
                f"of {report.history_len}: {report.violation}"
            ),
            repro=repro_command(spec, inject),
        )
    try:
        probe.machine.audit()
    except AssertionError as exc:
        return CampaignEntry(
            inject, VIOLATION,
            detail=f"machine audit failed: {exc}",
            repro=repro_command(spec, inject),
        )
    if (
        baseline_values is not None
        and probe.machine.image.values != baseline_values
    ):
        return CampaignEntry(
            inject, VIOLATION,
            detail="final durable image diverged from the fault-free "
                   "baseline",
            repro=repro_command(spec, inject),
        )
    return CampaignEntry(inject, SURVIVED)


def minimize_inject(inject: Inject,
                    still_fails: Callable[[Inject], bool]) -> Inject:
    """Greedy fixed-point 1-minimization of a failing combination.

    Repeatedly drops any single fault whose removal keeps
    ``still_fails`` true, until no single removal does.  The result is
    1-minimal (every remaining fault is necessary), which for the
    single-digit combinations randomized rounds produce is the full
    minimum in practice.  Pure: the caller supplies the failure oracle.
    """
    current = list(inject)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for i in range(len(current)):
            trial = tuple(current[:i] + current[i + 1:])
            if still_fails(trial):
                current = list(trial)
                shrunk = True
                break
    return tuple(current)


# ----------------------------------------------------------------------
# Campaign drivers
# ----------------------------------------------------------------------
def random_injects(points: Sequence[FaultPoint], rounds: int,
                   faults_per_round: int, fault_seed: int) -> List[Inject]:
    """Seeded multi-fault combinations drawn from the enumerated
    points -- a pure function of (points, rounds, size, seed), so every
    engine and process probes the same combinations."""
    if not points or rounds <= 0:
        return []
    injects: List[Inject] = []
    base = _mix64(fault_seed * _GOLDEN + 0xC0FFEE)
    for r in range(rounds):
        chosen: List[FaultPoint] = []
        for j in range(faults_per_round):
            draw = _mix64(base ^ _mix64(r * 0x10001 + j))
            point = points[draw % len(points)]
            if point not in chosen:
                chosen.append(point)
        injects.append(tuple((p.leg, p.coords) for p in chosen))
    return injects


def run_campaign(
    spec: CampaignSpec,
    exhaustive: bool = True,
    random_rounds: int = 0,
    faults_per_round: int = 3,
    max_points: Optional[int] = None,
    minimize: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Explore the spec's fault space and triage every probe.

    ``max_points`` caps the exhaustive enumeration (taking a
    deterministic prefix) for smoke-sized runs; ``minimize`` controls
    whether multi-fault violations are shrunk before reporting (single
    faults are already minimal).
    """
    baseline = run_baseline(spec)
    # Byte-exact image comparison only for race-free workloads (see
    # triage): a contended run's shared-line winners may shift.
    baseline_values = (
        baseline.machine.image.values if spec.workload == "queue"
        else None
    )
    points = enumerate_points(spec, baseline)
    report = CampaignReport(spec=spec)

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    singles: List[FaultPoint] = []
    if exhaustive:
        singles = points if max_points is None else points[:max_points]
        note(f"exhaustive: {len(singles)} of {len(points)} injectable "
             f"coordinates")
        for i, point in enumerate(singles):
            entry = triage(spec, ((point.leg, point.coords),),
                           baseline_values)
            report.entries.append(entry)
            if entry.verdict == VIOLATION:
                note(f"  VIOLATION at {point.leg}{point.coords}: "
                     f"{entry.detail}")
            if (i + 1) % 200 == 0:
                note(f"  ... {i + 1}/{len(singles)} probed")
    report.exhaustive_points = len(singles)

    combos = random_injects(points, random_rounds, faults_per_round,
                            spec.fault_seed)
    if combos:
        note(f"randomized: {len(combos)} multi-fault rounds "
             f"(<= {faults_per_round} faults each)")
    for inject in combos:
        entry = triage(spec, inject, baseline_values)
        if entry.verdict == VIOLATION and minimize and len(inject) > 1:
            def still_fails(trial: Inject) -> bool:
                return (
                    triage(spec, trial, baseline_values).verdict
                    == VIOLATION
                )
            minimal = minimize_inject(inject, still_fails)
            if minimal != inject:
                entry = triage(spec, minimal, baseline_values)
                entry.detail = (
                    f"(minimized from {len(inject)} faults) "
                    + entry.detail
                )
        report.entries.append(entry)
        if entry.verdict == VIOLATION:
            note(f"  VIOLATION at {entry.inject}: {entry.detail}")
    report.random_rounds = len(combos)
    return report


def campaign_selftest(spec: CampaignSpec,
                      reorder_window: int = 6) -> CampaignEntry:
    """The triage's own negative control: the unsound reorder fault.

    Runs the spec under ``reorder_window`` (data persists recorded out
    of order) and triages the result exactly as :func:`triage` does.
    A healthy checker MUST return a ``violation`` entry here; the
    campaign CLI's ``--expect-violation`` asserts it.
    """
    baseline = run_baseline(spec)
    baseline_values = (
        baseline.machine.image.values if spec.workload == "queue"
        else None
    )
    probe = _run_probe(
        spec,
        FaultConfig(seed=spec.fault_seed, reorder_window=reorder_window),
    )
    entry = triage(spec, (), baseline_values, probe=probe)
    if entry.verdict == VIOLATION:
        entry.repro = repro_command(spec, (),
                                    reorder_window=reorder_window)
    return entry
