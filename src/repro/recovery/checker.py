"""Consistency checkers for the durable state at a crash point.

Three checkers, matching the guarantees each persistency model makes:

* :func:`check_epoch_order` -- the core BEP/BSP invariant.  Walking the
  persist history in durability order, whenever a line of epoch E
  becomes durable, every happens-before predecessor of E (older same-core
  epochs, recorded IDT sources, transitively) must already be *fully*
  durable: each line that predecessor ever wrote has an earlier persist
  record tagged with it.  This is exactly the property the multi-bank
  flush protocol of section 4.1 exists to preserve (Figure 7 shows the
  violation it prevents).

* :func:`check_bsp_recoverable` -- BSP atomicity (section 5.2.1): every
  line persisted by a *partially* persisted epoch must be undoable, i.e.
  a durable undo-log entry holding that line's pre-epoch value exists.

* :func:`check_queue_recoverable` -- a semantic, data-structure-level
  check for the Figure 10 queue: after a crash, the durable head cursor
  never points past an entry that is not fully durable (an insert is
  either invisible or complete).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.recovery.crash import CrashOutcome


class ConsistencyViolation(AssertionError):
    """The durable state at the crash point is inconsistent."""


EpochKey = Tuple[int, int]


def _predecessors(outcome: CrashOutcome, key: EpochKey) -> Set[EpochKey]:
    """Direct hb-predecessors of an epoch: the previous same-core
    *same-strand* epoch (per-strand order is total, so one edge
    suffices; epochs of different strands are unordered) + IDT
    sources."""
    record = outcome.epochs[key]
    preds: Set[EpochKey] = set(record.source_keys)
    core_id, seq = key
    older = [
        r.seq for r in outcome.epochs_of_core(core_id)
        if r.seq < seq and r.strand == record.strand
    ]
    if older:
        preds.add((core_id, max(older)))
    return preds


def check_epoch_order(outcome: CrashOutcome) -> int:
    """Verify the persist history respects epoch happens-before order.

    Returns the number of data persists checked.  Raises
    :class:`ConsistencyViolation` on the first violation.
    """
    # lines persisted so far, per epoch key.
    durable_lines: Dict[EpochKey, Set[int]] = {}
    fully_durable: Set[EpochKey] = set()
    checked = 0

    def is_fully_durable(key: EpochKey) -> bool:
        if key in fully_durable:
            return True
        record = outcome.epochs.get(key)
        if record is None:
            return False
        if record.all_lines <= durable_lines.get(key, set()):
            fully_durable.add(key)
            return True
        return False

    def require_predecessors_durable(key: EpochKey, line: int) -> None:
        stack = list(_predecessors(outcome, key))
        seen: Set[EpochKey] = set(stack)
        while stack:
            pred = stack.pop()
            if pred not in outcome.epochs:
                continue
            if not is_fully_durable(pred):
                raise ConsistencyViolation(
                    f"line 0x{line:x} of epoch {key} persisted before "
                    f"predecessor epoch {pred} was fully durable "
                    f"({len(durable_lines.get(pred, set()))}/"
                    f"{len(outcome.epochs[pred].all_lines)} lines)"
                )
            for nxt in _predecessors(outcome, pred):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)

    for record in outcome.image.history:
        if record.kind not in ("data", "eviction"):
            continue
        if record.epoch_seq < 0:
            continue  # un-epoched traffic (NP/SP-style)
        key = (record.core_id, record.epoch_seq)
        require_predecessors_durable(key, record.line)
        durable_lines.setdefault(key, set()).add(record.line)
        checked += 1
    return checked


def check_bsp_recoverable(outcome: CrashOutcome) -> int:
    """Verify BSP epoch atomicity via the undo log.

    Every data line persisted by an epoch that is not fully durable at
    the crash point must have a durable undo-log entry recording its
    pre-epoch value, so recovery can roll the epoch back.  Returns the
    number of partially-persisted lines that were covered by the log.
    """
    durable_lines: Dict[EpochKey, Set[int]] = {}
    for record in outcome.image.history:
        if record.kind in ("data", "eviction") and record.epoch_seq >= 0:
            key = (record.core_id, record.epoch_seq)
            durable_lines.setdefault(key, set()).add(record.line)

    logged: Dict[EpochKey, Set[int]] = {}
    for log_line, (data_line, _old) in outcome.image.log_entries.items():
        log_record = outcome.image.last_persist.get(log_line)
        if log_record is None:
            continue
        key = (log_record.core_id, log_record.epoch_seq)
        logged.setdefault(key, set()).add(data_line)

    covered = 0
    for key, lines in durable_lines.items():
        record = outcome.epochs.get(key)
        if record is None:
            continue
        if record.all_lines <= lines:
            continue  # fully durable: nothing to roll back
        missing = lines - logged.get(key, set())
        if missing:
            line = next(iter(missing))
            raise ConsistencyViolation(
                f"epoch {key} partially persisted line 0x{line:x} "
                "without a durable undo-log entry to roll it back"
            )
        covered += len(lines)
    return covered


def check_queue_recoverable(outcome: CrashOutcome, queue) -> int:
    """Semantic recovery check for the Figure 10 queue workload.

    ``queue`` is the :class:`~repro.workloads.micro.queue.QueueWorkload`
    whose run crashed.  The durable head cursor (if any) must not expose
    an entry whose 512-byte body is not fully durable with the values the
    insert wrote.  Returns the durable head value checked against.
    """
    return check_queue_values(outcome.image.values, queue)


def check_queue_values(values_by_line: Dict[int, Dict[int, object]],
                       queue) -> int:
    """The queue invariant over a bare ``line -> values`` durable map.

    Core of :func:`check_queue_recoverable`, split out so the crash
    sweep can re-validate against its incrementally folded value state
    without materialising a truncated image per crash point.
    """
    head_line = queue.head_addr & ~(queue.line_size - 1)
    head_values = values_by_line.get(head_line, {})
    cursor = head_values.get(queue.head_addr - head_line)
    if cursor is None:
        return 0  # head never persisted: recovery sees an empty queue
    tag, thread_id, head_count = cursor
    if tag != "head":
        raise ConsistencyViolation(f"corrupt head cursor {cursor!r}")
    # Recovery exposes the entries between the durable tail and the
    # durable head; each must be fully durable.  (A slot overwritten by a
    # wrapped-around newer insert implies -- by epoch program order --
    # that the tail had durably advanced past the old entry first.)
    tail_cursor = head_values.get(queue.tail_addr - head_line)
    durable_tail = tail_cursor[2] if tail_cursor is not None else 0
    for seq in range(durable_tail, head_count):
        slot_base = queue.slot_addr(seq)
        for offset in range(0, 512, queue.line_size):
            line = slot_base + offset
            values = values_by_line.get(line)
            expected = ("entry", thread_id, seq)
            if values is None or any(v != expected for v in values.values()):
                raise ConsistencyViolation(
                    f"durable head={head_count} exposes entry {seq} whose "
                    f"line 0x{line:x} is not durable (got {values!r})"
                )
    return head_count
