"""Exhaustive crash-point sweep over a captured persist history.

A crash can land between any two NVRAM commits, so the durable state a
recovery procedure might see is exactly the set of *prefixes* of the
persist history.  The historical way to cover that space was to re-run
the workload once per crash cycle -- N runs for N crash points.  This
module instead runs the workload **once** (:func:`repro.recovery.crash.
capture_run`), then validates every one of the ``len(history) + 1``
truncation points in a single forward pass over the history:

* **Epoch order** (:func:`~repro.recovery.checker.check_epoch_order`)
  is a forward fold already: a prefix is valid iff no record up to the
  cut violates the happens-before rule, and durability is monotone, so
  one incremental walk with memoised "fully durable" / "predecessors
  verified" sets validates all prefixes at once.

* **BSP undo coverage** (:func:`~repro.recovery.checker.
  check_bsp_recoverable`) is *not* prefix-monotone -- a violation at
  one cut can be healed by a later log persist -- so the sweep keeps a
  per-epoch state machine (lines still needed for full durability,
  per-data-line undo-log coverage counts, count of uncovered durable
  lines) plus the set of currently-violating epochs; a prefix is valid
  iff that set is empty after folding its last record.  Circular-log
  slot reuse re-attributes coverage exactly like the batch checker's
  last-write-wins ``last_persist`` attribution.

* **Queue semantics** (:func:`~repro.recovery.checker.
  check_queue_values`) depend only on the queue's header and slot
  lines, so the sweep folds the per-record value snapshots into a
  running durable map and re-validates only at commits that touch a
  watched line -- all other prefixes inherit the previous verdict.

:func:`sweep_reference` is the independent oracle: it materialises a
truncated image per point (:func:`~repro.recovery.crash.
truncate_outcome`) and runs the plain batch checkers.  The bench's
``--only crash`` section asserts verdict parity between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.recovery.checker import (
    ConsistencyViolation,
    _predecessors,
    check_bsp_recoverable,
    check_epoch_order,
    check_queue_recoverable,
    check_queue_values,
)
from repro.recovery.crash import CrashOutcome, truncate_outcome

EpochKey = Tuple[int, int]

_QUEUE_ENTRY_BYTES = 512  # Figure 10 queue entry size


@dataclass
class SweepReport:
    """Result of sweeping every truncation point of one captured run."""

    points: int                # truncation points covered (history + 1)
    history_len: int           # persist records in the captured history
    data_persists: int         # epoch-tagged records the order check saw
    queue_checks: int          # queue re-validations actually performed
    bsp_checked: bool          # whether BSP undo coverage was swept
    ok: bool
    first_violation: Optional[int] = None   # earliest failing truncation
    violation: Optional[str] = None         # its message

    def merge_key(self) -> Tuple[bool, Optional[int]]:
        """The verdict fields two sweeps must agree on for parity."""
        return (self.ok, self.first_violation)


class _BspEpoch:
    """Per-epoch BSP coverage state for the incremental sweep."""

    __slots__ = ("needed", "logged", "uncovered")

    def __init__(self, all_lines: frozenset) -> None:
        self.needed: Set[int] = set(all_lines)  # lines not yet durable
        self.logged: Dict[int, int] = {}        # data line -> log count
        self.uncovered = 0                      # durable lines w/o log


def _queue_watch_lines(queue) -> Set[int]:
    """Every line whose durable value can change the queue verdict."""
    lines = {queue.head_addr & ~(queue.line_size - 1)}
    for slot in range(queue.capacity):
        base = queue.slot_addr(slot)
        for offset in range(0, _QUEUE_ENTRY_BYTES, queue.line_size):
            lines.add(base + offset)
    return lines


def sweep_crash_points(
    outcome: CrashOutcome,
    queues: Sequence = (),
    bsp: bool = False,
    raise_on_violation: bool = True,
) -> SweepReport:
    """Validate every truncation point of ``outcome`` incrementally.

    ``outcome`` must come from :func:`~repro.recovery.crash.capture_run`
    (or any outcome whose image carries the replay payloads).  Point 0
    (nothing durable) is vacuously valid; point ``i`` covers the first
    ``i`` persist records.  On a violation, ``first_violation`` is the
    earliest invalid point; with ``raise_on_violation`` the underlying
    :class:`ConsistencyViolation` propagates.
    """
    image = outcome.image
    history = image.history
    history_values = image.history_values
    history_log = image.history_log
    epochs = outcome.epochs
    if len(history_values) != len(history):
        raise ValueError(
            "outcome's image lacks replay payloads; capture it with "
            "capture_run / run_with_crash on a track_persist_order "
            "machine"
        )

    # ---- epoch-order fold state --------------------------------------
    durable_lines: Dict[EpochKey, Set[int]] = {}
    fully_durable: Set[EpochKey] = set()
    preds_cache: Dict[EpochKey, frozenset] = {}
    preds_verified: Set[EpochKey] = set()

    def predecessors(key: EpochKey) -> frozenset:
        cached = preds_cache.get(key)
        if cached is None:
            cached = frozenset(_predecessors(outcome, key))
            preds_cache[key] = cached
        return cached

    def is_fully_durable(key: EpochKey) -> bool:
        if key in fully_durable:
            return True
        record = epochs.get(key)
        if record is None:
            return False
        if record.all_lines <= durable_lines.get(key, set()):
            fully_durable.add(key)
            return True
        return False

    def require_predecessors_durable(key: EpochKey, line: int) -> None:
        # Once verified for a key, always verified: durability only
        # grows, and the predecessor closure of a key is static.
        if key in preds_verified:
            return
        stack = list(predecessors(key))
        seen: Set[EpochKey] = set(stack)
        while stack:
            pred = stack.pop()
            if pred not in epochs:
                continue
            if not is_fully_durable(pred):
                raise ConsistencyViolation(
                    f"line 0x{line:x} of epoch {key} persisted before "
                    f"predecessor epoch {pred} was fully durable "
                    f"({len(durable_lines.get(pred, set()))}/"
                    f"{len(epochs[pred].all_lines)} lines)"
                )
            for nxt in predecessors(pred):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        preds_verified.add(key)

    # ---- BSP fold state ----------------------------------------------
    bsp_states: Dict[EpochKey, _BspEpoch] = {}
    log_attr: Dict[int, Tuple[EpochKey, int]] = {}  # log line -> owner
    bad_keys: Set[EpochKey] = set()

    def bsp_state(key: EpochKey) -> Optional[_BspEpoch]:
        state = bsp_states.get(key)
        if state is None:
            record = epochs.get(key)
            if record is None:
                return None  # exempt, like the batch checker's skip
            state = bsp_states[key] = _BspEpoch(record.all_lines)
        return state

    def refresh_bad(key: EpochKey, state: _BspEpoch) -> None:
        # Violating iff partially durable with an unlogged durable line.
        if state.needed and state.uncovered > 0:
            bad_keys.add(key)
        else:
            bad_keys.discard(key)

    def bsp_apply_data(key: EpochKey, line: int) -> None:
        state = bsp_state(key)
        if state is None:
            return
        state.needed.discard(line)
        if not state.logged.get(line):
            state.uncovered += 1
        refresh_bad(key, state)

    def bsp_apply_log(index: int, record) -> None:
        payload = history_log.get(index)
        if payload is None:
            return
        data_line = payload[0]
        log_line = record.line
        previous = log_attr.get(log_line)
        if previous is not None:
            # Circular-log slot reuse: the batch checker attributes a
            # slot to its *last* persist, so the old owner loses this
            # entry's coverage.
            old_key, old_data = previous
            old_state = bsp_states.get(old_key)
            if old_state is not None:
                count = old_state.logged.get(old_data, 0) - 1
                if count > 0:
                    old_state.logged[old_data] = count
                else:
                    old_state.logged.pop(old_data, None)
                    if old_data in durable_lines.get(old_key, ()):
                        old_state.uncovered += 1
                refresh_bad(old_key, old_state)
        key = (record.core_id, record.epoch_seq)
        log_attr[log_line] = (key, data_line)
        state = bsp_state(key)
        if state is None:
            return
        count = state.logged.get(data_line, 0)
        state.logged[data_line] = count + 1
        if count == 0 and data_line in durable_lines.get(key, ()):
            state.uncovered -= 1
        refresh_bad(key, state)

    # ---- queue fold state --------------------------------------------
    values_now: Dict[int, Dict[int, object]] = {}
    watch: Dict[int, List] = {}
    for queue in queues:
        for line in _queue_watch_lines(queue):
            watch.setdefault(line, []).append(queue)

    data_persists = 0
    queue_checks = 0
    first_violation: Optional[int] = None
    violation_msg: Optional[str] = None

    for i, record in enumerate(history):
        try:
            kind = record.kind
            if kind == "log":
                if bsp:
                    bsp_apply_log(i, record)
            elif kind in ("data", "eviction") and record.epoch_seq >= 0:
                key = (record.core_id, record.epoch_seq)
                require_predecessors_durable(key, record.line)
                durable_lines.setdefault(key, set()).add(record.line)
                data_persists += 1
                if bsp:
                    bsp_apply_data(key, record.line)
            if bsp and bad_keys:
                key = next(iter(bad_keys))
                state = bsp_states[key]
                raise ConsistencyViolation(
                    f"epoch {key} partially persisted with "
                    f"{state.uncovered} durable line(s) lacking a "
                    "durable undo-log entry to roll them back"
                )
            values = history_values[i]
            if values is not None:
                values_now[record.line] = values
                watchers = watch.get(record.line)
                if watchers:
                    for queue in watchers:
                        queue_checks += 1
                        check_queue_values(values_now, queue)
        except ConsistencyViolation as exc:
            first_violation = i + 1
            violation_msg = str(exc)
            if raise_on_violation:
                raise
            break

    return SweepReport(
        points=len(history) + 1,
        history_len=len(history),
        data_persists=data_persists,
        queue_checks=queue_checks,
        bsp_checked=bsp,
        ok=first_violation is None,
        first_violation=first_violation,
        violation=violation_msg,
    )


def sweep_reference(
    outcome: CrashOutcome,
    queues: Sequence = (),
    bsp: bool = False,
    stride: int = 1,
    raise_on_violation: bool = True,
) -> SweepReport:
    """The brute-force oracle: truncate-and-recheck per crash point.

    Materialises a truncated image at every ``stride``-th point (always
    including the endpoints) and runs the plain batch checkers on it.
    At ``stride=1`` its verdict must match :func:`sweep_crash_points`
    exactly; larger strides trade coverage for time and only bound the
    first violation from above.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    total = len(outcome.image.history)
    points = sorted(set(range(0, total + 1, stride)) | {total})
    data_persists = 0
    queue_checks = 0
    first_violation: Optional[int] = None
    violation_msg: Optional[str] = None

    for point in points:
        truncated = truncate_outcome(outcome, point)
        try:
            data_persists = check_epoch_order(truncated)
            if bsp:
                check_bsp_recoverable(truncated)
            for queue in queues:
                queue_checks += 1
                check_queue_recoverable(truncated, queue)
        except ConsistencyViolation as exc:
            first_violation = point
            violation_msg = str(exc)
            if raise_on_violation:
                raise
            break

    return SweepReport(
        points=len(points),
        history_len=total,
        data_persists=data_persists,
        queue_checks=queue_checks,
        bsp_checked=bsp,
        ok=first_violation is None,
        first_violation=first_violation,
        violation=violation_msg,
    )
