"""Crash injection.

A crash is simulated by stopping the event engine at an arbitrary cycle:
everything the memory controllers have acknowledged by then is durable
(it is in the :class:`~repro.mem.nvram.NVRAMImage`); everything still in
caches, write buffers, or in flight to the controllers is lost.  The
outcome bundles the durable image with the epoch ground truth the
checkers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.epoch import Epoch
from repro.mem.nvram import NVRAMImage
from repro.system import Multicore


@dataclass
class EpochRecord:
    """Ground truth about one epoch, for the checkers."""

    core_id: int
    seq: int
    all_lines: frozenset
    source_keys: frozenset  # (core_id, seq) of IDT sources
    persisted: bool
    strand: int = 0

    @property
    def key(self) -> Tuple[int, int]:
        return (self.core_id, self.seq)


@dataclass
class CrashOutcome:
    """Everything that survives the crash, plus checker ground truth."""

    crash_cycle: int
    image: NVRAMImage
    epochs: Dict[Tuple[int, int], EpochRecord]
    # Per-core index over ``epochs``, built once on first use.  The
    # checkers ask for a core's epochs on every predecessor walk; the
    # old per-call filter-and-sort was quadratic over sweep-sized
    # histories.
    _by_core: Optional[Dict[int, List[EpochRecord]]] = field(
        default=None, init=False, repr=False, compare=False,
    )

    def epochs_of_core(self, core_id: int) -> List[EpochRecord]:
        if self._by_core is None:
            by_core: Dict[int, List[EpochRecord]] = {}
            for record in self.epochs.values():
                by_core.setdefault(record.core_id, []).append(record)
            for records in by_core.values():
                records.sort(key=lambda r: r.seq)
            self._by_core = by_core
        return self._by_core.get(core_id, [])


def _record_epoch(epoch: Epoch) -> EpochRecord:
    return EpochRecord(
        core_id=epoch.core_id,
        seq=epoch.seq,
        all_lines=frozenset(epoch.all_lines),
        source_keys=frozenset(epoch.all_sources),
        persisted=epoch.persisted,
        strand=epoch.strand,
    )


def snapshot_epochs(machine: Multicore) -> Dict[Tuple[int, int], EpochRecord]:
    """Capture every epoch the machine created (requires
    ``keep_epoch_log=True``)."""
    records: Dict[Tuple[int, int], EpochRecord] = {}
    for mgr in machine.managers:
        if not mgr.keep_retired:
            raise ValueError(
                "snapshot_epochs needs a machine built with "
                "keep_epoch_log=True"
            )
        for epoch in list(mgr.retired) + list(mgr.window):
            record = _record_epoch(epoch)
            records[record.key] = record
    return records


def run_with_crash(
    machine: Multicore,
    programs: List,
    crash_cycle: int,
) -> CrashOutcome:
    """Run ``programs`` and crash the machine at ``crash_cycle``.

    The machine must have been built with ``track_values=True``,
    ``track_persist_order=True`` and ``keep_epoch_log=True`` so the
    checkers have their ground truth.
    """
    if not machine.image.track_order:
        raise ValueError("run_with_crash needs track_persist_order=True")
    machine.run(programs, max_cycles=crash_cycle, drain=False)
    return CrashOutcome(
        crash_cycle=machine.engine.now,
        image=machine.image,
        epochs=snapshot_epochs(machine),
    )


def capture_run(
    machine: Multicore,
    programs: List,
    max_cycles: Optional[int] = None,
) -> CrashOutcome:
    """Run ``programs`` to completion (with drain) and capture the full
    ordered persist history plus epoch ground truth.

    The returned outcome is the *uncrashed* endpoint: every truncation
    of its history (:func:`truncate_outcome`) is a crash point the
    machine could actually have produced, which is what the exhaustive
    sweep (:mod:`repro.recovery.crashsweep`) iterates over -- one run,
    ``len(history) + 1`` crash points.
    """
    if not machine.image.track_order:
        raise ValueError("capture_run needs track_persist_order=True")
    machine.run(programs, max_cycles=max_cycles, drain=True)
    return CrashOutcome(
        crash_cycle=machine.engine.now,
        image=machine.image,
        epochs=snapshot_epochs(machine),
    )


def truncate_outcome(outcome: CrashOutcome, index: int) -> CrashOutcome:
    """The crash outcome had the machine died after ``index`` persists.

    Rebuilds the durable image from the first ``index`` records of the
    captured history by replaying the per-record payloads
    (``history_values`` / ``history_log``), without re-running the
    machine.  ``index`` ranges from 0 (nothing durable) to
    ``len(history)`` (the full image).  The epoch ground truth is shared
    with ``outcome``: it describes the whole run, exactly as a real
    crash at that instant would have left it.
    """
    source = outcome.image
    history = source.history
    if not 0 <= index <= len(history):
        raise ValueError(
            f"truncation index {index} outside [0, {len(history)}]"
        )
    image = NVRAMImage(track_order=True)
    image.history = history[:index]
    image.history_values = source.history_values[:index]
    for i in range(index):
        record = history[i]
        image.last_persist[record.line] = record
        values = image.history_values[i]
        if values is not None:
            image.values[record.line] = values
        payload = source.history_log.get(i)
        if payload is not None:
            image.log_entries[record.line] = payload
            image.history_log[i] = payload
    image._next_index = index
    return CrashOutcome(
        crash_cycle=history[index - 1].time if index else 0,
        image=image,
        epochs=outcome.epochs,
    )
