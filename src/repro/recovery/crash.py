"""Crash injection.

A crash is simulated by stopping the event engine at an arbitrary cycle:
everything the memory controllers have acknowledged by then is durable
(it is in the :class:`~repro.mem.nvram.NVRAMImage`); everything still in
caches, write buffers, or in flight to the controllers is lost.  The
outcome bundles the durable image with the epoch ground truth the
checkers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.epoch import Epoch
from repro.mem.nvram import NVRAMImage
from repro.system import Multicore


@dataclass
class EpochRecord:
    """Ground truth about one epoch, for the checkers."""

    core_id: int
    seq: int
    all_lines: frozenset
    source_keys: frozenset  # (core_id, seq) of IDT sources
    persisted: bool
    strand: int = 0

    @property
    def key(self) -> Tuple[int, int]:
        return (self.core_id, self.seq)


@dataclass
class CrashOutcome:
    """Everything that survives the crash, plus checker ground truth."""

    crash_cycle: int
    image: NVRAMImage
    epochs: Dict[Tuple[int, int], EpochRecord]

    def epochs_of_core(self, core_id: int) -> List[EpochRecord]:
        records = [r for r in self.epochs.values() if r.core_id == core_id]
        records.sort(key=lambda r: r.seq)
        return records


def _record_epoch(epoch: Epoch) -> EpochRecord:
    return EpochRecord(
        core_id=epoch.core_id,
        seq=epoch.seq,
        all_lines=frozenset(epoch.all_lines),
        source_keys=frozenset(epoch.all_sources),
        persisted=epoch.persisted,
        strand=epoch.strand,
    )


def snapshot_epochs(machine: Multicore) -> Dict[Tuple[int, int], EpochRecord]:
    """Capture every epoch the machine created (requires
    ``keep_epoch_log=True``)."""
    records: Dict[Tuple[int, int], EpochRecord] = {}
    for mgr in machine.managers:
        if not mgr.keep_retired:
            raise ValueError(
                "snapshot_epochs needs a machine built with "
                "keep_epoch_log=True"
            )
        for epoch in list(mgr.retired) + list(mgr.window):
            record = _record_epoch(epoch)
            records[record.key] = record
    return records


def run_with_crash(
    machine: Multicore,
    programs: List,
    crash_cycle: int,
) -> CrashOutcome:
    """Run ``programs`` and crash the machine at ``crash_cycle``.

    The machine must have been built with ``track_values=True``,
    ``track_persist_order=True`` and ``keep_epoch_log=True`` so the
    checkers have their ground truth.
    """
    if not machine.image.track_order:
        raise ValueError("run_with_crash needs track_persist_order=True")
    machine.run(programs, max_cycles=crash_cycle, drain=False)
    return CrashOutcome(
        crash_cycle=machine.engine.now,
        image=machine.image,
        epochs=snapshot_epochs(machine),
    )
