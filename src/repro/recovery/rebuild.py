"""Recovery execution: turn a crashed NVRAM image into a usable state.

The checkers in :mod:`repro.recovery.checker` verify that recovery is
*possible*; this module actually performs it, the way the recovery code
described in the paper would run after a reboot:

* :func:`recover_bsp` implements section 5.2's crash recovery for
  buffered strict persistency: identify, per core, the newest prefix of
  epochs that persisted completely; roll back every line persisted by a
  newer (torn) epoch using its durable undo-log entries; report the
  checkpoint each core restarts from.

* :func:`recover_queue` rebuilds the Figure 10 queue from a (possibly
  rolled-back) durable image: the recovered queue is exactly the
  entries between the durable tail and the durable head, each of which
  is guaranteed intact by the barrier placement.

Both return plain data: recovery never mutates the crash outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.recovery.checker import ConsistencyViolation
from repro.recovery.crash import CrashOutcome

EpochKey = Tuple[int, int]


@dataclass
class RecoveredState:
    """The durable state after rolling back torn epochs."""

    # line -> offset -> value, after rollback.
    values: Dict[int, Dict[int, object]]
    # Per core: the newest epoch seq whose effects survive (-1: none).
    survivor_epoch: Dict[int, int]
    # Epochs whose persisted lines were rolled back.
    rolled_back: List[EpochKey]
    # Lines restored from the undo log.
    restored_lines: Set[int] = field(default_factory=set)

    def read(self, addr: int, line_size: int = 64) -> Optional[object]:
        """Read one recovered field (8-byte granularity)."""
        line = addr & ~(line_size - 1)
        values = self.values.get(line)
        if values is None:
            return None
        return values.get(addr - line)


def _durable_lines_by_epoch(outcome: CrashOutcome) -> Dict[EpochKey, Set[int]]:
    durable: Dict[EpochKey, Set[int]] = {}
    for record in outcome.image.history:
        if record.kind in ("data", "eviction") and record.epoch_seq >= 0:
            key = (record.core_id, record.epoch_seq)
            durable.setdefault(key, set()).add(record.line)
    return durable


def _torn_epochs(outcome: CrashOutcome,
                 durable: Dict[EpochKey, Set[int]]) -> Set[EpochKey]:
    torn: Set[EpochKey] = set()
    for key, lines in durable.items():
        record = outcome.epochs.get(key)
        if record is None:
            continue
        if not record.all_lines <= lines:
            torn.add(key)
    return torn


def recover_bsp(outcome: CrashOutcome) -> RecoveredState:
    """Roll back torn epochs using the durable undo log (section 5.2).

    A torn epoch (persisted some but not all of its lines) violates BSP
    atomicity; each of its durable lines is restored to the pre-epoch
    value recorded in the log.  An epoch that depends (transitively,
    through program order or IDT edges) on a rolled-back epoch is rolled
    back as well -- its inputs are gone.
    """
    if not outcome.image.track_order:
        raise ValueError("recover_bsp needs a persist-order-tracked image")
    durable = _durable_lines_by_epoch(outcome)
    condemned = _torn_epochs(outcome, durable)

    # Propagate rollback to dependents of condemned epochs.  Program
    # order: every later epoch of the same core *and strand* (epochs of
    # other strands carry no ordering and keep their effects).  IDT
    # edges: any epoch whose recorded sources include a condemned epoch.
    changed = True
    while changed:
        changed = False
        for key, record in outcome.epochs.items():
            if key in condemned or key not in durable:
                continue
            core_id, seq = key
            if any(
                c_core == core_id and c_seq < seq
                and outcome.epochs[(c_core, c_seq)].strand == record.strand
                for c_core, c_seq in condemned
                if (c_core, c_seq) in outcome.epochs
            ) or (record.source_keys & condemned):
                condemned.add(key)
                changed = True

    # Index undo-log entries: (epoch, data line) -> old values.
    log_values: Dict[Tuple[EpochKey, int], Dict[int, object]] = {}
    for log_line, (data_line, old) in outcome.image.log_entries.items():
        log_record = outcome.image.last_persist.get(log_line)
        if log_record is None:
            continue
        key = (log_record.core_id, log_record.epoch_seq)
        log_values[(key, data_line)] = old

    values = {line: dict(v) for line, v in outcome.image.values.items()}
    restored: Set[int] = set()
    # Undo newest-first so a line touched by several condemned epochs
    # ends at the value preceding the *oldest* of them.
    for record in reversed(outcome.image.history):
        if record.kind not in ("data", "eviction"):
            continue
        key = (record.core_id, record.epoch_seq)
        if key not in condemned:
            continue
        old = log_values.get((key, record.line))
        if old is None:
            raise ConsistencyViolation(
                f"cannot roll back line 0x{record.line:x} of epoch {key}: "
                "no durable undo-log entry"
            )
        values[record.line] = dict(old)
        restored.add(record.line)

    survivor: Dict[int, int] = {}
    for key, lines in durable.items():
        if key in condemned:
            continue
        core_id, seq = key
        if seq > survivor.get(core_id, -1):
            survivor[core_id] = seq
    return RecoveredState(
        values=values,
        survivor_epoch=survivor,
        rolled_back=sorted(condemned),
        restored_lines=restored,
    )


@dataclass
class RecoveredQueue:
    """The Figure 10 queue as recovery sees it."""

    head: int
    tail: int
    entries: List[object]

    @property
    def length(self) -> int:
        return self.head - self.tail


def recover_queue(outcome: CrashOutcome, queue,
                  state: Optional[RecoveredState] = None) -> RecoveredQueue:
    """Rebuild a queue from the durable (or rolled-back) image.

    ``queue`` is the :class:`~repro.workloads.micro.queue.QueueWorkload`
    whose run crashed; recovery reads its durable head and tail cursors
    and collects the entries in between, verifying each is intact.
    """
    values = state.values if state is not None else outcome.image.values
    line_size = queue.line_size
    head_line = queue.head_addr & ~(line_size - 1)
    header = values.get(head_line, {})
    head_cursor = header.get(queue.head_addr - head_line)
    tail_cursor = header.get(queue.tail_addr - head_line)
    head = head_cursor[2] if head_cursor is not None else 0
    tail = tail_cursor[2] if tail_cursor is not None else 0

    entries: List[object] = []
    for seq in range(tail, head):
        slot = queue.slot_addr(seq)
        first_line = values.get(slot, {})
        token = first_line.get(0)
        if token is None:
            raise ConsistencyViolation(
                f"recovered head={head} exposes missing entry {seq}"
            )
        for offset in range(0, 512, line_size):
            line_values = values.get(slot + offset)
            if not line_values or any(v != token for v in
                                      line_values.values()):
                raise ConsistencyViolation(
                    f"entry {seq} torn at line 0x{slot + offset:x}"
                )
        entries.append(token)
    return RecoveredQueue(head=head, tail=tail, entries=entries)
