"""Crash injection and recovery checking.

* :mod:`repro.recovery.crash`   -- run a machine up to an arbitrary
  crash cycle and extract the durable state; or capture a full run and
  truncate its persist history to any crash point after the fact.
* :mod:`repro.recovery.checker` -- verify that the durable state at the
  crash point is consistent: the epoch happens-before order was never
  violated by the persist stream (BEP), and partially persisted epochs
  are undoable from the hardware log (BSP).
* :mod:`repro.recovery.crashsweep` -- validate *every* truncation point
  of one captured run in a single incremental pass, with a brute-force
  truncate-and-recheck oracle for parity.
* :mod:`repro.recovery.campaign`  -- systematic fault campaigns: probe
  every injectable protocol coordinate of a captured run (plus seeded
  randomized multi-fault rounds) and triage each probe into
  survived / aborted-clean / violation with a minimized repro.
* :mod:`repro.recovery.rebuild` -- actually perform recovery: roll torn
  BSP epochs back via the undo log and reconstruct data structures from
  the durable image.
"""

from repro.recovery.campaign import (
    ABORTED_CLEAN,
    SURVIVED,
    VIOLATION,
    CampaignEntry,
    CampaignReport,
    CampaignSpec,
    FaultPoint,
    campaign_selftest,
    enumerate_points,
    minimize_inject,
    repro_command,
    run_campaign,
    triage,
)
from repro.recovery.checker import (
    ConsistencyViolation,
    check_bsp_recoverable,
    check_epoch_order,
    check_queue_recoverable,
    check_queue_values,
)
from repro.recovery.crash import (
    CrashOutcome,
    capture_run,
    run_with_crash,
    truncate_outcome,
)
from repro.recovery.crashsweep import (
    SweepReport,
    sweep_crash_points,
    sweep_reference,
)
from repro.recovery.rebuild import (
    RecoveredQueue,
    RecoveredState,
    recover_bsp,
    recover_queue,
)

__all__ = [
    "ABORTED_CLEAN",
    "SURVIVED",
    "VIOLATION",
    "CampaignEntry",
    "CampaignReport",
    "CampaignSpec",
    "ConsistencyViolation",
    "CrashOutcome",
    "FaultPoint",
    "SweepReport",
    "campaign_selftest",
    "capture_run",
    "enumerate_points",
    "minimize_inject",
    "repro_command",
    "run_campaign",
    "triage",
    "check_bsp_recoverable",
    "check_epoch_order",
    "check_queue_recoverable",
    "check_queue_values",
    "recover_bsp",
    "recover_queue",
    "RecoveredQueue",
    "RecoveredState",
    "run_with_crash",
    "sweep_crash_points",
    "sweep_reference",
    "truncate_outcome",
]
