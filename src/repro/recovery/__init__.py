"""Crash injection and recovery checking.

* :mod:`repro.recovery.crash`   -- run a machine up to an arbitrary
  crash cycle and extract the durable state.
* :mod:`repro.recovery.checker` -- verify that the durable state at the
  crash point is consistent: the epoch happens-before order was never
  violated by the persist stream (BEP), and partially persisted epochs
  are undoable from the hardware log (BSP).
* :mod:`repro.recovery.rebuild` -- actually perform recovery: roll torn
  BSP epochs back via the undo log and reconstruct data structures from
  the durable image.
"""

from repro.recovery.checker import (
    ConsistencyViolation,
    check_bsp_recoverable,
    check_epoch_order,
    check_queue_recoverable,
)
from repro.recovery.crash import CrashOutcome, run_with_crash
from repro.recovery.rebuild import (
    RecoveredQueue,
    RecoveredState,
    recover_bsp,
    recover_queue,
)

__all__ = [
    "ConsistencyViolation",
    "CrashOutcome",
    "check_bsp_recoverable",
    "check_epoch_order",
    "check_queue_recoverable",
    "recover_bsp",
    "recover_queue",
    "RecoveredQueue",
    "RecoveredState",
    "run_with_crash",
]
