"""Address mapping: byte address -> line -> LLC bank -> memory controller.

The machine is tiled: core *i* and LLC bank *i* share tile *i* of the
mesh (the paper's Figure 2 layout, one L2 tile per core).  Lines are
interleaved across LLC banks and across memory controllers at line
granularity, which is what gives multiple MCs their bandwidth benefit.
"""

from __future__ import annotations

from repro.sim.config import MachineConfig


class AddressMap:
    """Static address-to-resource mapping for one machine configuration."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self._offset_bits = config.offset_bits
        self._banks = config.llc_banks
        self._mcs = config.num_memory_controllers
        self._line_mask = ~(config.line_size - 1)

    def line_of(self, addr: int) -> int:
        """Aligned cache-line address containing ``addr``."""
        return addr & self._line_mask

    def bank_of(self, line: int) -> int:
        """LLC bank index holding ``line`` (line-interleaved)."""
        return (line >> self._offset_bits) % self._banks

    def mc_of(self, line: int) -> int:
        """Memory controller index serving ``line`` (line-interleaved)."""
        return (line >> self._offset_bits) % self._mcs

    def is_log_address(self, addr: int) -> bool:
        """True when ``addr`` falls in the hardware undo-log region."""
        return (
            self._config.log_region_base
            <= addr
            < self._config.checkpoint_region_base
        )

    def is_checkpoint_address(self, addr: int) -> bool:
        """True when ``addr`` falls in the register-checkpoint region."""
        return addr >= self._config.checkpoint_region_base
