"""2D-mesh on-chip interconnect latency model.

The paper models the NoC with Garnet (Table 1: 2D mesh, 4 rows, 16B
flits).  The evaluation never isolates NoC microarchitecture, so we model
message latency analytically: Manhattan-distance hop count times
per-hop latency plus router traversals.  Tiles hold a core and its
co-located LLC bank; memory controllers sit on the chip corners, as in
Figure 2.
"""

from __future__ import annotations

from repro.sim.config import MachineConfig


class Mesh:
    """Hop-latency model of the on-chip 2D mesh."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self.rows = config.mesh_rows
        self.cols = max(1, (config.num_cores + self.rows - 1) // self.rows)
        self._hop = config.hop_latency
        self._router = config.router_latency
        self._mc_tiles = self._corner_tiles(config.num_memory_controllers)
        # Latency caches: meshes are small, so precompute everything.
        tiles = self.rows * self.cols
        self._tile_lat = [
            [self._latency_between(a, b) for b in range(tiles)]
            for a in range(tiles)
        ]
        # Endpoint-indexed views of the same table, for hot paths that
        # would otherwise chain three method calls per message.
        cores = config.num_cores
        banks = config.llc_banks
        mcs = config.num_memory_controllers
        self.c2b = [
            [self.core_to_bank(c, b) for b in range(banks)]
            for c in range(cores)
        ]
        self.b2mc = [
            [self.bank_to_mc(b, m) for m in range(mcs)]
            for b in range(banks)
        ]
        self.c2mc = [
            [self.core_to_mc(c, m) for m in range(mcs)]
            for c in range(cores)
        ]
        self.c2c = [
            [self.core_to_core(a, b) for b in range(cores)]
            for a in range(cores)
        ]
        # Equidistance classes of the core->bank table: for each core,
        # ``(latency, [banks])`` pairs in ascending latency, banks
        # ascending within a class.  Broadcast-style handshakes (the
        # flush protocol's FlushEpoch/BankAck legs) deliver to every
        # bank of a class at one cycle, so each class can dispatch as a
        # single batched fanout instead of one heap event per bank.
        self.ack_groups: list[list[tuple[int, list[int]]]] = []
        for c in range(cores):
            by_lat: dict[int, list[int]] = {}
            for b in range(banks):
                by_lat.setdefault(self.c2b[c][b], []).append(b)
            self.ack_groups.append(sorted(by_lat.items()))
        # Worst-case core->bank latency per core: the broadcast cost of
        # the flush handshake's FlushEpoch/PersistCMP legs, asked for
        # once per epoch flush.
        self._bcast = [max(row) for row in self.c2b]

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def tile_of_core(self, core_id: int) -> int:
        return core_id % (self.rows * self.cols)

    def tile_of_bank(self, bank_id: int) -> int:
        # Banks are co-located with cores on tiles; with fewer banks than
        # tiles the banks spread evenly across them.
        return bank_id % (self.rows * self.cols)

    def tile_of_mc(self, mc_id: int) -> int:
        return self._mc_tiles[mc_id % len(self._mc_tiles)]

    def _coords(self, tile: int) -> tuple[int, int]:
        return tile // self.cols, tile % self.cols

    def _corner_tiles(self, count: int) -> list[int]:
        """Tiles for the memory controllers: the four chip corners."""
        corners = [
            0,
            self.cols - 1,
            (self.rows - 1) * self.cols,
            self.rows * self.cols - 1,
        ]
        # Deduplicate (tiny meshes) while preserving order.
        seen: list[int] = []
        for c in corners:
            if c not in seen:
                seen.append(c)
        return [seen[i % len(seen)] for i in range(count)]

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def _latency_between(self, tile_a: int, tile_b: int) -> int:
        ra, ca = self._coords(tile_a)
        rb, cb = self._coords(tile_b)
        hops = abs(ra - rb) + abs(ca - cb)
        return hops * self._hop + (hops + 1) * self._router

    def latency(self, tile_a: int, tile_b: int) -> int:
        """One-way message latency between two tiles."""
        return self._tile_lat[tile_a][tile_b]

    def core_to_bank(self, core_id: int, bank_id: int) -> int:
        return self.latency(self.tile_of_core(core_id), self.tile_of_bank(bank_id))

    def bank_to_mc(self, bank_id: int, mc_id: int) -> int:
        return self.latency(self.tile_of_bank(bank_id), self.tile_of_mc(mc_id))

    def core_to_mc(self, core_id: int, mc_id: int) -> int:
        return self.latency(self.tile_of_core(core_id), self.tile_of_mc(mc_id))

    def core_to_core(self, core_a: int, core_b: int) -> int:
        return self.latency(self.tile_of_core(core_a), self.tile_of_core(core_b))

    def detour_latency(self, extra_hops: int) -> int:
        """Latency added by rerouting a message ``extra_hops`` extra
        mesh hops (each hop adds its link and router traversal).

        Used by the fault injector's delayed-BankAck path
        (:mod:`repro.sim.faults`): a rerouted ack pays the nominal
        route plus this detour.
        """
        return extra_hops * (self._hop + self._router)

    def broadcast_from_core(self, core_id: int) -> int:
        """Latency for a broadcast from a core's tile to reach all banks.

        Used by the epoch arbiter for FlushEpoch and PersistCMP messages
        (steps 1 and 4 of the Figure 8 handshake).
        """
        return self._bcast[core_id]
