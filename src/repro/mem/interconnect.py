"""2D-mesh on-chip interconnect latency model.

The paper models the NoC with Garnet (Table 1: 2D mesh, 4 rows, 16B
flits).  The evaluation never isolates NoC microarchitecture, so we model
message latency analytically: Manhattan-distance hop count times
per-hop latency plus router traversals.  Tiles hold a core and its
co-located LLC bank; memory controllers sit on the chip corners, as in
Figure 2.

Latency tables are *lazy*: a 64-core machine has 64x64 core/bank/core
pairs per table, but any one run touches only the rows of the cores that
actually flush, so each per-endpoint row materializes on first use and
is cached as an immutable tuple.  Hot paths index ``mesh.c2b[core][bank]``
exactly as they did when the tables were eager lists-of-lists.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.sim.config import MachineConfig


class _LazyRows:
    """List-of-rows lookalike whose rows materialize on first index.

    ``build(i)`` produces row ``i`` (any indexable value); the result is
    cached forever.  Iteration materializes everything, so cold paths
    that genuinely want the full table (tests, debug dumps) still work.
    """

    __slots__ = ("_rows", "_build")

    def __init__(self, count: int, build: Callable[[int], object]) -> None:
        self._rows: list = [None] * count
        self._build = build

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int):
        row = self._rows[index]
        if row is None:
            row = self._rows[index] = self._build(index)
        return row

    def __iter__(self) -> Iterator:
        for i in range(len(self._rows)):
            yield self[i]


class FlushTree:
    """A core's hierarchical fanout tree over the LLC banks.

    Banks are sorted by ``(core->bank latency, bank id)`` and arranged
    as a complete ``degree``-ary tree rooted at the core's tile: the
    first ``degree`` banks are the root's children (edge latency = the
    direct core->bank mesh distance), and the bank at sorted position
    ``i >= degree`` hangs off the bank at position ``i // degree - 1``
    (edge latency = the tile-to-tile mesh distance between the two
    banks).  ``delivery[bank]`` is the path-sum arrival offset of a
    FlushEpoch routed down the tree; the BankAck return path is
    symmetric, so a round trip costs ``2 * delivery[bank]``.

    With ``n <= degree`` every bank is a root child and the tree
    degenerates to the flat star: ``delivery`` equals the direct
    core->bank row, which is what makes tree and flat mode
    cycle-for-cycle identical on small machines.
    """

    __slots__ = ("core", "order", "delivery", "bcast", "parents")

    def __init__(self, mesh: "Mesh", core: int, degree: int) -> None:
        self.core = core
        row = mesh.c2b[core]
        order = sorted(range(len(row)), key=lambda b: (row[b], b))
        self.order = tuple(order)
        n = len(order)
        delivery = [0] * n  # indexed by bank id
        # parents[bank] = the bank relaying this bank's FlushEpoch copy
        # (-1 for root children, whose edge comes straight from the
        # core).  The fault injector keys per-edge faults by the child
        # bank and charges a faulted edge to its whole subtree.
        parents = [-1] * n  # indexed by bank id
        for pos, bank in enumerate(order):
            if pos < degree:
                delivery[bank] = row[bank]
            else:
                parent = order[pos // degree - 1]
                parents[bank] = parent
                delivery[bank] = delivery[parent] + mesh.latency(
                    mesh.tile_of_bank(parent), mesh.tile_of_bank(bank)
                )
        self.delivery = tuple(delivery)
        self.parents = tuple(parents)
        self.bcast = max(delivery) if delivery else 0


class Mesh:
    """Hop-latency model of the on-chip 2D mesh."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self.rows = config.mesh_rows
        self.cols = max(1, (config.num_cores + self.rows - 1) // self.rows)
        self._hop = config.hop_latency
        self._router = config.router_latency
        self._mc_tiles = self._corner_tiles(config.num_memory_controllers)
        cores = config.num_cores
        banks = config.llc_banks
        mcs = config.num_memory_controllers
        # Endpoint-indexed latency rows, lazily materialized (see module
        # docstring).  Rows are tuples: indexable, immutable, compact.
        self.c2b = _LazyRows(cores, lambda c: tuple(
            self._core_to_bank(c, b) for b in range(banks)))
        self.b2mc = _LazyRows(banks, lambda b: tuple(
            self._bank_to_mc(b, m) for m in range(mcs)))
        self.c2mc = _LazyRows(cores, lambda c: tuple(
            self._core_to_mc(c, m) for m in range(mcs)))
        self.c2c = _LazyRows(cores, lambda a: tuple(
            self._core_to_core(a, b) for b in range(cores)))
        # Worst-case core->bank latency per core: the broadcast cost of
        # the flush handshake's FlushEpoch/PersistCMP legs, asked for
        # once per epoch flush.
        self._bcast = _LazyRows(cores, lambda c: max(self.c2b[c]))
        self._flush_trees: dict[int, FlushTree] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def tile_of_core(self, core_id: int) -> int:
        return core_id % (self.rows * self.cols)

    def tile_of_bank(self, bank_id: int) -> int:
        # Banks are co-located with cores on tiles; with fewer banks than
        # tiles the banks spread evenly across them.
        return bank_id % (self.rows * self.cols)

    def tile_of_mc(self, mc_id: int) -> int:
        return self._mc_tiles[mc_id % len(self._mc_tiles)]

    def _coords(self, tile: int) -> tuple[int, int]:
        return tile // self.cols, tile % self.cols

    def _corner_tiles(self, count: int) -> list[int]:
        """Tiles for the memory controllers: the four chip corners."""
        corners = [
            0,
            self.cols - 1,
            (self.rows - 1) * self.cols,
            self.rows * self.cols - 1,
        ]
        # Deduplicate (tiny meshes) while preserving order.
        seen: list[int] = []
        for c in corners:
            if c not in seen:
                seen.append(c)
        return [seen[i % len(seen)] for i in range(count)]

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def latency(self, tile_a: int, tile_b: int) -> int:
        """One-way message latency between two tiles."""
        ra, ca = self._coords(tile_a)
        rb, cb = self._coords(tile_b)
        hops = abs(ra - rb) + abs(ca - cb)
        return hops * self._hop + (hops + 1) * self._router

    def _core_to_bank(self, core_id: int, bank_id: int) -> int:
        return self.latency(self.tile_of_core(core_id), self.tile_of_bank(bank_id))

    def _bank_to_mc(self, bank_id: int, mc_id: int) -> int:
        return self.latency(self.tile_of_bank(bank_id), self.tile_of_mc(mc_id))

    def _core_to_mc(self, core_id: int, mc_id: int) -> int:
        return self.latency(self.tile_of_core(core_id), self.tile_of_mc(mc_id))

    def _core_to_core(self, core_a: int, core_b: int) -> int:
        return self.latency(self.tile_of_core(core_a), self.tile_of_core(core_b))

    # Public single-pair lookups route through the cached rows so a
    # mixed caller population still shares one materialization.
    def core_to_bank(self, core_id: int, bank_id: int) -> int:
        return self.c2b[core_id][bank_id]

    def bank_to_mc(self, bank_id: int, mc_id: int) -> int:
        return self.b2mc[bank_id][mc_id]

    def core_to_mc(self, core_id: int, mc_id: int) -> int:
        return self.c2mc[core_id][mc_id]

    def core_to_core(self, core_a: int, core_b: int) -> int:
        return self.c2c[core_a][core_b]

    def detour_latency(self, extra_hops: int) -> int:
        """Latency added by rerouting a message ``extra_hops`` extra
        mesh hops (each hop adds its link and router traversal).

        Used by the fault injector's delayed-BankAck path
        (:mod:`repro.sim.faults`): a rerouted ack pays the nominal
        route plus this detour.
        """
        return extra_hops * (self._hop + self._router)

    def broadcast_from_core(self, core_id: int) -> int:
        """Latency for a broadcast from a core's tile to reach all banks.

        Used by the epoch arbiter for FlushEpoch and PersistCMP messages
        (steps 1 and 4 of the Figure 8 handshake).
        """
        return self._bcast[core_id]

    def flush_tree(self, core_id: int) -> FlushTree:
        """The core's hierarchical fanout tree (built once, cached)."""
        tree = self._flush_trees.get(core_id)
        if tree is None:
            tree = FlushTree(self, core_id, self._config.fanout_degree)
            self._flush_trees[core_id] = tree
        return tree
