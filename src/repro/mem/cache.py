"""Set-associative cache arrays with epoch-tagged dirty lines.

This is the hardware extension of section 4.3: cache tags in both the L1
and the LLC carry an ``EpochID`` (and, in the LLC, a ``CoreID``) for
dirty lines.  In the simulator the tag pair is represented by a direct
reference to the :class:`~repro.core.epoch.Epoch` object that last wrote
the line -- exactly the information the (CoreID, EpochID) pair encodes in
hardware, without the 3-bit wraparound bookkeeping (the wraparound limit
is enforced separately by the per-core in-flight-epoch cap).

The arrays use true LRU replacement.  Insertion is split into
``victim_for`` / ``insert`` so the caller (the machine) can resolve
persist-ordering conflicts raised by evicting a dirty, not-yet-persisted
victim *before* mutating the array.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional

from repro.sim.stats import StatDomain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.epoch import Epoch


class CacheEntry:
    """One cache line's worth of state."""

    __slots__ = ("line", "dirty", "epoch", "values", "_lru")

    def __init__(self, line: int) -> None:
        self.line = line
        self.dirty = False
        # Epoch that last wrote the line, while that version is still
        # unpersisted.  None for clean lines and for dirty lines whose
        # epoch has already persisted this version.
        self.epoch: Optional["Epoch"] = None
        # Offset -> value token, populated only when value tracking is on.
        self.values: Optional[Dict[int, object]] = None
        self._lru = 0

    @property
    def unpersisted(self) -> bool:
        """True when this dirty version has not yet reached NVRAM."""
        return self.dirty and self.epoch is not None and not self.epoch.persisted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" epoch={self.epoch}" if self.epoch else ""
        return f"<line 0x{self.line:x}{' dirty' if self.dirty else ''}{tag}>"


class SetAssociativeCache:
    """An LRU set-associative cache array.

    Presence and replacement only; all coherence and persistence decisions
    live in the machine, which owns the interleaving of state changes with
    simulated time.
    """

    def __init__(
        self,
        name: str,
        num_sets: int,
        assoc: int,
        line_size: int,
        stats: StatDomain,
    ) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError(f"invalid cache geometry: {num_sets} sets x {assoc}")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self._offset_bits = line_size.bit_length() - 1
        # Set counts are powers of two for every stock geometry, which
        # turns the per-access modulo into a mask.
        self._set_mask = (
            num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        )
        self._sets: list[Dict[int, CacheEntry]] = [{} for _ in range(num_sets)]
        self._stats = stats
        self._tick = 0

    # ------------------------------------------------------------------
    def _set_of(self, line: int) -> Dict[int, CacheEntry]:
        index = line >> self._offset_bits
        mask = self._set_mask
        if mask is not None:
            return self._sets[index & mask]
        return self._sets[index % self.num_sets]

    def lookup(self, line: int) -> Optional[CacheEntry]:
        """Return the entry for ``line`` or None, without touching LRU."""
        return self._set_of(line).get(line)

    def touch(self, entry: CacheEntry) -> None:
        """Mark ``entry`` most-recently-used."""
        self._tick = tick = self._tick + 1
        entry._lru = tick

    def victim_for(self, line: int) -> Optional[CacheEntry]:
        """Entry that must be evicted before ``line`` can be inserted.

        Returns None when the set has a free way or already holds ``line``.
        Prefers clean victims over dirty ones (a standard writeback-cache
        replacement bias, and important here because evicting a dirty
        unpersisted line drags persist ordering into the critical path).
        """
        cache_set = self._set_of(line)
        if line in cache_set or len(cache_set) < self.assoc:
            return None
        # Single pass: least-recently-used clean entry if one exists,
        # otherwise least-recently-used overall.  Dirty candidates stop
        # being tracked once any clean entry has been seen.
        best_clean: Optional[CacheEntry] = None
        best_dirty: Optional[CacheEntry] = None
        for entry in cache_set.values():
            if not entry.dirty:
                if best_clean is None or entry._lru < best_clean._lru:
                    best_clean = entry
            elif best_clean is None and (
                best_dirty is None or entry._lru < best_dirty._lru
            ):
                best_dirty = entry
        return best_clean if best_clean is not None else best_dirty

    def insert(self, line: int) -> CacheEntry:
        """Insert (or return the existing) entry for ``line``.

        The caller must have removed any victim first; inserting into a
        full set raises, because silently dropping a possibly-dirty line
        would corrupt epoch bookkeeping.
        """
        cache_set = self._set_of(line)
        entry = cache_set.get(line)
        if entry is None:
            if len(cache_set) >= self.assoc:
                raise RuntimeError(
                    f"{self.name}: inserting 0x{line:x} into a full set; "
                    "evict the victim first"
                )
            entry = CacheEntry(line)
            cache_set[line] = entry
            self._stats.bump("fills")
        self.touch(entry)
        return entry

    def remove(self, line: int) -> Optional[CacheEntry]:
        """Remove and return the entry for ``line`` if present."""
        return self._set_of(line).pop(line, None)

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def dirty_entries(self) -> Iterator[CacheEntry]:
        for entry in self.entries():
            if entry.dirty:
                yield entry

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
