"""Set-associative cache arrays with epoch-tagged dirty lines.

This is the hardware extension of section 4.3: cache tags in both the L1
and the LLC carry an ``EpochID`` (and, in the LLC, a ``CoreID``) for
dirty lines.  In the simulator the tag pair is represented by a direct
reference to the :class:`~repro.core.epoch.Epoch` object that last wrote
the line -- exactly the information the (CoreID, EpochID) pair encodes in
hardware, without the 3-bit wraparound bookkeeping (the wraparound limit
is enforced separately by the per-core in-flight-epoch cap).

The arrays use true LRU replacement.  Insertion is split into
``victim_for`` / ``insert`` so the caller (the machine) can resolve
persist-ordering conflicts raised by evicting a dirty, not-yet-persisted
victim *before* mutating the array.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional

from repro.sim.engine import fast_paths_enabled
from repro.sim.stats import StatDomain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.epoch import Epoch


class CacheEntry:
    """One cache line's worth of state."""

    __slots__ = ("line", "dirty", "epoch", "values", "_lru")

    def __init__(self, line: int) -> None:
        self.line = line
        self.dirty = False
        # Epoch that last wrote the line, while that version is still
        # unpersisted.  None for clean lines and for dirty lines whose
        # epoch has already persisted this version.
        self.epoch: Optional["Epoch"] = None
        # Offset -> value token, populated only when value tracking is on.
        self.values: Optional[Dict[int, object]] = None
        self._lru = 0

    @property
    def unpersisted(self) -> bool:
        """True when this dirty version has not yet reached NVRAM."""
        return self.dirty and self.epoch is not None and not self.epoch.persisted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" epoch={self.epoch}" if self.epoch else ""
        return f"<line 0x{self.line:x}{' dirty' if self.dirty else ''}{tag}>"


class SetAssociativeCache:
    """An LRU set-associative cache array.

    Presence and replacement only; all coherence and persistence decisions
    live in the machine, which owns the interleaving of state changes with
    simulated time.
    """

    def __init__(
        self,
        name: str,
        num_sets: int,
        assoc: int,
        line_size: int,
        stats: StatDomain,
    ) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError(f"invalid cache geometry: {num_sets} sets x {assoc}")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self._offset_bits = line_size.bit_length() - 1
        # Set counts are powers of two for every stock geometry, which
        # turns the per-access modulo into a mask.
        self._set_mask = (
            num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        )
        self._sets: list[Dict[int, CacheEntry]] = [{} for _ in range(num_sets)]
        self._stats = stats
        self._tick = 0
        # Last-line memo: the micro workloads stream multiple accesses to
        # one line back to back (store bursts, load-after-store), so the
        # common lookup is for the line just looked up.  Only hits are
        # memoised; ``remove`` is the single path that could stale it.
        # Reference mode never populates the memo, so every lookup takes
        # the plain set-dictionary path.
        self._fast = fast_paths_enabled()
        self._last_line = -1
        self._last_entry: Optional[CacheEntry] = None
        # Fill count held as an attribute in fast mode (merged by
        # flush_hot_stats at run end); reference mode bumps per fill.
        self._n_fills = 0

    # ------------------------------------------------------------------
    # The set-index computation is inlined in lookup/victim_for/insert/
    # remove: those four sit under every memory request and a helper call
    # per access is measurable there.
    def _set_of(self, line: int) -> Dict[int, CacheEntry]:
        index = line >> self._offset_bits
        mask = self._set_mask
        if mask is not None:
            return self._sets[index & mask]
        return self._sets[index % self.num_sets]

    def lookup(self, line: int) -> Optional[CacheEntry]:
        """Return the entry for ``line`` or None, without touching LRU."""
        if line == self._last_line:
            return self._last_entry
        mask = self._set_mask
        if mask is not None:
            entry = self._sets[(line >> self._offset_bits) & mask].get(line)
        else:
            entry = self._set_of(line).get(line)
        if entry is not None and self._fast:
            self._last_line = line
            self._last_entry = entry
        return entry

    def dirty_under(self, lines, epoch) -> set:
        """Subset of ``lines`` resident, dirty, and tagged by ``epoch``.

        One pass replacing a per-line :meth:`lookup` loop (the flush
        begin probe walks every line of an epoch).  Deliberately skips
        the last-line memo: a bulk probe should not perturb the memo
        the demand path relies on, and the per-line result is identical
        either way.
        """
        sets = self._sets
        offset = self._offset_bits
        mask = self._set_mask
        out = set()
        if mask is not None:
            for line in lines:
                entry = sets[(line >> offset) & mask].get(line)
                if entry is not None and entry.dirty and entry.epoch is epoch:
                    out.add(line)
        else:
            nsets = self.num_sets
            for line in lines:
                entry = sets[(line >> offset) % nsets].get(line)
                if entry is not None and entry.dirty and entry.epoch is epoch:
                    out.add(line)
        return out

    def touch(self, entry: CacheEntry) -> None:
        """Mark ``entry`` most-recently-used."""
        self._tick = tick = self._tick + 1
        entry._lru = tick

    def victim_for(self, line: int) -> Optional[CacheEntry]:
        """Entry that must be evicted before ``line`` can be inserted.

        Returns None when the set has a free way or already holds ``line``.
        Prefers clean victims over dirty ones (a standard writeback-cache
        replacement bias, and important here because evicting a dirty
        unpersisted line drags persist ordering into the critical path).
        """
        mask = self._set_mask
        if mask is not None:
            cache_set = self._sets[(line >> self._offset_bits) & mask]
        else:
            cache_set = self._set_of(line)
        if line in cache_set or len(cache_set) < self.assoc:
            return None
        # Single pass: least-recently-used clean entry if one exists,
        # otherwise least-recently-used overall.  Dirty candidates stop
        # being tracked once any clean entry has been seen.
        best_clean: Optional[CacheEntry] = None
        best_dirty: Optional[CacheEntry] = None
        for entry in cache_set.values():
            if not entry.dirty:
                if best_clean is None or entry._lru < best_clean._lru:
                    best_clean = entry
            elif best_clean is None and (
                best_dirty is None or entry._lru < best_dirty._lru
            ):
                best_dirty = entry
        return best_clean if best_clean is not None else best_dirty

    def insert(self, line: int) -> CacheEntry:
        """Insert (or return the existing) entry for ``line``.

        The caller must have removed any victim first; inserting into a
        full set raises, because silently dropping a possibly-dirty line
        would corrupt epoch bookkeeping.
        """
        mask = self._set_mask
        if mask is not None:
            cache_set = self._sets[(line >> self._offset_bits) & mask]
        else:
            cache_set = self._set_of(line)
        entry = cache_set.get(line)
        if entry is None:
            if len(cache_set) >= self.assoc:
                raise RuntimeError(
                    f"{self.name}: inserting 0x{line:x} into a full set; "
                    "evict the victim first"
                )
            entry = CacheEntry(line)
            cache_set[line] = entry
            if self._fast:
                self._n_fills += 1
            else:
                self._stats.bump("fills")
        if self._fast:
            self._last_line = line
            self._last_entry = entry
        self.touch(entry)
        return entry

    def swap_in(self, line: int,
                victim: Optional[CacheEntry] = None) -> CacheEntry:
        """Replace ``victim`` (clean, same set, from ``victim_for``) with
        a fresh entry for ``line`` -- remove + insert with a single set
        resolution.  ``victim=None`` degenerates to a plain insert."""
        mask = self._set_mask
        if mask is not None:
            cache_set = self._sets[(line >> self._offset_bits) & mask]
        else:
            cache_set = self._set_of(line)
        if victim is not None:
            victim_line = victim.line
            if victim_line == self._last_line:
                self._last_line = -1
                self._last_entry = None
            cache_set.pop(victim_line, None)
        entry = cache_set.get(line)
        if entry is None:
            if len(cache_set) >= self.assoc:
                raise RuntimeError(
                    f"{self.name}: inserting 0x{line:x} into a full set; "
                    "evict the victim first"
                )
            entry = CacheEntry(line)
            cache_set[line] = entry
            if self._fast:
                self._n_fills += 1
            else:
                self._stats.bump("fills")
        if self._fast:
            self._last_line = line
            self._last_entry = entry
        self._tick = tick = self._tick + 1
        entry._lru = tick
        return entry

    def clean_fill(self, line: int):
        """Single-pass fill for the fused request paths: pick the victim
        and insert ``line`` with one set resolution.

        Returns ``(entry, victim_line)`` -- ``victim_line`` is -1 when a
        free way absorbed the fill -- or None, without mutating anything,
        when the only viable victim is dirty (the caller falls back to
        the general path, whose ``victim_for`` picks that same victim).
        The clean-victim choice matches ``victim_for``: least-recently-
        used clean entry.  The caller guarantees ``line`` misses.
        """
        mask = self._set_mask
        if mask is not None:
            cache_set = self._sets[(line >> self._offset_bits) & mask]
        else:
            cache_set = self._set_of(line)
        victim_line = -1
        if len(cache_set) >= self.assoc:
            best: Optional[CacheEntry] = None
            for entry in cache_set.values():
                if not entry.dirty and (
                    best is None or entry._lru < best._lru
                ):
                    best = entry
            if best is None:
                return None
            victim_line = best.line
            if victim_line == self._last_line:
                self._last_line = -1
                self._last_entry = None
            del cache_set[victim_line]
        entry = CacheEntry(line)
        cache_set[line] = entry
        if self._fast:
            self._n_fills += 1
            self._last_line = line
            self._last_entry = entry
        else:
            self._stats.bump("fills")
        self._tick = tick = self._tick + 1
        entry._lru = tick
        return entry, victim_line

    def remove(self, line: int) -> Optional[CacheEntry]:
        """Remove and return the entry for ``line`` if present."""
        if line == self._last_line:
            self._last_line = -1
            self._last_entry = None
        mask = self._set_mask
        if mask is not None:
            return self._sets[(line >> self._offset_bits) & mask].pop(
                line, None)
        return self._set_of(line).pop(line, None)

    def flush_hot_stats(self) -> None:
        """Merge the attribute-held fill count into the stat domain."""
        if self._n_fills:
            self._stats.bump("fills", self._n_fills)
            self._n_fills = 0

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def dirty_entries(self) -> Iterator[CacheEntry]:
        for entry in self.entries():
            if entry.dirty:
                yield entry

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
