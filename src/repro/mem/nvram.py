"""NVRAM: memory controllers and the persistent-memory image.

The memory controllers model the bandwidth side of persistence.  Each
controller is a FIFO server: a line write occupies the controller for
``mc_write_occupancy`` cycles and completes (PersistAck, in the Figure 6/8
protocol) ``nvram_write_latency`` cycles after it starts service.  Under
flush storms -- exactly what small BSP epochs produce -- the queue grows
and persist latency balloons, which is the effect behind Figure 13.

:class:`NVRAMImage` is the correctness oracle.  Every line write that the
controller acknowledges is recorded with a global persist sequence number
and the epoch that produced the value.  The recovery checker replays this
record to verify that the persisted state at any crash point respects the
epoch happens-before order (and, for BSP, that undo logging restores
epoch atomicity).  Per-line :class:`PersistRecord` bookkeeping
(``last_persist``, ``history``) is only maintained when ``track_order``
is on -- it exists for the recovery checker, and skipping it keeps the
common untracked run allocation-free per persist.

Epoch flushes reserve a whole run of line writes at once through
:meth:`MemoryController.write_batch`: the FIFO service starts for all k
lines are computed in one arithmetic pass (no per-line arrival events),
and a single self-rescheduling :class:`_WriteRun` event commits each line
at its exact completion time.  Committing per line -- rather than once at
the end of the run -- is what keeps crash truncation exact: a crash at
cycle C observes precisely the commits with time <= C.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.sim.config import MachineConfig
from repro.sim.engine import Engine
from repro.sim.faults import ProtocolError, backoff_cycles
from repro.sim.stats import StatDomain


class PersistRecord(NamedTuple):
    """One acknowledged NVRAM line write."""

    index: int          # global persist sequence number
    time: int           # cycle at which the write became durable
    line: int
    core_id: int        # core whose epoch produced the value (-1: none)
    epoch_seq: int      # per-core epoch sequence number (-1: none)
    kind: str           # "data", "log", "checkpoint", "eviction"


class NVRAMImage:
    """Durable state: what survives a crash.

    Tracks the last persisted value tokens per line and, when
    ``track_order`` is on, the per-line record of the last persist and
    the full ordered history for the recovery checker.  Two parallel
    structures make the history *replayable* so the crash sweep can
    reconstruct the durable state at any truncation point without
    re-running the machine:

    * ``history_values[i]`` is the value snapshot ``history[i]``
      committed (None when the commit carried no values);
    * ``history_log[i]`` is the ``(data_line, old_values)`` payload of
      an undo-log commit at index ``i``.

    Both hold references to the same objects the live ``values`` /
    ``log_entries`` maps do (ownership already transferred at commit),
    so the extra tracking is one list append per persist.

    ``reorder_window > 0`` enables the deliberately *unsound* fault of
    :mod:`repro.sim.faults`: data/eviction commits are buffered and
    recorded in reversed order once the window fills.  Only the
    *recorded image* is perturbed -- simulation timing, acks, and stats
    are untouched -- modelling ordering-oblivious hardware under the
    same traffic.  On a crashed run, still-buffered persists are simply
    lost (in flight inside the reordering hardware).
    """

    def __init__(self, track_order: bool = False,
                 reorder_window: int = 0) -> None:
        self.track_order = track_order
        self._next_index = 0
        # line -> (offset -> token) of the last persisted version.
        self.values: Dict[int, Dict[int, object]] = {}
        # line -> PersistRecord of the last persist (track_order only).
        self.last_persist: Dict[int, PersistRecord] = {}
        self.history: List[PersistRecord] = []
        # Per-record replay payloads, parallel to ``history``
        # (track_order only).
        self.history_values: List[Optional[Dict[int, object]]] = []
        self.history_log: Dict[int, Tuple[int, Dict[int, object]]] = {}
        # Undo-log region contents: log_line -> (data_line, old values).
        self.log_entries: Dict[int, Tuple[int, Dict[int, object]]] = {}
        self._reorder_window = reorder_window
        self._deferred: List[tuple] = []

    def commit(
        self,
        time: int,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        values: Optional[Dict[int, object]] = None,
    ) -> Optional[PersistRecord]:
        """Record ``line`` becoming durable.

        ``values`` ownership transfers to the image: callers pass a
        private snapshot and must not mutate it afterwards (this is what
        lets the common path avoid a second ``dict(values)`` copy).
        """
        if self._reorder_window and kind in ("data", "eviction"):
            self._deferred.append(
                (time, line, core_id, epoch_seq, kind, values)
            )
            if len(self._deferred) >= self._reorder_window:
                self.flush_reorder_buffer()
            return None
        return self._commit(time, line, core_id, epoch_seq, kind, values)

    def _commit(
        self,
        time: int,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        values: Optional[Dict[int, object]],
    ) -> Optional[PersistRecord]:
        index = self._next_index
        self._next_index += 1
        if values is not None:
            self.values[line] = values
        if not self.track_order:
            return None
        record = PersistRecord(index, time, line, core_id, epoch_seq, kind)
        self.last_persist[line] = record
        self.history.append(record)
        self.history_values.append(values)
        return record

    def flush_reorder_buffer(self) -> int:
        """Drain the reorder fault's window, committing it *reversed*.

        Called when the window fills and at end-of-run drain; returns
        the number of records committed.  A no-op without the fault.
        """
        batch = self._deferred
        if not batch:
            return 0
        self._deferred = []
        for args in reversed(batch):
            self._commit(*args)
        return len(batch)

    @property
    def deferred_persists(self) -> int:
        """Persists still buffered by the reorder fault (lost at a
        crash)."""
        return len(self._deferred)

    def commit_log(
        self,
        time: int,
        log_line: int,
        data_line: int,
        core_id: int,
        epoch_seq: int,
        old_values: Optional[Dict[int, object]],
    ) -> Optional[PersistRecord]:
        """Record an undo-log entry becoming durable.

        Like :meth:`commit`, takes ownership of ``old_values``.
        """
        payload = (data_line, old_values if old_values is not None else {})
        self.log_entries[log_line] = payload
        record = self._commit(time, log_line, core_id, epoch_seq, "log",
                              None)
        if record is not None:
            self.history_log[record.index] = payload
        return record

    @property
    def persist_count(self) -> int:
        return self._next_index


class _WriteRun:
    """A reserved FIFO run of flush writes walking to completion.

    The controller computed every completion time when the run was
    reserved; one event per line then commits it at exactly that time.
    Lines whose cache copy vanished before issue (``issued`` stays 0 --
    the eviction path persisted them meanwhile) keep their reserved slot
    but commit nothing.
    """

    __slots__ = (
        "_mc", "_lines", "_dones", "_values", "_issued",
        "_core_id", "_epoch_seq", "_kind", "_on_line", "_pos",
    )

    def __init__(
        self,
        mc: "MemoryController",
        lines: List[int],
        dones: List[int],
        core_id: int,
        epoch_seq: int,
        kind: str,
        on_line: Callable[[int], None],
    ) -> None:
        self._mc = mc
        self._lines = lines
        self._dones = dones
        self._values: List[Optional[Dict[int, object]]] = [None] * len(lines)
        self._issued = bytearray(len(lines))
        self._core_id = core_id
        self._epoch_seq = epoch_seq
        self._kind = kind
        self._on_line = on_line
        self._pos = 0

    def mark_issued(self, pos: int,
                    values: Optional[Dict[int, object]]) -> None:
        """The flush engine issued slot ``pos``; ``values`` is a private
        snapshot taken at issue time (ownership passes to the image)."""
        self._issued[pos] = 1
        self._values[pos] = values

    def step(self) -> None:
        pos = self._pos
        mc = self._mc
        time = self._dones[pos]
        if self._issued[pos]:
            mc._account_write(self._kind)
            mc._image.commit(
                time, self._lines[pos], self._core_id, self._epoch_seq,
                self._kind, self._values[pos],
            )
            self._values[pos] = None
            if mc._faults is None:
                self._on_line(time)
            else:
                mc._deliver_persist_ack(
                    time, self._lines[pos], self._core_id,
                    self._epoch_seq, self._on_line,
                )
        pos += 1
        self._pos = pos
        if pos < len(self._dones):
            mc._engine.schedule_call(self._dones[pos] - time, self.step)


class _WriteOne:
    """A reserved FIFO slot for a single flush write.

    Specialisation of :class:`_WriteRun` for ``k == 1`` runs -- the
    dominant shape on contended multicores, where each epoch scatters a
    handful of lines one-per-bank.  Same reservation rule, same commit
    event, same ``mark_issued`` surface; no per-run list scaffolding.
    """

    __slots__ = (
        "_mc", "_line", "_done", "_value", "_issued",
        "_core_id", "_epoch_seq", "_kind", "_on_line",
    )

    def __init__(
        self,
        mc: "MemoryController",
        line: int,
        done: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        on_line: Callable[[int], None],
    ) -> None:
        self._mc = mc
        self._line = line
        self._done = done
        self._value: Optional[Dict[int, object]] = None
        self._issued = False
        self._core_id = core_id
        self._epoch_seq = epoch_seq
        self._kind = kind
        self._on_line = on_line

    def mark_issued(self, pos: int,
                    values: Optional[Dict[int, object]]) -> None:
        self._issued = True
        self._value = values

    def step(self) -> None:
        if self._issued:
            mc = self._mc
            mc._account_write(self._kind)
            mc._image.commit(
                self._done, self._line, self._core_id, self._epoch_seq,
                self._kind, self._value,
            )
            self._value = None
            if mc._faults is None:
                self._on_line(self._done)
            else:
                mc._deliver_persist_ack(
                    self._done, self._line, self._core_id,
                    self._epoch_seq, self._on_line,
                )


class MemoryController:
    """One NVRAM memory controller: a FIFO server with fixed latencies."""

    def __init__(
        self,
        mc_id: int,
        config: MachineConfig,
        engine: Engine,
        image: NVRAMImage,
        stats: StatDomain,
        faults=None,
    ) -> None:
        self.mc_id = mc_id
        self._config = config
        self._engine = engine
        self._image = image
        self._stats = stats
        self._busy_until = 0
        # Fault injection (sim/faults.py): transient service-start
        # stalls, keyed on the controller's transaction ordinal so both
        # engine modes stall the same transactions.  None (the default)
        # keeps the hot path untouched.
        self._faults = faults
        self._txn_ordinal = 0
        self._n_fault_stalls = 0
        self._fault_stall_cycles = 0
        # Media-fault accounting (torn-line rewrites, transient write
        # retries) and PersistAck-loss accounting, hot-counter idiom.
        self._n_torn_writes = 0
        self._n_write_retries = 0
        self._media_retry_cycles = 0
        self._n_persist_ack_drops = 0
        # Hot-path accounting: every controller transaction counts a
        # read/write and records its queue wait.  The fast path holds
        # these in plain attributes, merged into the stat domain by
        # flush_hot_stats() at run end; reference mode bumps/records per
        # transaction.
        self._fast = engine.fast
        self._n_reads = 0
        self._n_writes = 0
        self._writes_by_kind: Dict[str, int] = {}
        self._qw_sum = 0
        self._qw_count = 0
        self._qw_max = 0

    def _fault_stall(self, write: bool = False) -> int:
        """Stall cycles for the next transaction (0 without faults).

        Write transactions additionally draw the media faults: torn
        lines detected by verify-after-write are rewritten (each rewrite
        costs ``torn_write_cycles``; the chain is bounded by
        ``max_torn_write_retries`` with the watchdog raising
        :class:`ProtocolError` past it), and a transient media retry
        costs ``write_retry_cycles`` once.  The data always commits
        intact -- only durability *timing* slips, the image never
        records a torn value.
        """
        faults = self._faults
        ordinal = self._txn_ordinal
        self._txn_ordinal = ordinal + 1
        stall = faults.mc_stall(self.mc_id, ordinal)
        if stall:
            if self._fast:
                self._n_fault_stalls += 1
                self._fault_stall_cycles += stall
            else:
                self._stats.bump("fault_stalls")
                self._stats.bump("fault_stall_cycles", stall)
        if write and faults.media_active:
            cfg = faults.config
            extra = 0
            tears = faults.torn_write_retries(self.mc_id, ordinal)
            if tears:
                if tears > cfg.max_torn_write_retries:
                    raise ProtocolError(
                        f"torn-write rewrite chain at mc {self.mc_id} "
                        f"ordinal {ordinal} exceeded bound "
                        f"{cfg.max_torn_write_retries} ({tears} rewrites)"
                    )
                extra += tears * cfg.torn_write_cycles
                if self._fast:
                    self._n_torn_writes += tears
                else:
                    self._stats.bump("fault_torn_writes", tears)
            if faults.write_retry(self.mc_id, ordinal):
                extra += cfg.write_retry_cycles
                if self._fast:
                    self._n_write_retries += 1
                else:
                    self._stats.bump("fault_write_retries")
            if extra:
                if self._fast:
                    self._media_retry_cycles += extra
                else:
                    self._stats.bump("fault_media_cycles", extra)
                stall += extra
        return stall

    def _deliver_persist_ack(
        self,
        time: int,
        line: int,
        core_id: int,
        epoch_seq: int,
        on_line: Callable[[int], None],
    ) -> None:
        """Deliver a flush-handshake PersistAck, possibly late.

        A lost ack is retransmitted by the controller after
        ``persist_ack_timeout`` with exponential backoff (the line is
        already durable; only its acknowledgement slips), bounded by
        ``max_persist_ack_retries``.  Eviction-path persists
        (``core_id < 0`` / ``epoch_seq < 0``) have no handshake ack to
        lose and always deliver directly.
        """
        faults = self._faults
        if (
            core_id < 0
            or epoch_seq < 0
            or not faults.persist_ack_active
        ):
            on_line(time)
            return
        resends = faults.persist_ack_resends(core_id, epoch_seq, line)
        if not resends:
            on_line(time)
            return
        cfg = faults.config
        if resends > cfg.max_persist_ack_retries:
            raise ProtocolError(
                f"PersistAck retry chain for line {line:#x} of core "
                f"{core_id} epoch seq {epoch_seq} exceeded bound "
                f"{cfg.max_persist_ack_retries} ({resends} resends)"
            )
        if self._fast:
            self._n_persist_ack_drops += resends
        else:
            self._stats.bump("fault_persist_ack_drops", resends)
        extra = backoff_cycles(cfg.persist_ack_timeout, resends)
        self._engine.schedule_call(extra, on_line, time + extra)

    def _service_start(self, occupancy: int, write: bool = False) -> int:
        now = self._engine.now
        start = max(now, self._busy_until)
        if self._faults is not None:
            start += self._fault_stall(write)
        self._busy_until = start + occupancy
        queue_wait = start - now
        if self._fast:
            self._qw_sum += queue_wait
            self._qw_count += 1
            if queue_wait > self._qw_max:
                self._qw_max = queue_wait
        else:
            self._stats.record("queue_wait", queue_wait)
        return start

    def _account_write(self, kind: str) -> None:
        if self._fast:
            self._n_writes += 1
            by_kind = self._writes_by_kind
            by_kind[kind] = by_kind.get(kind, 0) + 1
        else:
            self._stats.bump("writes")
            self._stats.bump(f"writes_{kind}")

    def flush_hot_stats(self) -> None:
        """Merge the attribute-held counters into the stat domain.

        Idempotent (counters reset as they merge); the machine calls
        this at run end so post-run readers see exactly what per-call
        ``bump``/``record`` would have produced.
        """
        stats = self._stats
        if self._n_reads:
            stats.bump("reads", self._n_reads)
            self._n_reads = 0
        if self._n_writes:
            stats.bump("writes", self._n_writes)
            self._n_writes = 0
        for kind, count in self._writes_by_kind.items():
            stats.bump(f"writes_{kind}", count)
        self._writes_by_kind.clear()
        if self._qw_count:
            stats.merge_samples(
                "queue_wait", self._qw_sum, self._qw_count, self._qw_max
            )
            self._qw_sum = 0
            self._qw_count = 0
            self._qw_max = 0
        if self._n_fault_stalls:
            stats.bump("fault_stalls", self._n_fault_stalls)
            stats.bump("fault_stall_cycles", self._fault_stall_cycles)
            self._n_fault_stalls = 0
            self._fault_stall_cycles = 0
        if self._n_torn_writes:
            stats.bump("fault_torn_writes", self._n_torn_writes)
            self._n_torn_writes = 0
        if self._n_write_retries:
            stats.bump("fault_write_retries", self._n_write_retries)
            self._n_write_retries = 0
        if self._media_retry_cycles:
            stats.bump("fault_media_cycles", self._media_retry_cycles)
            self._media_retry_cycles = 0
        if self._n_persist_ack_drops:
            stats.bump("fault_persist_ack_drops",
                       self._n_persist_ack_drops)
            self._n_persist_ack_drops = 0

    # ------------------------------------------------------------------
    def read(self, line: int, callback: Callable[..., None],
             *cb_args: object) -> None:
        """Schedule a line read; ``callback(*cb_args, completion_time)``
        fires when the data is available at the controller."""
        start = self._service_start(self._config.mc_read_occupancy)
        done = start + self._config.nvram_read_latency
        if self._fast:
            self._n_reads += 1
        else:
            self._stats.bump("reads")
        self._engine.schedule_call(
            done - self._engine.now, callback, *cb_args, done
        )

    def write(
        self,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        values: Optional[Dict[int, object]] = None,
        callback: Optional[Callable[..., None]] = None,
        cb_args: Tuple = (),
    ) -> None:
        """Schedule a durable line write (a persist).

        The write is committed to the :class:`NVRAMImage` at its
        completion time, then ``callback(*cb_args, completion_time)``
        fires (the PersistAck).  ``values`` ownership transfers to the
        image at commit.
        """
        start = self._service_start(self._config.mc_write_occupancy,
                                    write=True)
        done = start + self._config.nvram_write_latency
        self._account_write(kind)
        self._engine.schedule_call(
            done - self._engine.now, self._commit_write,
            done, line, core_id, epoch_seq, kind, values, callback, cb_args,
        )

    def _commit_write(
        self,
        time: int,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        values: Optional[Dict[int, object]],
        callback: Optional[Callable[..., None]],
        cb_args: Tuple,
    ) -> None:
        if kind == "log":
            # ``line`` would be a log-region address; the data line and
            # old values ride along separately, which write_log handles.
            raise AssertionError("log writes must go through write_log()")
        self._image.commit(time, line, core_id, epoch_seq, kind, values)
        if callback is not None:
            callback(*cb_args, time)

    def write_batch(
        self,
        arrivals: List[int],
        lines: List[int],
        core_id: int,
        epoch_seq: int,
        kind: str,
        on_line: Callable[[int], None],
    ) -> _WriteRun:
        """Reserve a FIFO run of ``k`` line writes in one arithmetic pass.

        ``arrivals`` are the (ascending-issue-order) cycles at which each
        line reaches the controller; service starts follow the same
        ``max(arrival, busy)`` FIFO rule as :meth:`write`, but the whole
        run claims its slots now -- the flush engine reserves controller
        bandwidth for its line run up front instead of contending per
        line.  One :class:`_WriteRun` event then commits each line at its
        exact completion time and calls ``on_line(time)`` for it.

        Write counts are accounted per *committed* line (a reserved slot
        whose line was persisted through the eviction path meanwhile
        commits nothing); queue waits are recorded per reserved slot.
        """
        config = self._config
        occupancy = config.mc_write_occupancy
        latency = config.nvram_write_latency
        faults = self._faults
        busy = self._busy_until
        dones: List[int] = []
        if self._fast:
            qw_sum = self._qw_sum
            qw_max = self._qw_max
            for arrival in arrivals:
                start = arrival if arrival > busy else busy
                if faults is not None:
                    start += self._fault_stall(True)
                busy = start + occupancy
                wait = start - arrival
                qw_sum += wait
                if wait > qw_max:
                    qw_max = wait
                dones.append(start + latency)
            self._qw_sum = qw_sum
            self._qw_max = qw_max
            self._qw_count += len(arrivals)
        else:
            stats = self._stats
            for arrival in arrivals:
                start = arrival if arrival > busy else busy
                if faults is not None:
                    start += self._fault_stall(True)
                busy = start + occupancy
                stats.record("queue_wait", start - arrival)
                dones.append(start + latency)
        self._busy_until = busy
        run = _WriteRun(self, lines, dones, core_id, epoch_seq, kind,
                        on_line)
        self._engine.schedule_call(dones[0] - self._engine.now, run.step)
        return run

    def write_single(
        self,
        arrival: int,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        on_line: Callable[[int], None],
    ) -> _WriteOne:
        """Reserve one FIFO write slot: :meth:`write_batch` for ``k=1``.

        Identical reservation arithmetic and commit event, minus the
        per-run list scaffolding; both engine modes take this path, so
        fast/reference schedules stay in lockstep.
        """
        config = self._config
        busy = self._busy_until
        start = arrival if arrival > busy else busy
        if self._faults is not None:
            start += self._fault_stall(True)
        self._busy_until = start + config.mc_write_occupancy
        wait = start - arrival
        if self._fast:
            self._qw_sum += wait
            self._qw_count += 1
            if wait > self._qw_max:
                self._qw_max = wait
        else:
            self._stats.record("queue_wait", wait)
        done = start + config.nvram_write_latency
        run = _WriteOne(self, line, done, core_id, epoch_seq, kind,
                        on_line)
        self._engine.schedule_call(done - self._engine.now, run.step)
        return run

    def write_log(
        self,
        log_line: int,
        data_line: int,
        core_id: int,
        epoch_seq: int,
        old_values: Optional[Dict[int, object]],
        callback: Optional[Callable[..., None]] = None,
        cb_args: Tuple = (),
    ) -> None:
        """Schedule an undo-log entry write (section 5.2.1)."""
        start = self._service_start(self._config.mc_write_occupancy,
                                    write=True)
        done = start + self._config.nvram_write_latency
        self._account_write("log")
        self._engine.schedule_call(
            done - self._engine.now, self._commit_log,
            done, log_line, data_line, core_id, epoch_seq, old_values,
            callback, cb_args,
        )

    def _commit_log(
        self,
        time: int,
        log_line: int,
        data_line: int,
        core_id: int,
        epoch_seq: int,
        old_values: Optional[Dict[int, object]],
        callback: Optional[Callable[..., None]],
        cb_args: Tuple,
    ) -> None:
        self._image.commit_log(
            time, log_line, data_line, core_id, epoch_seq, old_values
        )
        if callback is not None:
            callback(*cb_args, time)
