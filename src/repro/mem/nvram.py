"""NVRAM: memory controllers and the persistent-memory image.

The memory controllers model the bandwidth side of persistence.  Each
controller is a FIFO server: a line write occupies the controller for
``mc_write_occupancy`` cycles and completes (PersistAck, in the Figure 6/8
protocol) ``nvram_write_latency`` cycles after it starts service.  Under
flush storms -- exactly what small BSP epochs produce -- the queue grows
and persist latency balloons, which is the effect behind Figure 13.

:class:`NVRAMImage` is the correctness oracle.  Every line write that the
controller acknowledges is recorded with a global persist sequence number
and the epoch that produced the value.  The recovery checker replays this
record to verify that the persisted state at any crash point respects the
epoch happens-before order (and, for BSP, that undo logging restores
epoch atomicity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.config import MachineConfig
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain


@dataclass(frozen=True)
class PersistRecord:
    """One acknowledged NVRAM line write."""

    index: int          # global persist sequence number
    time: int           # cycle at which the write became durable
    line: int
    core_id: int        # core whose epoch produced the value (-1: none)
    epoch_seq: int      # per-core epoch sequence number (-1: none)
    kind: str           # "data", "log", "checkpoint", "eviction"


class NVRAMImage:
    """Durable state: what survives a crash.

    Tracks the last persisted value tokens per line and, when
    ``track_order`` is on, the full ordered history of persists for the
    recovery checker.
    """

    def __init__(self, track_order: bool = False) -> None:
        self.track_order = track_order
        self._next_index = 0
        # line -> (offset -> token) of the last persisted version.
        self.values: Dict[int, Dict[int, object]] = {}
        # line -> PersistRecord of the last persist.
        self.last_persist: Dict[int, PersistRecord] = {}
        self.history: List[PersistRecord] = []
        # Undo-log region contents: log_line -> (data_line, old values).
        self.log_entries: Dict[int, Tuple[int, Dict[int, object]]] = {}

    def commit(
        self,
        time: int,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        values: Optional[Dict[int, object]] = None,
    ) -> PersistRecord:
        record = PersistRecord(
            self._next_index, time, line, core_id, epoch_seq, kind
        )
        self._next_index += 1
        self.last_persist[line] = record
        if values is not None:
            self.values[line] = dict(values)
        if self.track_order:
            self.history.append(record)
        return record

    def commit_log(
        self,
        time: int,
        log_line: int,
        data_line: int,
        core_id: int,
        epoch_seq: int,
        old_values: Optional[Dict[int, object]],
    ) -> PersistRecord:
        """Record an undo-log entry becoming durable."""
        self.log_entries[log_line] = (data_line, dict(old_values or {}))
        return self.commit(time, log_line, core_id, epoch_seq, "log")

    @property
    def persist_count(self) -> int:
        return self._next_index


class MemoryController:
    """One NVRAM memory controller: a FIFO server with fixed latencies."""

    def __init__(
        self,
        mc_id: int,
        config: MachineConfig,
        engine: Engine,
        image: NVRAMImage,
        stats: StatDomain,
    ) -> None:
        self.mc_id = mc_id
        self._config = config
        self._engine = engine
        self._image = image
        self._stats = stats
        self._busy_until = 0
        # Hot-path accounting: every controller transaction counts a
        # read/write and records its queue wait.  The fast path holds
        # these in plain attributes, merged into the stat domain by
        # flush_hot_stats() at run end; reference mode bumps/records per
        # transaction.
        self._fast = engine.fast
        self._n_reads = 0
        self._n_writes = 0
        self._writes_by_kind: Dict[str, int] = {}
        self._qw_sum = 0
        self._qw_count = 0
        self._qw_max = 0

    def _service_start(self, occupancy: int) -> int:
        now = self._engine.now
        start = max(now, self._busy_until)
        self._busy_until = start + occupancy
        queue_wait = start - now
        if self._fast:
            self._qw_sum += queue_wait
            self._qw_count += 1
            if queue_wait > self._qw_max:
                self._qw_max = queue_wait
        else:
            self._stats.record("queue_wait", queue_wait)
        return start

    def flush_hot_stats(self) -> None:
        """Merge the attribute-held counters into the stat domain.

        Idempotent (counters reset as they merge); the machine calls
        this at run end so post-run readers see exactly what per-call
        ``bump``/``record`` would have produced.
        """
        stats = self._stats
        if self._n_reads:
            stats.bump("reads", self._n_reads)
            self._n_reads = 0
        if self._n_writes:
            stats.bump("writes", self._n_writes)
            self._n_writes = 0
        for kind, count in self._writes_by_kind.items():
            stats.bump(f"writes_{kind}", count)
        self._writes_by_kind.clear()
        if self._qw_count:
            stats.merge_samples(
                "queue_wait", self._qw_sum, self._qw_count, self._qw_max
            )
            self._qw_sum = 0
            self._qw_count = 0
            self._qw_max = 0

    # ------------------------------------------------------------------
    def read(self, line: int, callback: Callable[[int], None]) -> None:
        """Schedule a line read; ``callback(completion_time)`` fires when
        the data is available at the controller."""
        start = self._service_start(self._config.mc_read_occupancy)
        done = start + self._config.nvram_read_latency
        if self._fast:
            self._n_reads += 1
        else:
            self._stats.bump("reads")
        self._engine.schedule_call(done - self._engine.now, callback, done)

    def write(
        self,
        line: int,
        core_id: int,
        epoch_seq: int,
        kind: str,
        values: Optional[Dict[int, object]] = None,
        callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Schedule a durable line write (a persist).

        The write is committed to the :class:`NVRAMImage` at its completion
        time, then ``callback(completion_time)`` fires (the PersistAck).
        """
        start = self._service_start(self._config.mc_write_occupancy)
        done = start + self._config.nvram_write_latency
        if self._fast:
            self._n_writes += 1
            by_kind = self._writes_by_kind
            by_kind[kind] = by_kind.get(kind, 0) + 1
        else:
            self._stats.bump("writes")
            self._stats.bump(f"writes_{kind}")

        def _complete(time: int = done) -> None:
            if kind == "log":
                # ``line`` here is the log-region address; the data line and
                # old values ride in ``values`` via a convention handled by
                # the undo-log module, which calls commit_log directly.
                raise AssertionError(
                    "log writes must go through write_log()"
                )
            self._image.commit(time, line, core_id, epoch_seq, kind, values)
            if callback is not None:
                callback(time)

        self._engine.schedule_call(done - self._engine.now, _complete)

    def write_log(
        self,
        log_line: int,
        data_line: int,
        core_id: int,
        epoch_seq: int,
        old_values: Optional[Dict[int, object]],
        callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Schedule an undo-log entry write (section 5.2.1)."""
        start = self._service_start(self._config.mc_write_occupancy)
        done = start + self._config.nvram_write_latency
        if self._fast:
            self._n_writes += 1
            by_kind = self._writes_by_kind
            by_kind["log"] = by_kind.get("log", 0) + 1
        else:
            self._stats.bump("writes")
            self._stats.bump("writes_log")

        def _complete() -> None:
            self._image.commit_log(
                done, log_line, data_line, core_id, epoch_seq, old_values
            )
            if callback is not None:
                callback(done)

        self._engine.schedule_call(done - self._engine.now, _complete)
