"""MSI directory coherence.

The LLC directory tracks, per line, which core (if any) holds the line
modified in its private L1 and which cores hold shared copies.  This is
the machinery that *detects* inter-thread conflicts: a request that finds
the line dirty under another core's unpersisted epoch (whether the dirty
copy sits in the remote L1 or has been written back to the LLC) creates a
new inter-thread persist-ordering constraint (section 3.1).

The directory here is behavioural, not message-accurate: the machine
consults and updates it atomically per transaction and accounts latency
separately (remote-L1 forwarding costs an extra mesh round trip).

Two implementations share one API:

* :class:`Directory` (fast mode) keeps two flat dicts -- ``line ->
  owner core`` and ``line -> sharer bitmask`` -- so the hot queries the
  request path runs per access (``owner_of``, ``exclusive_ok``) are one
  dict probe plus integer arithmetic, with no per-line entry object and
  no sharer-set allocation anywhere on the clean path.
* :class:`ReferenceDirectory` (``REPRO_SLOW_ENGINE=1``) is the
  original per-line :class:`DirectoryEntry` form, kept deliberately
  plain as the executable specification the determinism-digest tests
  compare against.

Shared invariants (asserted by the equivalence tests):

* an owner always appears in the sharer record, and an *exclusive*
  owner is the only sharer (``owner == c`` implies ``sharers == {c}``);
* a read by another core downgrades the owner to a sharer;
* a line with no owner and no sharers has no record at all (``peek``
  returns None) -- entries are reclaimed eagerly so the table tracks
  only lines actually cached somewhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set


class DirectoryEntry:
    """Per-line coherence state (reference representation)."""

    __slots__ = ("owner", "sharers")

    def __init__(self) -> None:
        # Core whose L1 holds the line in M state, or None.
        self.owner: Optional[int] = None
        # Cores holding the line in S state in their L1.
        self.sharers: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<dir owner={self.owner} sharers={sorted(self.sharers)}>"


class Directory:
    """Machine-wide line -> coherence-state map (flat bitmask form).

    ``_owner`` maps a line to its M-state core; a line is present iff it
    has an owner.  ``_sharers`` maps a line to a bitmask of cores with a
    cached copy; a line is present iff the mask is nonzero.  Presence in
    ``_owner`` implies ``_sharers[line] == 1 << owner``.
    """

    __slots__ = ("_owner", "_sharers")

    def __init__(self) -> None:
        self._owner: Dict[int, int] = {}
        self._sharers: Dict[int, int] = {}

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        """A snapshot entry if the line is tracked, without creating one.

        Builds a fresh :class:`DirectoryEntry` view (tests and debugging
        only -- the hot paths use :meth:`owner_of` / :meth:`sharers_of`
        / :meth:`exclusive_ok`, which never allocate).
        """
        mask = self._sharers.get(line)
        if mask is None:
            return None
        ent = DirectoryEntry()
        ent.owner = self._owner.get(line)
        ent.sharers = set(_decode(mask))
        return ent

    def owner_of(self, line: int) -> Optional[int]:
        return self._owner.get(line)

    def sharers_of(self, line: int) -> List[int]:
        """Cores holding a copy of ``line`` (ascending, fresh list)."""
        mask = self._sharers.get(line)
        return _decode(mask) if mask else []

    def drop_core(self, line: int, core_id: int) -> None:
        """Remove all record of ``core_id`` caching ``line``."""
        sharers = self._sharers
        mask = sharers.get(line)
        if mask is None:
            return
        owner = self._owner
        if owner.get(line) == core_id:
            del owner[line]
        mask &= ~(1 << core_id)
        if mask:
            sharers[line] = mask
        else:
            del sharers[line]
            owner.pop(line, None)

    def set_owner(self, line: int, core_id: int) -> None:
        """Grant ``core_id`` exclusive (M) ownership of ``line``."""
        owner = self._owner
        if owner.get(line) == core_id:
            # Already the exclusive owner (an owner is always the sole
            # sharer).  Streaming store bursts hit this on every op.
            return
        owner[line] = core_id
        self._sharers[line] = 1 << core_id

    def add_sharer(self, line: int, core_id: int) -> None:
        sharers = self._sharers
        sharers[line] = sharers.get(line, 0) | (1 << core_id)
        cur = self._owner.get(line)
        if cur is not None and cur != core_id:
            # Owner downgraded to S by the read that added a sharer; its
            # bit is already in the mask (owner => sole sharer).
            del self._owner[line]

    def exclusive_ok(self, line: int, core_id: int) -> bool:
        """True when ``core_id`` could take M on ``line`` without any
        invalidation or forwarding: no record, or no *foreign* owner and
        no foreign sharers.  Two dict probes, no allocation -- the guard
        the fused store paths use to stay conflict-free."""
        cur = self._owner.get(line)
        if cur is not None and cur != core_id:
            return False
        mask = self._sharers.get(line)
        return mask is None or not (mask & ~(1 << core_id))

    def refill_sharer(self, line: int, victim_line: int,
                      core_id: int) -> None:
        """``drop_core(victim_line)`` + ``add_sharer(line)`` in one call
        -- the fused load-fill path's directory update (``victim_line``
        is -1 when a free way absorbed the fill)."""
        sharers = self._sharers
        owner = self._owner
        bit = 1 << core_id
        if victim_line >= 0:
            mask = sharers.get(victim_line)
            if mask is not None:
                if owner.get(victim_line) == core_id:
                    del owner[victim_line]
                mask &= ~bit
                if mask:
                    sharers[victim_line] = mask
                else:
                    del sharers[victim_line]
                    owner.pop(victim_line, None)
        sharers[line] = sharers.get(line, 0) | bit
        cur = owner.get(line)
        if cur is not None and cur != core_id:
            del owner[line]

    def refill_owner(self, line: int, victim_line: int,
                     core_id: int) -> None:
        """``drop_core(victim_line)`` + ``set_owner(line)`` in one call
        -- the fused store-fill path's directory update."""
        sharers = self._sharers
        owner = self._owner
        bit = 1 << core_id
        if victim_line >= 0:
            mask = sharers.get(victim_line)
            if mask is not None:
                if owner.get(victim_line) == core_id:
                    del owner[victim_line]
                mask &= ~bit
                if mask:
                    sharers[victim_line] = mask
                else:
                    del sharers[victim_line]
                    owner.pop(victim_line, None)
        if owner.get(line) != core_id:
            owner[line] = core_id
            sharers[line] = bit

    def drop_line(self, line: int) -> None:
        """Forget the line entirely (all copies invalidated)."""
        self._sharers.pop(line, None)
        self._owner.pop(line, None)

    def clear_owner(self, line: int) -> None:
        """Downgrade the owner to a sharer (after a writeback).

        The owner's bit is already in the sharer mask (an owner is the
        sole sharer), so dropping the owner mapping is the whole job.
        """
        self._owner.pop(line, None)


def _decode(mask: int) -> List[int]:
    """Core ids set in ``mask``, ascending."""
    cores: List[int] = []
    while mask:
        low = mask & -mask
        cores.append(low.bit_length() - 1)
        mask ^= low
    return cores


class ReferenceDirectory:
    """The per-line-entry directory (seed form, reference mode).

    Kept as the straightforward executable specification: one
    :class:`DirectoryEntry` per tracked line, a sharer *set* per entry.
    The determinism-digest matrix asserts :class:`Directory` changes
    nothing observable relative to this.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, line: int) -> DirectoryEntry:
        ent = self._entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[line] = ent
        return ent

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        """Entry if one exists, without creating it."""
        return self._entries.get(line)

    def owner_of(self, line: int) -> Optional[int]:
        ent = self._entries.get(line)
        return ent.owner if ent else None

    def sharers_of(self, line: int) -> Iterable[int]:
        """Cores holding a copy of ``line`` (fresh list)."""
        ent = self._entries.get(line)
        return list(ent.sharers) if ent else []

    def drop_core(self, line: int, core_id: int) -> None:
        """Remove all record of ``core_id`` caching ``line``."""
        ent = self._entries.get(line)
        if ent is None:
            return
        if ent.owner == core_id:
            ent.owner = None
        ent.sharers.discard(core_id)
        if ent.owner is None and not ent.sharers:
            del self._entries[line]

    def set_owner(self, line: int, core_id: int) -> None:
        """Grant ``core_id`` exclusive (M) ownership of ``line``."""
        ent = self.entry(line)
        if ent.owner == core_id:
            # Already the exclusive owner (``owner == c`` implies
            # ``sharers == {c}``: any other sharer would have cleared the
            # owner field).  Streaming store bursts hit this on every op;
            # skip the per-call sharer-set allocation.
            return
        ent.owner = core_id
        ent.sharers = {core_id}

    def add_sharer(self, line: int, core_id: int) -> None:
        ent = self.entry(line)
        ent.sharers.add(core_id)
        if ent.owner is not None and ent.owner != core_id:
            # Owner was downgraded to S by the read that added a sharer.
            ent.sharers.add(ent.owner)
            ent.owner = None

    def exclusive_ok(self, line: int, core_id: int) -> bool:
        """True when ``core_id`` could take M on ``line`` without any
        invalidation or forwarding: no directory entry, or no *foreign*
        owner and no foreign sharers.  One lookup, no allocation -- the
        guard the fused store paths use to stay conflict-free."""
        ent = self._entries.get(line)
        if ent is None:
            return True
        if ent.owner is not None and ent.owner != core_id:
            return False
        for sharer in ent.sharers:
            if sharer != core_id:
                return False
        return True

    def refill_sharer(self, line: int, victim_line: int,
                      core_id: int) -> None:
        """``drop_core(victim_line)`` + ``add_sharer(line)`` in one call
        -- the fused load-fill path's directory update (``victim_line``
        is -1 when a free way absorbed the fill)."""
        entries = self._entries
        if victim_line >= 0:
            ent = entries.get(victim_line)
            if ent is not None:
                if ent.owner == core_id:
                    ent.owner = None
                ent.sharers.discard(core_id)
                if ent.owner is None and not ent.sharers:
                    del entries[victim_line]
        ent = entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            entries[line] = ent
        ent.sharers.add(core_id)
        if ent.owner is not None and ent.owner != core_id:
            ent.sharers.add(ent.owner)
            ent.owner = None

    def refill_owner(self, line: int, victim_line: int,
                     core_id: int) -> None:
        """``drop_core(victim_line)`` + ``set_owner(line)`` in one call
        -- the fused store-fill path's directory update."""
        entries = self._entries
        if victim_line >= 0:
            ent = entries.get(victim_line)
            if ent is not None:
                if ent.owner == core_id:
                    ent.owner = None
                ent.sharers.discard(core_id)
                if ent.owner is None and not ent.sharers:
                    del entries[victim_line]
        ent = entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            entries[line] = ent
            ent.owner = core_id
            ent.sharers = {core_id}
        elif ent.owner != core_id:
            ent.owner = core_id
            ent.sharers = {core_id}

    def drop_line(self, line: int) -> None:
        """Forget the line entirely (all copies invalidated)."""
        self._entries.pop(line, None)

    def clear_owner(self, line: int) -> None:
        """Downgrade the owner to a sharer (after a writeback)."""
        ent = self._entries.get(line)
        if ent and ent.owner is not None:
            ent.sharers.add(ent.owner)
            ent.owner = None
