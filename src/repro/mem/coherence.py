"""MSI directory coherence.

The LLC directory tracks, per line, which core (if any) holds the line
modified in its private L1 and which cores hold shared copies.  This is
the machinery that *detects* inter-thread conflicts: a request that finds
the line dirty under another core's unpersisted epoch (whether the dirty
copy sits in the remote L1 or has been written back to the LLC) creates a
new inter-thread persist-ordering constraint (section 3.1).

The directory here is behavioural, not message-accurate: the machine
consults and updates it atomically per transaction and accounts latency
separately (remote-L1 forwarding costs an extra mesh round trip).
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class DirectoryEntry:
    """Per-line coherence state."""

    __slots__ = ("owner", "sharers")

    def __init__(self) -> None:
        # Core whose L1 holds the line in M state, or None.
        self.owner: Optional[int] = None
        # Cores holding the line in S state in their L1.
        self.sharers: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<dir owner={self.owner} sharers={sorted(self.sharers)}>"


class Directory:
    """Machine-wide line -> coherence-state map."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, line: int) -> DirectoryEntry:
        ent = self._entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[line] = ent
        return ent

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        """Entry if one exists, without creating it."""
        return self._entries.get(line)

    def owner_of(self, line: int) -> Optional[int]:
        ent = self._entries.get(line)
        return ent.owner if ent else None

    def drop_core(self, line: int, core_id: int) -> None:
        """Remove all record of ``core_id`` caching ``line``."""
        ent = self._entries.get(line)
        if ent is None:
            return
        if ent.owner == core_id:
            ent.owner = None
        ent.sharers.discard(core_id)
        if ent.owner is None and not ent.sharers:
            del self._entries[line]

    def set_owner(self, line: int, core_id: int) -> None:
        """Grant ``core_id`` exclusive (M) ownership of ``line``."""
        ent = self.entry(line)
        if ent.owner == core_id:
            # Already the exclusive owner (``owner == c`` implies
            # ``sharers == {c}``: any other sharer would have cleared the
            # owner field).  Streaming store bursts hit this on every op;
            # skip the per-call sharer-set allocation.
            return
        ent.owner = core_id
        ent.sharers = {core_id}

    def add_sharer(self, line: int, core_id: int) -> None:
        ent = self.entry(line)
        ent.sharers.add(core_id)
        if ent.owner is not None and ent.owner != core_id:
            # Owner was downgraded to S by the read that added a sharer.
            ent.sharers.add(ent.owner)
            ent.owner = None

    def exclusive_ok(self, line: int, core_id: int) -> bool:
        """True when ``core_id`` could take M on ``line`` without any
        invalidation or forwarding: no directory entry, or no *foreign*
        owner and no foreign sharers.  One lookup, no allocation -- the
        guard the fused store paths use to stay conflict-free."""
        ent = self._entries.get(line)
        if ent is None:
            return True
        if ent.owner is not None and ent.owner != core_id:
            return False
        for sharer in ent.sharers:
            if sharer != core_id:
                return False
        return True

    def refill_sharer(self, line: int, victim_line: int,
                      core_id: int) -> None:
        """``drop_core(victim_line)`` + ``add_sharer(line)`` in one call
        -- the fused load-fill path's directory update (``victim_line``
        is -1 when a free way absorbed the fill)."""
        entries = self._entries
        if victim_line >= 0:
            ent = entries.get(victim_line)
            if ent is not None:
                if ent.owner == core_id:
                    ent.owner = None
                ent.sharers.discard(core_id)
                if ent.owner is None and not ent.sharers:
                    del entries[victim_line]
        ent = entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            entries[line] = ent
        ent.sharers.add(core_id)
        if ent.owner is not None and ent.owner != core_id:
            ent.sharers.add(ent.owner)
            ent.owner = None

    def refill_owner(self, line: int, victim_line: int,
                     core_id: int) -> None:
        """``drop_core(victim_line)`` + ``set_owner(line)`` in one call
        -- the fused store-fill path's directory update."""
        entries = self._entries
        if victim_line >= 0:
            ent = entries.get(victim_line)
            if ent is not None:
                if ent.owner == core_id:
                    ent.owner = None
                ent.sharers.discard(core_id)
                if ent.owner is None and not ent.sharers:
                    del entries[victim_line]
        ent = entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            entries[line] = ent
            ent.owner = core_id
            ent.sharers = {core_id}
        elif ent.owner != core_id:
            ent.owner = core_id
            ent.sharers = {core_id}

    def drop_line(self, line: int) -> None:
        """Forget the line entirely (all copies invalidated)."""
        self._entries.pop(line, None)

    def clear_owner(self, line: int) -> None:
        """Downgrade the owner to a sharer (after a writeback)."""
        ent = self._entries.get(line)
        if ent and ent.owner is not None:
            ent.sharers.add(ent.owner)
            ent.owner = None
