"""Memory-hierarchy substrate.

Implements the machine of Figure 2 in the paper: per-core private L1
caches, a shared multi-banked LLC, a 2D-mesh on-chip interconnect, and
multiple memory controllers fronting NVRAM.

* :mod:`repro.mem.address`      -- line/bank/controller address mapping.
* :mod:`repro.mem.interconnect` -- 2D mesh latency model.
* :mod:`repro.mem.cache`        -- set-associative cache arrays with
  epoch-tagged dirty lines.
* :mod:`repro.mem.coherence`    -- the MSI directory tracking owners and
  sharers (the source of inter-thread conflict detection).
* :mod:`repro.mem.nvram`        -- memory controllers (bandwidth/queueing
  model) and the persistent-memory image used by the recovery checker.
"""

from repro.mem.address import AddressMap
from repro.mem.cache import CacheEntry, SetAssociativeCache
from repro.mem.coherence import Directory, DirectoryEntry
from repro.mem.interconnect import Mesh
from repro.mem.nvram import MemoryController, NVRAMImage

__all__ = [
    "AddressMap",
    "CacheEntry",
    "Directory",
    "DirectoryEntry",
    "MemoryController",
    "Mesh",
    "NVRAMImage",
    "SetAssociativeCache",
]
