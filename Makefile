# Convenience targets mirroring what CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: ci test test-reference test-smoke test-slow bench scale farm figures figures-full clean-cache

# What CI runs (see .github/workflows/ci.yml): the fast tier-1 suite,
# the same suite on the pure-heap reference engine, and a bench smoke
# run (single-run ops/sec + the six-model digest matrix, no sweep).
ci: test test-reference
	$(PYTHON) -m repro bench --transactions 10 --no-sweep \
		--output /tmp/bench-ci.json

# Tier-1: the full fast suite (includes the parallel sweep smoke tests).
test:
	$(PYTHON) -m pytest -x -q

# The same suite with the engine fast paths disabled -- everything must
# behave identically on the reference event loop.
test-reference:
	REPRO_SLOW_ENGINE=1 $(PYTHON) -m pytest -x -q

# Just the tiny-scale parallel sweep smoke tests (executor determinism).
test-smoke:
	$(PYTHON) -m pytest -x -q -m sweep_smoke

# The long end-to-end figure checks.
test-slow:
	$(PYTHON) -m pytest -q -m slow

# Time the sweep executor (serial vs parallel vs warm cache) and
# refresh BENCH_sweep.json.
bench:
	$(PYTHON) -m repro bench --jobs 4

# The core-count scaling sweep: messages-per-flush and ops/s at
# 4..64 cores (arbiter vs all-to-all), refreshing only the `scaling`
# family of BENCH_sweep.json.
scale:
	$(PYTHON) -m repro bench --no-sweep --only scaling \
		--cores 4,8,16,32,64 --check-digests

# The delta-planner farm bench: cold plan+run, warm no-op replan,
# two-shard merge, and a scoped version bump, refreshing only the
# `farm` family of BENCH_sweep.json.
farm:
	$(PYTHON) -m repro bench --no-sweep --only farm --check-digests

figures:
	$(PYTHON) -m repro figures all --scale small

# The paper-scale full tier under a one-hour budget; rerun to resume
# (completed runs are cached, only the remainder executes).
figures-full:
	$(PYTHON) -m repro figures all --full --budget 3600

clean-cache:
	rm -rf .repro-cache
