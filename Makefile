# Convenience targets mirroring what CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-smoke test-slow bench figures clean-cache

# Tier-1: the full fast suite (includes the parallel sweep smoke tests).
test:
	$(PYTHON) -m pytest -x -q

# Just the tiny-scale parallel sweep smoke tests (executor determinism).
test-smoke:
	$(PYTHON) -m pytest -x -q -m sweep_smoke

# The long end-to-end figure checks.
test-slow:
	$(PYTHON) -m pytest -q -m slow

# Time the sweep executor (serial vs parallel vs warm cache) and
# refresh BENCH_sweep.json.
bench:
	$(PYTHON) -m repro bench --jobs 4

figures:
	$(PYTHON) -m repro figures all --scale small

clean-cache:
	rm -rf .repro-cache
