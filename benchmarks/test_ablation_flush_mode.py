"""Section 7 in-text result: non-invalidating vs invalidating flushes.

"We analyzed the performance impact and found that using a
non-invalidating flush is significantly faster (around 30% faster)."

An invalidating flush (clflush-style) evicts the line being persisted,
so the working set must be refetched from NVRAM; clwb keeps it cached.
The benchmark regenerates the comparison over all five microbenchmarks
and asserts clwb wins on every one.
"""

from benchmarks.conftest import record_table
from repro.harness.experiments import ablation_flush_mode


def test_bench_flush_mode(benchmark, scale):
    table = benchmark.pedantic(
        lambda: ablation_flush_mode(scale), rounds=1, iterations=1,
    )
    record_table(benchmark, table)
    summary = dict(zip(table.columns, table.summary_row()[1]))
    # clwb faster on gmean (paper: ~1.3x).
    assert summary["clwb"] > 1.03
    # ...and on every individual benchmark.
    for name, row in table.as_dict().items():
        assert row["clwb"] >= row["clflush"] * 0.99, name
