"""Figure 14: BSP execution time per barrier design, normalized to NP.

Paper values (gmean, epoch = 10000 stores): LB ~= 1.5x,
LB+IDT ~= 1.35x, LB++ ~= 1.3x, LB++NOLOG ~= 1.16x; 86% of conflicts are
inter-thread; ssca2 is the extreme case (4.22x -> 2.62x).

Asserted shape: the designs are ordered LB >= LB+IDT >= LB++ >=
LB++NOLOG on gmean, IDT captures most of the LB -> LB++ gap (the
conflicts are inter-thread), ssca2 is the costliest benchmark, and the
inter-thread conflict share matches the paper's finding.
"""

from benchmarks.conftest import record_table
from repro.harness.experiments import fig14

_EPS = 0.015  # run-to-run noise band on normalized times


def test_bench_fig14(benchmark, scale):
    table, inter_share = benchmark.pedantic(
        lambda: fig14(scale), rounds=1, iterations=1,
    )
    record_table(benchmark, table, precision=2)
    print(f"inter-thread share of conflicts: {inter_share:.0f}% "
          "(paper: 86%)")
    benchmark.extra_info["inter_thread_share_pct"] = inter_share

    summary = dict(zip(table.columns, table.summary_row()[1]))
    assert summary["LB"] > 1.0
    assert summary["LB"] >= summary["LB+IDT"] - _EPS
    assert summary["LB+IDT"] >= summary["LB++"] - _EPS
    assert summary["LB++"] >= summary["LB++NOLOG"] - _EPS
    # LB++ improves on LB by a real margin, and removing logging saves
    # more on top (half the residual overhead in the paper).
    assert summary["LB++"] < summary["LB"]
    assert summary["LB++NOLOG"] < summary["LB"]

    rows = table.as_dict()
    ssca2_lb = rows["ssca2"]["LB"]
    # ssca2 is the costliest app under LB (fine-grained write sharing).
    others = [rows[app]["LB"] for app in rows
              if app not in ("ssca2", "gmean")]
    assert ssca2_lb >= max(others)
    # ...and the one LB++ helps the most in absolute terms.
    assert ssca2_lb - rows["ssca2"]["LB++"] >= -_EPS

    # The paper reports 86% of conflicts inter-thread.
    assert inter_share > 60
