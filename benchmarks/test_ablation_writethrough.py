"""Section 7.2 in-text result: naive write-through BSP.

"A naive approach to implement BSP will require caches to be write
through.  We analyzed the performance of such a design and found it to
be about 8x slower than NP."

The mechanism: write-through issues one NVRAM write per dynamic store
(no coalescing at all), so its cost is the store rate divided by NVRAM
write bandwidth.  Our scaled runs have a lower absolute store rate than
the paper's full benchmarks, which compresses the ratio (see
EXPERIMENTS.md); the benchmark therefore asserts the mechanism --
writes-per-store of 1.0, a strict slowdown over NP on every app -- and
reports the measured factor alongside the paper's.
"""

from benchmarks.conftest import record_table
from repro.harness.experiments import ablation_writethrough
from repro.harness.runner import run_bsp
from repro.sim.config import BarrierDesign, PersistencyModel


def test_bench_writethrough(benchmark, scale):
    table = benchmark.pedantic(
        lambda: ablation_writethrough(scale), rounds=1, iterations=1,
    )
    record_table(benchmark, table, precision=2)
    summary = dict(zip(table.columns, table.summary_row()[1]))
    assert summary["BSP-WT"] > 1.0
    for name, row in table.as_dict().items():
        assert row["BSP-WT"] >= 0.99, name


def test_writethrough_issues_one_write_per_store(scale):
    """The defining property of the naive design: zero coalescing."""
    result = run_bsp(
        "ssca2", BarrierDesign.LB, scale=scale,
        persistency=PersistencyModel.BSP_WT, mem_ops=1000,
    )
    stores = result.stats.total("stores")
    writes = result.stats.domain("nvram").get("writes_data")
    assert writes == stores
    # Buffered BSP coalesces: far fewer data writes for the same trace.
    buffered = run_bsp(
        "ssca2", BarrierDesign.LB_PP, scale=scale, mem_ops=1000,
    )
    assert buffered.stats.domain("nvram").get("writes_data") < writes
