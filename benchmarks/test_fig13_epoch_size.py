"""Figure 13: BSP execution time vs hardware epoch size, vs NP.

Paper values (gmean, epoch sizes 300/1000/10000 dynamic stores):
LB300 ~= 1.9x, LB1K ~= 1.5x, LB10K marginally better than LB1K.

Our runs are shorter than the paper's full benchmarks, so the sweep uses
scale-proportional epoch sizes (same ~1:3:30 ratio; see EXPERIMENTS.md).
The asserted shape: small epochs cost clearly more than large ones --
less write coalescing, more checkpoint traffic, more epoch-window
pressure -- with diminishing returns at the top size.
"""

from benchmarks.conftest import record_table
from repro.harness.experiments import fig13


def test_bench_fig13(benchmark, scale):
    table = benchmark.pedantic(
        lambda: fig13(scale), rounds=1, iterations=1,
    )
    record_table(benchmark, table, precision=2)
    small, medium, large = table.summary_row()[1]
    # Everything costs more than NP.
    assert small > 1.0 and large > 1.0
    # Small epochs are the most expensive configuration (paper: 1.9x
    # vs 1.5x); large epochs the cheapest or within noise of medium.
    assert small > large
    assert small >= medium - 0.01
    assert medium >= large - 0.02
