"""Figure 11: BEP transaction throughput, normalized to LB.

Paper values (gmean over hash/queue/rbtree/sdg/sps):
LB = 1.00, LB+IDT ~= 1.03, LB+PF ~= 1.17, LB++ ~= 1.22.

The benchmark regenerates the full table and asserts the shape: LB++
beats LB by a clear margin, PF supplies most of the gain on these
intra-thread-dominated microbenchmarks, and no design loses to LB.
"""

import pytest

from benchmarks.conftest import record_table
from repro.harness.experiments import fig11, run_bep_sweep

_sweep_cache = {}


def bep_sweep(scale):
    if scale not in _sweep_cache:
        _sweep_cache[scale] = run_bep_sweep(scale, seed=1)
    return _sweep_cache[scale]


def test_bench_fig11(benchmark, scale):
    table = benchmark.pedantic(
        lambda: fig11(scale, sweep=bep_sweep(scale)),
        rounds=1, iterations=1,
    )
    record_table(benchmark, table)
    summary = dict(zip(table.columns, table.summary_row()[1]))
    assert summary["LB"] == pytest.approx(1.0)
    # Paper: +22% for LB++; the scaled-down machine lands in the same
    # regime even if the exact factor differs.
    assert summary["LB++"] > 1.05
    assert summary["LB+PF"] > 1.05
    # PF dominates IDT on the microbenchmarks (intra-thread conflicts).
    assert summary["LB+PF"] > summary["LB+IDT"]
    # No optimization should lose to plain LB on gmean.
    for column, value in summary.items():
        assert value > 0.97, column
