"""Shared configuration for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper.  The
default scale is ``tiny`` so the whole suite completes in a few minutes;
set ``REPRO_BENCH_SCALE=small`` (or ``paper``) for higher-fidelity runs::

    REPRO_BENCH_SCALE=small pytest benchmarks/ --benchmark-only

Every benchmark stores the regenerated figure rows in
``benchmark.extra_info`` so they appear in ``--benchmark-json`` output,
and prints them so a plain run shows the tables.
"""

import os

import pytest

from repro.harness.runner import Scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    return Scale(os.environ.get("REPRO_BENCH_SCALE", "tiny"))


def record_table(benchmark, table, precision=3):
    """Attach a FigureTable to the benchmark record and print it."""
    benchmark.extra_info["table"] = table.as_dict()
    print()
    print(table.render(precision=precision))
