"""Ablations of the design choices called out in DESIGN.md section 6.

These go beyond the paper's own figures: they quantify the hardware
parameters section 4.3 fixes (4 IDT register pairs, 8 in-flight epochs)
and the coordination cost of the Figure 8 handshake, demonstrating why
the paper chose those values.
"""

from benchmarks.conftest import record_table
from repro.harness.report import FigureTable
from repro.harness.runner import run_bep
from repro.sim.config import BarrierDesign


def _throughput(scale, **overrides):
    return run_bep("queue", BarrierDesign.LB_PP, scale=scale,
                   seed=1, **overrides).throughput


def test_bench_inflight_epoch_window(benchmark, scale):
    """Section 4.3 fixes 3-bit epoch IDs (8 in flight).  Fewer stalls
    the core; more buys little because flushes serialize per core."""

    def sweep():
        table = FigureTable(
            "Ablation: in-flight epoch window (throughput vs 8)",
            ["2", "4", "8", "16"], summary="none",
        )
        values = [_throughput(scale, max_inflight_epochs=n)
                  for n in (2, 4, 8, 16)]
        base = values[2]
        table.add_row("queue", [v / base for v in values])
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(benchmark, table)
    row = table.as_dict()["queue"]
    assert row["2"] <= row["8"] + 0.02       # small window costs
    assert abs(row["16"] - row["8"]) < 0.08  # big window ~free


def test_bench_idt_register_count(benchmark, scale):
    """Section 4.3 fixes 4 dependence/inform register pairs per epoch.
    One register already captures almost all of IDT's benefit on these
    workloads; overflow falls back to online flushes."""

    def sweep():
        table = FigureTable(
            "Ablation: IDT registers per epoch (throughput vs 4)",
            ["1", "2", "4", "8"], summary="none",
        )
        values = [_throughput(scale, idt_registers_per_epoch=n)
                  for n in (1, 2, 4, 8)]
        base = values[2]
        table.add_row("queue", [v / base for v in values])
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(benchmark, table)
    row = table.as_dict()["queue"]
    assert abs(row["8"] - row["4"]) < 0.05   # 4 registers suffice


def test_bench_handshake_coordination_cost(benchmark, scale):
    """The O(n) arbiter handshake vs idealized free coordination: the
    protocol the paper engineered (instead of O(n^2) all-to-all
    messages) costs only a small slice of end-to-end time."""

    def sweep():
        table = FigureTable(
            "Ablation: Figure 8 handshake cost (throughput, real vs ideal"
            " coordination)", ["real", "ideal"], summary="none",
        )
        real = _throughput(scale, ideal_flush_coordination=False)
        ideal = _throughput(scale, ideal_flush_coordination=True)
        table.add_row("queue", [1.0, ideal / real])
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(benchmark, table)
    row = table.as_dict()["queue"]
    assert row["ideal"] >= 0.99              # free coordination >= real
    assert row["ideal"] < 1.30               # ...but not transformative


def test_bench_memory_controller_bandwidth(benchmark, scale):
    """Persist bandwidth bounds every buffered design: throughput rises
    monotonically with NVRAM write bandwidth."""

    def sweep():
        table = FigureTable(
            "Ablation: NVRAM write occupancy (throughput vs 24 cyc/line)",
            ["96", "48", "24", "12"], summary="none",
        )
        values = [_throughput(scale, mc_write_occupancy=occ)
                  for occ in (96, 48, 24, 12)]
        base = values[2]
        table.add_row("queue", [v / base for v in values])
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(benchmark, table)
    row = table.as_dict()["queue"]
    assert row["96"] < row["48"] <= row["24"] <= row["12"] + 0.02
