"""Figure 12: percentage of epochs flushed because of a conflict.

Paper values (amean): LB ~= 90%, LB+IDT ~= 90%, LB+PF ~= 77%,
LB++ ~= 75%.  The load-bearing shape: under LB essentially every epoch
is conflict-flushed; IDT barely changes the count (it reduces conflict
*latency*, not conflict *probability*); PF reduces it by persisting
epochs before the next access hits them.
"""

from benchmarks.conftest import record_table
from benchmarks.test_fig11_bep_throughput import bep_sweep
from repro.harness.experiments import fig12


def test_bench_fig12(benchmark, scale):
    table = benchmark.pedantic(
        lambda: fig12(scale, sweep=bep_sweep(scale)),
        rounds=1, iterations=1,
    )
    record_table(benchmark, table, precision=1)
    summary = dict(zip(table.columns, table.summary_row()[1]))
    # LB: nearly all epochs conflict-flushed (paper: 90%).
    assert summary["LB"] > 60
    # IDT alone doesn't reduce the conflict count materially.
    assert abs(summary["LB+IDT"] - summary["LB"]) < 15
    # PF cuts conflicts; LB++ at least as much.
    assert summary["LB+PF"] < summary["LB"] - 10
    assert summary["LB++"] <= summary["LB+PF"] + 5
