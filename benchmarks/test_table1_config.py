"""Table 1: the simulated machine.

Verifies the paper configuration is exactly Table 1 and benchmarks raw
simulator throughput on that machine (events are the simulator's unit
of work; this is the cost baseline every figure pays).
"""

from repro.sim.config import MachineConfig, PersistencyModel, BarrierDesign
from repro.system import Multicore
from repro.workloads.micro import make_benchmark


def test_table1_parameters_match_paper():
    config = MachineConfig.paper()
    assert config.num_cores == 32
    assert config.write_buffer_entries == 32
    assert (config.l1_size, config.l1_assoc, config.l1_latency) == \
        (32 * 1024, 4, 3)
    assert (config.llc_bank_size, config.llc_banks, config.llc_assoc,
            config.llc_latency) == (1024 * 1024, 32, 16, 30)
    assert config.num_memory_controllers == 4
    assert (config.nvram_write_latency, config.nvram_read_latency) == \
        (360, 240)
    assert config.mesh_rows == 4
    assert config.line_size == 64


def test_bench_table1_machine_simulation_rate(benchmark):
    """Simulator throughput on the full 32-core Table 1 machine."""

    def run():
        config = MachineConfig.paper(
            persistency=PersistencyModel.BEP,
            barrier_design=BarrierDesign.LB_PP,
        )
        machine = Multicore(config)
        programs = [
            make_benchmark("queue", thread_id=t, seed=1).ops(10)
            for t in range(config.num_cores)
        ]
        result = machine.run(programs)
        assert result.finished
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = result.cycles_durable
