#!/usr/bin/env python3
"""Time the sweep executor (serial vs parallel vs warm cache) and write
``BENCH_sweep.json``.  Thin wrapper over :mod:`repro.harness.bench` so
it runs without installing the package::

    python scripts/bench_sweep.py --jobs 4
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
