"""Tests for the multi-banked epoch flush protocol (section 4.1)."""

from repro.sim.config import BarrierDesign, FlushMode, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def run_machine(flush_mode=FlushMode.CLWB, num_cores=2, **overrides):
    config = MachineConfig.tiny(
        num_cores=num_cores,
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
        flush_mode=flush_mode,
        **overrides,
    )
    return Multicore(config, track_persist_order=True)


def test_flush_persists_every_line_of_the_epoch():
    m = run_machine()
    p = Program()
    lines = [0x1000 + i * 64 for i in range(10)]
    for line in lines:
        p.store(line, 8)
    p.barrier()
    result = m.run([p])
    assert result.cycles_durable is not None
    persisted = {r.line for r in m.image.history if r.kind == "data"}
    assert persisted == set(lines)


def test_epochs_persist_in_program_order():
    m = run_machine()
    p = Program()
    for epoch in range(6):
        for i in range(4):
            p.store(0x1000 + (epoch * 4 + i) * 64, 8)
        p.barrier()
    m.run([p])
    seqs = [r.epoch_seq for r in m.image.history if r.kind == "data"]
    assert seqs == sorted(seqs)


def test_clwb_flush_keeps_lines_cached():
    m = run_machine(FlushMode.CLWB)
    p = Program().store(0x1000, 8).barrier().compute(5000).load(0x1000)
    result = m.run([p])
    # After the proactive flush, the reload must still hit the L1.
    l1 = result.stats.domain("l1.0")
    assert l1.get("hits") == 1


def test_clflush_flush_invalidates_lines():
    m = run_machine(FlushMode.CLFLUSH)
    p = Program().store(0x1000, 8).barrier().compute(5000).load(0x1000)
    result = m.run([p])
    l1 = result.stats.domain("l1.0")
    assert l1.get("hits") == 0
    # The reload had to go all the way to memory.
    assert result.stats.domain("nvram").get("reads") >= 1


def test_clflush_slower_than_clwb_on_reuse_workload():
    def run(mode):
        m = run_machine(mode)
        p = Program()
        for round_ in range(30):
            for i in range(8):
                p.store(0x1000 + i * 64, 8)
            p.barrier()
            for i in range(8):
                p.load(0x1000 + i * 64)
            p.compute(200)
        result = m.run([p])
        return result.cycles_visible

    assert run(FlushMode.CLFLUSH) > run(FlushMode.CLWB)


def test_flush_handshake_cost_scales_with_mesh_size():
    """The Figure 8 handshake's FlushEpoch/PersistCMP broadcasts and
    BankAcks cross the mesh, so a physically larger chip pays more per
    epoch persist (the messages themselves travel in parallel, so bank
    *count* at fixed distance is free)."""

    def durable_time(cores, banks, rows):
        config = MachineConfig.tiny(
            num_cores=cores, llc_banks=banks, mesh_rows=rows,
            barrier_design=BarrierDesign.LB_PP,
            persistency=PersistencyModel.BEP,
        )
        m = Multicore(config)
        programs = [Program().store(0x1000, 8).barrier()]
        programs += [Program() for _ in range(cores - 1)]
        return m.run(programs).cycles_durable

    assert durable_time(16, 16, 4) > durable_time(2, 2, 1)


def test_multibank_ordering_violation_prevented():
    """Figure 7: lines of epoch 2 in one bank must not persist before
    epoch 1's lines resident in another bank."""
    m = run_machine(llc_banks=2, num_cores=2)
    p = Program()
    # Epoch 1 writes lines mapping to both banks; epoch 2 to one bank.
    p.store(0x1000, 8).store(0x1040, 8).barrier()   # banks 0 and 1
    p.store(0x2040, 8).barrier()                     # bank 1
    m.run([p])
    history = [r for r in m.image.history if r.kind == "data"]
    first_e2 = min(
        (i for i, r in enumerate(history) if r.epoch_seq == 1),
        default=None,
    )
    e1_indices = [i for i, r in enumerate(history) if r.epoch_seq == 0]
    assert first_e2 is not None and e1_indices
    assert max(e1_indices) < first_e2


def test_concurrent_flushes_from_different_cores_interleave():
    m = run_machine(num_cores=2)
    p0 = Program()
    p1 = Program()
    for i in range(8):
        p0.store(0x1000 + i * 64, 8)
        p1.store(0x9000 + i * 64, 8)
    p0.barrier()
    p1.barrier()
    result = m.run([p0, p1])
    assert result.cycles_durable is not None
    # Both cores' epochs persisted.
    assert result.stats.total("epochs_persisted") == 2
