"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_subcommands_exist():
    parser = build_parser()
    for argv in (
        ["run", "--workload", "queue"],
        ["figures", "fig11"],
        ["crash"],
        ["inspect"],
    ):
        args = parser.parse_args(argv)
        assert callable(args.func)


def test_run_microbenchmark(capsys):
    rc = main(["run", "--workload", "queue", "--design", "LB",
               "--scale", "tiny", "--transactions", "10"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "queue / LB / BEP" in out


def test_run_app_workload(capsys):
    rc = main(["run", "--workload", "cholesky", "--design", "LB++",
               "--scale", "tiny", "--mem-ops", "400",
               "--epoch-stores", "50"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cholesky / LB++ / BSP" in out
    assert "NVRAM writes" in out


def test_run_unknown_workload():
    rc = main(["run", "--workload", "nosuchthing", "--scale", "tiny"])
    assert rc == 2


def test_crash_queue(capsys):
    rc = main(["crash", "--workload", "queue", "--cycle", "5000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "valid epoch order" in out
    assert "recovered queue" in out


def test_crash_bsp_app(capsys):
    rc = main(["crash", "--workload", "intruder", "--cycle", "8000",
               "--epoch-stores", "40"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rolled back" in out


def test_inspect(capsys):
    rc = main(["inspect", "--scale", "paper"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "num_cores" in out and "32" in out


def test_figures_delegates(capsys):
    rc = main(["figures", "fig12", "--scale", "tiny"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 12" in out


def test_figures_accepts_executor_flags(tmp_path, capsys):
    rc = main(["figures", "fig12", "--scale", "tiny", "--jobs", "1",
               "--cache-dir", str(tmp_path / "cache")])
    assert rc == 0
    assert "Figure 12" in capsys.readouterr().out
    assert (tmp_path / "cache").is_dir()
    rc = main(["figures", "fig12", "--scale", "tiny", "--no-cache",
               "--jobs", "1"])
    assert rc == 0


def test_bench_subcommand_registered():
    parser = build_parser()
    args = parser.parse_args(["bench", "--jobs", "2"])
    assert callable(args.func)
    assert args.jobs == 2
    farm = parser.parse_args(["bench", "--only", "farm"])
    assert farm.only == "farm"


def test_figures_farm_flags_forwarded(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    # Budget 0: plan everything, run nothing, persist the cursor.
    rc = main(["figures", "contended", "--scale", "tiny", "--jobs", "1",
               "--cache-dir", cache_dir, "--budget", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "18 to run" in out and "rerun the same command" in out
    assert (tmp_path / "cache" / "plan.json").is_file()
    # A shard run skips assembly.
    rc = main(["figures", "contended", "--scale", "tiny", "--jobs", "1",
               "--cache-dir", cache_dir, "--shard", "1/2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shard 1/2 complete" in out
    assert "Contended" not in out


def test_cache_subcommand_stats_and_prune(tmp_path, capsys):
    from repro.harness.cache import ResultCache
    from repro.harness.executor import RunSpec, run_specs
    from repro.harness.runner import Scale
    from repro.sim.config import BarrierDesign

    cache_dir = str(tmp_path / "cache")
    spec = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                       transactions=6)
    run_specs([spec], jobs=1, cache=ResultCache(cache_dir))

    rc = main(["cache", "--cache-dir", cache_dir, "--stats"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "result entries   : 1" in out

    rc = main(["cache", "--cache-dir", cache_dir, "--prune",
               "--max-bytes", "0", "--dry-run"])
    assert rc == 0
    assert "would remove 1 entries" in capsys.readouterr().out
    rc = main(["cache", "--cache-dir", cache_dir, "--prune",
               "--max-bytes", "0"])
    assert rc == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert main(["cache", "--cache-dir", cache_dir, "--prune"]) == 2


def test_bad_design_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "queue", "--design", "LBX"])
