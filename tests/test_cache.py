"""Tests for the set-associative cache arrays."""

import pytest

from repro.mem.cache import SetAssociativeCache
from repro.sim.stats import StatDomain


def make_cache(num_sets=4, assoc=2):
    return SetAssociativeCache("test", num_sets, assoc, 64, StatDomain("c"))


def addr(set_index, tag, num_sets=4):
    return (tag * num_sets + set_index) * 64


def test_insert_and_lookup():
    cache = make_cache()
    entry = cache.insert(addr(0, 0))
    assert cache.lookup(addr(0, 0)) is entry
    assert cache.lookup(addr(1, 0)) is None


def test_victim_none_while_set_has_room():
    cache = make_cache(assoc=2)
    cache.insert(addr(0, 0))
    assert cache.victim_for(addr(0, 1)) is None
    cache.insert(addr(0, 1))
    assert cache.victim_for(addr(0, 2)) is not None


def test_victim_is_lru():
    cache = make_cache(assoc=2)
    first = cache.insert(addr(0, 0))
    second = cache.insert(addr(0, 1))
    assert cache.victim_for(addr(0, 2)) is first
    cache.touch(first)
    assert cache.victim_for(addr(0, 2)) is second


def test_victim_prefers_clean_lines():
    cache = make_cache(assoc=2)
    old_dirty = cache.insert(addr(0, 0))
    old_dirty.dirty = True
    newer_clean = cache.insert(addr(0, 1))
    # LRU would pick old_dirty, but the clean line is cheaper to evict.
    assert cache.victim_for(addr(0, 2)) is newer_clean


def test_victim_for_resident_line_is_none():
    cache = make_cache(assoc=1)
    cache.insert(addr(0, 0))
    assert cache.victim_for(addr(0, 0)) is None


def test_insert_into_full_set_raises():
    cache = make_cache(assoc=1)
    cache.insert(addr(0, 0))
    with pytest.raises(RuntimeError):
        cache.insert(addr(0, 1))


def test_remove():
    cache = make_cache()
    cache.insert(addr(0, 0))
    removed = cache.remove(addr(0, 0))
    assert removed is not None
    assert cache.lookup(addr(0, 0)) is None
    assert cache.remove(addr(0, 0)) is None


def test_insert_existing_returns_same_entry():
    cache = make_cache()
    a = cache.insert(addr(0, 0))
    b = cache.insert(addr(0, 0))
    assert a is b
    assert len(cache) == 1


def test_sets_are_independent():
    cache = make_cache(num_sets=4, assoc=1)
    for set_index in range(4):
        cache.insert(addr(set_index, 0))
    assert len(cache) == 4
    for set_index in range(4):
        assert cache.victim_for(addr(set_index, 1)) is not None


def test_dirty_entries_iteration():
    cache = make_cache()
    clean = cache.insert(addr(0, 0))
    dirty = cache.insert(addr(1, 0))
    dirty.dirty = True
    assert list(cache.dirty_entries()) == [dirty]
    assert clean in list(cache.entries())


def test_unpersisted_requires_dirty_and_live_epoch():
    cache = make_cache()
    entry = cache.insert(addr(0, 0))
    assert not entry.unpersisted          # clean
    entry.dirty = True
    assert not entry.unpersisted          # dirty, no epoch (NP traffic)

    class FakeEpoch:
        persisted = False

    entry.epoch = FakeEpoch()
    assert entry.unpersisted
    entry.epoch.persisted = True
    assert not entry.unpersisted


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        make_cache(num_sets=0)


def test_lookup_memo_invalidated_by_remove():
    """The last-line memo must never serve a removed entry."""
    cache = make_cache()
    line = addr(1, 0)
    entry = cache.insert(line)
    assert cache.lookup(line) is entry  # memoised
    cache.remove(line)
    assert cache.lookup(line) is None
    fresh = cache.insert(line)
    assert fresh is not entry
    assert cache.lookup(line) is fresh


def test_lookup_memo_repeated_hits_same_entry():
    cache = make_cache()
    a, b = addr(0, 0), addr(0, 1)
    ea, eb = cache.insert(a), cache.insert(b)
    for _ in range(3):
        assert cache.lookup(a) is ea
    assert cache.lookup(b) is eb
    assert cache.lookup(a) is ea
