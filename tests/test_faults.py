"""Tests for the deterministic fault-injection layer (sim/faults.py).

The injector's decisions must be pure functions of the seed and stable
simulated coordinates (so both engine modes fault identically); the
BankAck drop/retry path must always make forward progress; and every
fault knob must leave a visible counter trail.  The deliberately
unsound reorder fault is the checker self-test: the crash sweep must
catch it.
"""

import pytest

from repro.core.flush import ProtocolError, _ACKED
from repro.harness.bench import reference_mode
from repro.recovery import (
    ConsistencyViolation,
    capture_run,
    sweep_crash_points,
)
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.sim.digest import state_digest
from repro.sim.faults import FaultConfig, FaultInjector
from repro.system import Multicore
from repro.workloads.micro import QueueWorkload


def queue_run(faults=None, transactions=12, seed=1, **machine_kwargs):
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    queue = QueueWorkload(thread_id=0, seed=seed, capacity=32)
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, faults=faults,
                        **machine_kwargs)
    result = machine.run([queue.ops(transactions)])
    return machine, result, queue


# ----------------------------------------------------------------------
# The injector itself
# ----------------------------------------------------------------------
def test_decisions_are_deterministic_and_coordinate_keyed():
    config = FaultConfig(seed=42, drop_ack_rate=0.5, delay_ack_rate=0.5,
                         mc_stall_rate=0.5)
    a = FaultInjector(config)
    b = FaultInjector(config)
    decisions = [
        (a.drop_bank_ack(c, bk, s, 0), a.bank_ack_detour(c, bk, s, 0),
         a.mc_stall(c, s))
        for c in range(4) for bk in range(4) for s in range(16)
    ]
    replayed = [
        (b.drop_bank_ack(c, bk, s, 0), b.bank_ack_detour(c, bk, s, 0),
         b.mc_stall(c, s))
        for c in range(4) for bk in range(4) for s in range(16)
    ]
    assert decisions == replayed
    # A 50% rate over 256 coordinate triples must actually vary.
    drops = [d for d, _, _ in decisions]
    assert any(drops) and not all(drops)
    # A different seed flips some decisions.
    other = FaultInjector(FaultConfig(seed=43, drop_ack_rate=0.5))
    assert any(
        a.drop_bank_ack(c, bk, s, 0) != other.drop_bank_ack(c, bk, s, 0)
        for c in range(4) for bk in range(4) for s in range(16)
    )


def test_retry_bound_guarantees_delivery():
    injector = FaultInjector(FaultConfig(drop_ack_rate=1.0,
                                         max_ack_retries=3))
    assert injector.drop_bank_ack(0, 0, 5, 0)
    assert injector.drop_bank_ack(0, 0, 5, 2)
    assert not injector.drop_bank_ack(0, 0, 5, 3)  # at the bound
    assert not injector.drop_bank_ack(0, 0, 5, 7)


def test_zero_rates_fault_nothing():
    injector = FaultInjector(FaultConfig(seed=9))
    assert not any(
        injector.drop_bank_ack(c, b, s, 0)
        or injector.bank_ack_detour(c, b, s, 0)
        or injector.mc_stall(c, s)
        for c in range(4) for b in range(4) for s in range(32)
    )


# ----------------------------------------------------------------------
# Wiring: faulted runs complete and leave a counter trail
# ----------------------------------------------------------------------
def test_all_zero_fault_config_is_digest_neutral():
    machine, result, _ = queue_run()
    baseline = state_digest(machine, result)
    faulted, result2, _ = queue_run(faults=FaultConfig())
    assert state_digest(faulted, result2) == baseline


def test_certain_ack_drop_completes_via_bounded_retries():
    machine, result, _ = queue_run(
        faults=FaultConfig(seed=5, drop_ack_rate=1.0)
    )
    assert result.finished
    assert result.cycles_durable is not None
    drops = result.stats.total("flush_ack_drops")
    retries = result.stats.total("flush_ack_retries")
    assert drops > 0 and drops == retries


def test_delay_and_stall_faults_count_and_slow_the_run():
    _, clean, _ = queue_run()
    machine, result, _ = queue_run(
        faults=FaultConfig(seed=5, delay_ack_rate=0.5, mc_stall_rate=0.3,
                           mc_stall_cycles=200)
    )
    assert result.finished
    assert result.stats.total("flush_ack_delays") > 0
    stalls = result.stats.total("fault_stalls")
    assert stalls > 0
    assert result.stats.total("fault_stall_cycles") == stalls * 200
    assert result.cycles_durable > clean.cycles_durable


def test_fault_digest_parity_fast_vs_reference():
    config = FaultConfig(seed=7, drop_ack_rate=0.3, delay_ack_rate=0.2,
                         mc_stall_rate=0.1)
    machine, result, _ = queue_run(faults=config)
    digest = state_digest(machine, result)
    with reference_mode():
        ref_machine, ref_result, _ = queue_run(faults=config)
        assert state_digest(ref_machine, ref_result) == digest


# ----------------------------------------------------------------------
# Protocol invariants stay hard errors
# ----------------------------------------------------------------------
def test_double_bank_ack_is_a_protocol_error():
    machine, _, _ = queue_run()
    op = machine.arbiters[0]._flush_op
    op._bank_state[0] = _ACKED
    with pytest.raises(ProtocolError, match="second BankAck"):
        op._bank_ack(0)


def test_orphan_ack_timeout_is_a_protocol_error():
    machine, _, _ = queue_run(
        faults=FaultConfig(seed=5, drop_ack_rate=0.5)
    )
    op = machine.arbiters[0]._flush_op
    with pytest.raises(ProtocolError, match="timeout"):
        op._ack_timeout(0, 0)  # no flush in flight


# ----------------------------------------------------------------------
# The unsound reorder fault: the checker self-test
# ----------------------------------------------------------------------
def test_reorder_fault_is_caught_by_the_sweep():
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    queue = QueueWorkload(thread_id=0, seed=1, capacity=32)
    machine = Multicore(config, track_values=True,
                        track_persist_order=True, keep_epoch_log=True,
                        faults=FaultConfig(reorder_window=6))
    outcome = capture_run(machine, [queue.ops(12)])
    with pytest.raises(ConsistencyViolation):
        sweep_crash_points(outcome, queues=[queue])
    report = sweep_crash_points(outcome, queues=[queue],
                                raise_on_violation=False)
    assert not report.ok and report.first_violation is not None
