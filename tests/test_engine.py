"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, fired.append, "c")
    engine.schedule(10, fired.append, "a")
    engine.schedule(20, fired.append, "b")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30


def test_same_cycle_events_fire_in_schedule_order():
    engine = Engine()
    fired = []
    for tag in "abcde":
        engine.schedule(5, fired.append, tag)
    engine.run()
    assert fired == list("abcde")


def test_priority_orders_same_cycle_events():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "low", priority=1)
    engine.schedule(5, fired.append, "high", priority=0)
    engine.run()
    assert fired == ["high", "low"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: engine.schedule_at(25, fired.append, "x"))
    engine.run()
    assert fired == ["x"]
    assert engine.now == 25


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, "early")
    engine.schedule(100, fired.append, "late")
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    engine.run()
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10, fired.append, "cancelled")
    engine.schedule(5, fired.append, "kept")
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_stop_halts_run():
    engine = Engine()
    fired = []

    def stopper():
        fired.append("first")
        engine.stop()

    engine.schedule(1, stopper)
    engine.schedule(2, fired.append, "second")
    assert engine.run() == 1
    assert fired == ["first"]
    engine.run()
    assert fired == ["first", "second"]


def test_events_scheduled_during_run_execute():
    engine = Engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            engine.schedule(1, chain, n + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert engine.now == 5


def test_zero_delay_runs_after_queued_same_cycle_events():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.schedule(0, fired.append, "nested")

    engine.schedule(3, first)
    engine.schedule(3, fired.append, "second")
    engine.run()
    assert fired == ["first", "second", "nested"]


def test_max_events_bound():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule(i, fired.append, i)
    engine.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_pending_and_peek():
    engine = Engine()
    assert engine.peek_time() is None
    event = engine.schedule(7, lambda: None)
    engine.schedule(3, lambda: None)
    assert engine.pending() == 2
    assert engine.peek_time() == 3
    event.cancel()
    assert engine.pending() == 1


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    event.cancel()
    event.cancel()  # double cancel must not double-decrement
    assert engine.pending() == 1
    assert engine.run() == 1
    assert engine.pending() == 0


def test_cancel_then_peek_then_run_ordering():
    """Regression: peek_time reaps cancelled head entries; a subsequent
    run must still fire the remaining events in order and never fire the
    cancelled one."""
    engine = Engine()
    fired = []
    head = engine.schedule(3, fired.append, "cancelled-head")
    engine.schedule(5, fired.append, "a")
    engine.schedule(5, fired.append, "b")
    head.cancel()
    assert engine.peek_time() == 5  # cancelled head is skipped
    assert engine.pending() == 2
    engine.run()
    assert fired == ["a", "b"]
    assert engine.now == 5
    assert engine.pending() == 0


def test_cancelled_peek_survivor_fires_after_run():
    engine = Engine()
    fired = []
    first = engine.schedule(2, fired.append, "x")
    engine.schedule(4, fired.append, "y")
    first.cancel()
    # peek, then schedule more work, then run: lazy deletion must not
    # disturb ordering of events scheduled after the peek.
    assert engine.peek_time() == 4
    engine.schedule(3, fired.append, "z")
    engine.run()
    assert fired == ["z", "y"]


def test_mass_cancellation_compacts_queue():
    engine = Engine()
    events = [engine.schedule(i + 1, lambda: None) for i in range(500)]
    keeper_fired = []
    engine.schedule(1000, keeper_fired.append, "keeper")
    for event in events:
        event.cancel()
    # Compaction keeps the heap proportional to live work.
    assert engine.pending() == 1
    assert len(engine._queue) < 100
    engine.run()
    assert keeper_fired == ["keeper"]
    assert engine.now == 1000


def test_pending_counts_executed_events_down():
    engine = Engine()
    for i in range(5):
        engine.schedule(i, lambda: None)
    engine.run(max_events=2)
    assert engine.pending() == 3
    engine.run()
    assert engine.pending() == 0
