"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, fired.append, "c")
    engine.schedule(10, fired.append, "a")
    engine.schedule(20, fired.append, "b")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30


def test_same_cycle_events_fire_in_schedule_order():
    engine = Engine()
    fired = []
    for tag in "abcde":
        engine.schedule(5, fired.append, tag)
    engine.run()
    assert fired == list("abcde")


def test_priority_orders_same_cycle_events():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "low", priority=1)
    engine.schedule(5, fired.append, "high", priority=0)
    engine.run()
    assert fired == ["high", "low"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: engine.schedule_at(25, fired.append, "x"))
    engine.run()
    assert fired == ["x"]
    assert engine.now == 25


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, "early")
    engine.schedule(100, fired.append, "late")
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    engine.run()
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10, fired.append, "cancelled")
    engine.schedule(5, fired.append, "kept")
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_stop_halts_run():
    engine = Engine()
    fired = []

    def stopper():
        fired.append("first")
        engine.stop()

    engine.schedule(1, stopper)
    engine.schedule(2, fired.append, "second")
    assert engine.run() == 1
    assert fired == ["first"]
    engine.run()
    assert fired == ["first", "second"]


def test_events_scheduled_during_run_execute():
    engine = Engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            engine.schedule(1, chain, n + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert engine.now == 5


def test_zero_delay_runs_after_queued_same_cycle_events():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.schedule(0, fired.append, "nested")

    engine.schedule(3, first)
    engine.schedule(3, fired.append, "second")
    engine.run()
    assert fired == ["first", "second", "nested"]


def test_max_events_bound():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule(i, fired.append, i)
    engine.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_pending_and_peek():
    engine = Engine()
    assert engine.peek_time() is None
    event = engine.schedule(7, lambda: None)
    engine.schedule(3, lambda: None)
    assert engine.pending() == 2
    assert engine.peek_time() == 3
    event.cancel()
    assert engine.pending() == 1


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    event.cancel()
    event.cancel()  # double cancel must not double-decrement
    assert engine.pending() == 1
    assert engine.run() == 1
    assert engine.pending() == 0


def test_cancel_then_peek_then_run_ordering():
    """Regression: peek_time reaps cancelled head entries; a subsequent
    run must still fire the remaining events in order and never fire the
    cancelled one."""
    engine = Engine()
    fired = []
    head = engine.schedule(3, fired.append, "cancelled-head")
    engine.schedule(5, fired.append, "a")
    engine.schedule(5, fired.append, "b")
    head.cancel()
    assert engine.peek_time() == 5  # cancelled head is skipped
    assert engine.pending() == 2
    engine.run()
    assert fired == ["a", "b"]
    assert engine.now == 5
    assert engine.pending() == 0


def test_cancelled_peek_survivor_fires_after_run():
    engine = Engine()
    fired = []
    first = engine.schedule(2, fired.append, "x")
    engine.schedule(4, fired.append, "y")
    first.cancel()
    # peek, then schedule more work, then run: lazy deletion must not
    # disturb ordering of events scheduled after the peek.
    assert engine.peek_time() == 4
    engine.schedule(3, fired.append, "z")
    engine.run()
    assert fired == ["z", "y"]


def test_mass_cancellation_compacts_queue():
    engine = Engine()
    events = [engine.schedule(i + 1, lambda: None) for i in range(500)]
    keeper_fired = []
    engine.schedule(1000, keeper_fired.append, "keeper")
    for event in events:
        event.cancel()
    # Compaction keeps the heap proportional to live work.
    assert engine.pending() == 1
    assert len(engine._queue) < 100
    engine.run()
    assert keeper_fired == ["keeper"]
    assert engine.now == 1000


def test_pending_counts_executed_events_down():
    engine = Engine()
    for i in range(5):
        engine.schedule(i, lambda: None)
    engine.run(max_events=2)
    assert engine.pending() == 3
    engine.run()
    assert engine.pending() == 0


def test_call_soon_fires_in_order_with_schedule_zero():
    engine = Engine()
    fired = []
    engine.call_soon(fired.append, "a")
    engine.schedule(0, fired.append, "b")
    engine.call_soon(fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 0


def test_call_soon_runs_after_earlier_timed_event_same_cycle():
    engine = Engine()
    fired = []

    def at_five():
        fired.append("timed")
        engine.call_soon(fired.append, "soon")
        engine.schedule(0, fired.append, "zero")

    engine.schedule(5, at_five)
    engine.schedule(5, fired.append, "second-timed")
    engine.run()
    # Both continuations were queued after second-timed's seq, so the
    # heap entry fires first even though the ready queue is non-empty.
    assert fired == ["timed", "second-timed", "soon", "zero"]


def test_schedule_zero_event_cancellable_on_ready_path():
    engine = Engine()
    fired = []
    event = engine.schedule(0, fired.append, "cancelled")
    engine.call_soon(fired.append, "kept")
    event.cancel()
    assert engine.pending() == 1
    engine.run()
    assert fired == ["kept"]


def test_negative_priority_timed_event_precedes_ready_work():
    engine = Engine()
    fired = []
    engine.call_soon(fired.append, "soon")
    engine.schedule(0, fired.append, "urgent", priority=-1)
    engine.run()
    assert fired == ["urgent", "soon"]


def test_try_advance_refused_outside_run():
    engine = Engine()
    assert not engine.try_advance(10)
    assert engine.now == 0


def _fast_engine() -> Engine:
    """An engine pinned to fast mode, regardless of REPRO_SLOW_ENGINE.

    The fast-path tests assert fast-path behaviour; the suite itself may
    legitimately run under the reference env var.
    """
    engine = Engine()
    engine.fast = True
    return engine


def test_try_advance_claims_clock_when_next():
    engine = _fast_engine()
    seen = {}

    def handler():
        # Nothing else queued: the completion at now+7 is the next event.
        seen["claimed"] = engine.try_advance(engine.now + 7)
        seen["now"] = engine.now

    engine.schedule(3, handler)
    engine.run()
    assert seen == {"claimed": True, "now": 10}
    assert engine.now == 10


def test_try_advance_refused_when_work_pending():
    engine = _fast_engine()
    seen = {}

    def handler():
        engine.call_soon(lambda: None)
        seen["with-ready"] = engine.try_advance(engine.now + 7)

    def later():
        # A timed event at t=5 precedes a completion at t=10.
        seen["with-earlier-heap"] = engine.try_advance(engine.now + 9)

    engine.schedule(1, handler)
    engine.schedule(1, later)
    engine.schedule(5, lambda: None)
    engine.run()
    assert seen == {"with-ready": False, "with-earlier-heap": False}


def test_try_advance_respects_until_bound():
    engine = _fast_engine()
    seen = {}

    def handler():
        seen["past-bound"] = engine.try_advance(100)
        seen["at-bound"] = engine.try_advance(50)

    engine.schedule(2, handler)
    engine.run(until=50)
    assert seen == {"past-bound": False, "at-bound": True}


def test_try_advance_refused_while_clock_held():
    engine = _fast_engine()
    seen = {}

    def handler():
        engine.advance_holds += 1
        try:
            seen["held"] = engine.try_advance(engine.now + 7)
        finally:
            engine.advance_holds -= 1
        seen["released"] = engine.try_advance(engine.now + 7)

    engine.schedule(3, handler)
    engine.run()
    # While held the clock must not move; after release the claim works.
    assert seen == {"held": False, "released": True}
    assert engine.now == 10


def test_schedule_call_matches_schedule_ordering():
    engine = _fast_engine()
    fired = []
    engine.schedule_call(5, fired.append, "first")
    engine.schedule(5, fired.append, "second")
    engine.schedule_call(5, fired.append, "third")
    engine.schedule_call(0, fired.append, "soon")
    engine.run()
    assert fired == ["soon", "first", "second", "third"]
    assert engine.now == 5


def test_schedule_call_rejects_negative_delay():
    engine = _fast_engine()
    try:
        engine.schedule_call(-1, lambda: None)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("negative delay must raise")


def test_slow_mode_routes_everything_through_heap(monkeypatch):
    monkeypatch.setenv("REPRO_SLOW_ENGINE", "1")
    engine = Engine()
    assert not engine.fast
    fired = []
    engine.call_soon(fired.append, "a")
    engine.schedule(0, fired.append, "b")
    assert not engine._ready  # everything heads to the heap
    seen = {}
    engine.schedule(1, lambda: seen.setdefault(
        "advance", engine.try_advance(5)))
    engine.run()
    assert fired == ["a", "b"]
    assert seen == {"advance": False}
