"""Integration tests across the machine: coherence, values, stats."""

import pytest

from repro.sim.config import BarrierDesign, FlushMode, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def machine(track=True, **overrides):
    defaults = dict(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    defaults.update(overrides)
    config = MachineConfig.tiny(**defaults)
    return Multicore(config, track_values=track,
                     track_persist_order=track, keep_epoch_log=track)


def test_last_writer_value_reaches_nvram():
    m = machine()
    p0 = Program().store(0x1000, 8, value="first").barrier()
    p1 = Program().compute(3000).store(0x1000, 8, value="second").barrier()
    result = m.run([p0, p1])
    assert result.cycles_durable is not None
    assert m.image.values[0x1000] == {0: "second"}


def test_both_versions_of_shared_line_persist_in_order():
    """The IDT two-version case: the old version persists from the LLC
    with its own epoch before the new version persists."""
    m = machine(barrier_design=BarrierDesign.LB_IDT)
    p0 = Program().store(0x1000, 8, value="old").barrier()
    p0.store(0x5000, 8).barrier()
    p1 = Program().compute(3000).store(0x1000, 8, value="new").barrier()
    m.run([p0, p1])
    versions = [
        (r.core_id, r.epoch_seq) for r in m.image.history
        if r.line == 0x1000 and r.kind in ("data", "eviction")
    ]
    assert versions[0][0] == 0          # core 0's version first
    assert versions[-1][0] == 1         # core 1's version last
    assert m.image.values[0x1000] == {0: "new"}


def test_remote_dirty_forwarding_counted():
    # Under NP there is no persistence machinery: the writer's line stays
    # dirty in its L1 and the reader's miss must be forwarded from there.
    m = machine(persistency=PersistencyModel.NP)
    p0 = Program().store(0x1000, 8, value="x")
    p1 = Program().compute(3000).load(0x1000)
    result = m.run([p0, p1])
    assert result.stats.domain("llc").get("forwards") >= 1


def test_offsets_within_line_merge():
    m = machine()
    p = Program()
    p.store(0x1000, 8, value="a").store(0x1008, 8, value="b").barrier()
    m.run([p])
    assert m.image.values[0x1000] == {0: "a", 8: "b"}


def test_value_survives_clflush_and_reload():
    m = machine(flush_mode=FlushMode.CLFLUSH)
    p = Program().store(0x1000, 8, value="persisted").barrier()
    p.compute(5000).load(0x1000)
    result = m.run([p])
    # The reload missed everywhere and re-fetched from NVRAM.
    assert result.stats.domain("nvram").get("reads") >= 1
    entry = m.l1s[0].lookup(0x1000)
    assert entry is not None and entry.values == {0: "persisted"}


def test_mem_latency_recorded_per_core():
    m = machine()
    p = Program().load(0x9000).store(0x9000, 8).barrier()
    result = m.run([p])
    assert result.stats.domain("core0").count("mem_latency") >= 2
    # A cold load travels to NVRAM: latency must exceed the read latency.
    assert result.stats.domain("core0").maximum("mem_latency") >= 240


def test_many_threads_heavy_sharing_audits_clean():
    config = MachineConfig.small(
        num_cores=4, llc_banks=4, mesh_rows=2,
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    m = Multicore(config)
    shared = [0x8000 + i * 64 for i in range(4)]
    programs = []
    import random
    for tid in range(4):
        rng = random.Random(tid)
        p = Program()
        for i in range(150):
            addr = rng.choice(shared)
            if rng.random() < 0.5:
                p.store(addr, 8)
            else:
                p.load(addr)
            if i % 7 == 6:
                p.barrier()
        p.barrier()
        programs.append(p)
    result = m.run(programs)
    assert result.finished and result.cycles_durable is not None
    m.audit()


def test_np_and_bep_read_same_trace_identically():
    """Persistency must not change *memory semantics*, only timing:
    the final NVRAM value set after drain matches across models."""
    def final_values(model):
        m = machine(persistency=model)
        p0 = Program()
        p1 = Program()
        for i in range(20):
            p0.store(0x1000 + i * 64, 8, value=("a", i)).barrier()
            p1.store(0x9000 + i * 64, 8, value=("b", i)).barrier()
        m.run([p0, p1])
        # Force everything out for NP as well.
        return {
            line: vals
            for line, vals in m.image.values.items()
        }

    bep = final_values(PersistencyModel.BEP)
    for line, vals in bep.items():
        # BEP drained everything; each line carries its final token.
        assert vals
    sp = final_values(PersistencyModel.SP)
    assert sp == bep


def test_eviction_traffic_appears_under_pressure():
    # Plain LB keeps lines dirty until something forces them out, so a
    # working set overflowing the LLC produces dirty replacements (the
    # "natural evictions" that are LB's offline-persist mechanism).
    m = machine(barrier_design=BarrierDesign.LB, l1_size=512,
                llc_bank_size=2048, track=False)
    p = Program()
    for i in range(512):
        p.store(0x10000 + i * 64, 8)
        if i % 8 == 7:
            p.barrier()
    p.barrier()
    result = m.run([p])
    assert result.finished
    llc = result.stats.domain("llc")
    assert llc.get("dirty_evictions") > 0
    assert result.stats.domain("nvram").get("writes_eviction") == \
        llc.get("dirty_evictions")


def test_fill_race_reclassification_path():
    """Concurrent cold accesses to the same line from both cores force
    the fill-race reclassification at least occasionally."""
    m = machine(track=False)
    shared = [0x8000 + i * 64 for i in range(2)]
    p0 = Program()
    p1 = Program()
    for i in range(60):
        p0.store(shared[i % 2], 8).barrier()
        p1.load(shared[(i + 1) % 2])
        p1.store(shared[i % 2], 8).barrier()
    result = m.run([p0, p1])
    assert result.finished
    m.audit()
