"""Tests for the sweep-farm planner: delta planning, scoped
invalidation, deterministic sharding, cost-model scheduling, and
budget/checkpoint/resume."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.harness.cache import (
    SUBSYSTEM_VERSIONS,
    ResultCache,
    spec_fingerprints,
    spec_key,
    spec_subsystems,
)
from repro.harness.executor import RunSpec, order_longest_first, run_specs
from repro.harness.experiments import figure_plan_specs
from repro.harness.plan import (
    PLAN_FILENAME,
    PlanEntry,
    SweepPlan,
    build_plan,
    parse_shard,
    pending_longest_first,
    run_plan,
    shard_of,
    shard_plan,
)
from repro.harness.runner import Scale
from repro.sim.config import BarrierDesign, PersistencyModel


def _mini_universe():
    """One spec per subsystem profile: NP (no flush), BEP (flush, no
    bsp), BSP (flush + bsp) -- all short enough to execute in tests."""
    np_spec = RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY,
                          model=PersistencyModel.NP, mem_ops=300)
    bep_spec = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                           transactions=6)
    bsp_spec = RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY,
                           epoch_stores=30, mem_ops=300)
    return np_spec, bep_spec, bsp_spec


# ----------------------------------------------------------------------
# Subsystem declaration and scoped keys
# ----------------------------------------------------------------------
def test_spec_subsystems_by_model():
    np_spec, bep_spec, bsp_spec = _mini_universe()
    assert "flush" not in spec_subsystems(np_spec)
    assert "bsp" not in spec_subsystems(np_spec)
    assert "flush" in spec_subsystems(bep_spec)
    assert "bsp" not in spec_subsystems(bep_spec)
    assert "flush" in spec_subsystems(bsp_spec)
    assert "bsp" in spec_subsystems(bsp_spec)
    for spec in (np_spec, bep_spec, bsp_spec):
        subs = spec_subsystems(spec)
        assert "engine" in subs and "mem" in subs
        assert f"workload:{spec.workload}" in subs


def test_bump_moves_key_only_for_declaring_specs():
    np_spec, bep_spec, bsp_spec = _mini_universe()
    bump = {"flush": SUBSYSTEM_VERSIONS["flush"] + 1}
    assert spec_key(np_spec, versions=bump) == spec_key(np_spec)
    assert spec_key(bep_spec, versions=bump) != spec_key(bep_spec)
    assert spec_key(bsp_spec, versions=bump) != spec_key(bsp_spec)


def test_workload_version_scopes_to_one_generator():
    _, bep_spec, bsp_spec = _mini_universe()
    bump = {"workload:queue": 2}
    assert spec_key(bep_spec, versions=bump) != spec_key(bep_spec)
    assert spec_key(bsp_spec, versions=bump) == spec_key(bsp_spec)


def test_cost_key_is_version_independent():
    _, bep_spec, _ = _mini_universe()
    key_a, cost_a = spec_fingerprints(bep_spec)
    key_b, cost_b = spec_fingerprints(bep_spec, versions={"engine": 999})
    assert key_a != key_b
    assert cost_a == cost_b


def test_workload_args_reach_key_but_absence_is_canonical():
    plain = RunSpec.bep("pingpong", BarrierDesign.LB, Scale.TINY)
    tuned = RunSpec.bep("pingpong", BarrierDesign.LB, Scale.TINY,
                        workload_args={"conflict_rate": 0.5})
    assert "workload_args" not in plain.workload_params()
    assert spec_key(plain) != spec_key(tuned)
    with pytest.raises(ValueError):
        RunSpec(kind="bsp", workload="radix", design=BarrierDesign.LB,
                scale=Scale.TINY, workload_args=(("x", 1),))


# ----------------------------------------------------------------------
# Delta planning + scoped invalidation end to end
# ----------------------------------------------------------------------
def test_bump_invalidates_exactly_declaring_specs(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    originals = run_specs(specs, jobs=1, cache=cache)

    warm = build_plan({"t": specs}, cache)
    assert [e.cached for e in warm.entries] == [True, True, True]

    bumped = ResultCache(
        tmp_path, versions={"flush": SUBSYSTEM_VERSIONS["flush"] + 1}
    )
    plan = build_plan({"t": specs}, bumped)
    cached = {e.spec: e.cached for e in plan.entries}
    np_spec, bep_spec, bsp_spec = specs
    assert cached[np_spec] is True          # NP never flushes: stays warm
    assert cached[bep_spec] is False
    assert cached[bsp_spec] is False

    # Recompute under the new version: digest-identical results (the
    # bump was spurious, so the simulator output must not move).
    recomputed = run_specs(specs, jobs=1, cache=bumped)
    assert recomputed == originals


def test_build_plan_tags_shared_specs_with_all_consumers(tmp_path):
    np_spec, bep_spec, _ = _mini_universe()
    cache = ResultCache(tmp_path)
    plan = build_plan(
        {"figA": [np_spec, bep_spec], "figB": [np_spec]}, cache
    )
    assert len(plan.entries) == 2
    by_spec = {e.spec: e for e in plan.entries}
    assert by_spec[np_spec].figures == ("figA", "figB")
    assert by_spec[bep_spec].figures == ("figA",)


def test_refresh_plans_everything_pending(tmp_path):
    specs = list(_mini_universe())[:1]
    cache = ResultCache(tmp_path)
    run_specs(specs, jobs=1, cache=cache)
    assert not build_plan({"t": specs}, cache).pending
    assert len(build_plan({"t": specs}, cache, refresh=True).pending) == 1


# ----------------------------------------------------------------------
# Sharding invariants
# ----------------------------------------------------------------------
def _full_tiny_plan(tmp_path):
    cache = ResultCache(tmp_path)
    return build_plan(figure_plan_specs(Scale.TINY), cache)


@pytest.mark.parametrize("count", [1, 2, 3, 5])
def test_shards_are_disjoint_and_cover_the_plan(tmp_path, count):
    plan = _full_tiny_plan(tmp_path)
    all_keys = {e.key for e in plan.entries}
    assert len(all_keys) == len(plan.entries)  # universe is deduped
    seen = set()
    for index in range(1, count + 1):
        part = shard_plan(plan, index, count)
        keys = {e.key for e in part.entries}
        assert not (seen & keys)
        assert part.universe == len(plan.entries)
        seen |= keys
    assert seen == all_keys


def test_shard_of_is_a_pure_function_of_the_key():
    # Pinned values: any drift here silently re-partitions every farm.
    assert shard_of("0" * 64, 4) == 1
    assert shard_of("f" * 64, 4) == 4  # (2**64 - 1) % 4 + 1
    assert shard_of("8000000000000000" + "0" * 48, 2) == 1
    for count in (1, 2, 7):
        assert 1 <= shard_of("abcdef0123456789" + "0" * 48, count) <= count


def test_shard_assignment_stable_across_processes(tmp_path):
    plan = _full_tiny_plan(tmp_path)
    keys = [e.key for e in plan.entries[:8]]
    local = [shard_of(k, 4) for k in keys]
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    code = (
        "import sys, json\n"
        "from repro.harness.plan import shard_of\n"
        "keys = json.load(sys.stdin)\n"
        "print(json.dumps([shard_of(k, 4) for k in keys]))\n"
    )
    for hashseed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code], input=json.dumps(keys),
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(out.stdout) == local


def test_parse_shard_validates():
    assert parse_shard("2/4") == (2, 4)
    for bad in ("0/2", "3/2", "2", "a/b", "1/0", "-1/3"):
        with pytest.raises(ValueError):
            parse_shard(bad)


def test_sharded_execution_merges_through_shared_cache(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    unsharded = run_specs(specs, jobs=1, cache=ResultCache(tmp_path / "u"))
    plan = build_plan({"t": specs}, cache)
    for index in (1, 2):
        part = shard_plan(plan, index, 2)
        report = run_plan(part, cache, jobs=1)
        assert report.remaining == 0
    # Every spec is now cached; results match the unsharded run exactly.
    merged = run_specs(specs, jobs=1, cache=cache)
    assert cache.misses == 0
    assert merged == unsharded
    assert not build_plan({"t": specs}, cache).pending


# ----------------------------------------------------------------------
# Cost model / LPT ordering
# ----------------------------------------------------------------------
def test_order_longest_first_with_mean_fill():
    order = order_longest_first(
        [0, 1, 2, 3], {0: 1.0, 1: 5.0, 2: None, 3: 3.0}
    )
    # Unknown cost (index 2) gets the mean of known (3.0), tying with
    # index 3; ties keep submission order, so 2 stays ahead of 3.
    assert order == [1, 2, 3, 0]


def test_costs_survive_version_bumps_and_order_the_plan(tmp_path):
    np_spec, bep_spec, _ = _mini_universe()
    cache = ResultCache(tmp_path)
    run_specs([np_spec, bep_spec], jobs=1, cache=cache)
    for spec in (np_spec, bep_spec):
        _, cost_key = cache.fingerprints(spec)
        assert cache.cost_by_key(cost_key) is not None

    bumped = ResultCache(
        tmp_path, versions={"engine": SUBSYSTEM_VERSIONS["engine"] + 1}
    )
    plan = build_plan({"t": [np_spec, bep_spec]}, bumped)
    assert all(not e.cached for e in plan.entries)
    assert all(e.est_seconds is not None for e in plan.entries)
    ordered = pending_longest_first(plan)
    ests = [e.est_seconds for e in ordered]
    assert ests == sorted(ests, reverse=True)


def test_plan_summary_counts(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    run_specs(specs[:1], jobs=1, cache=cache)
    plan = build_plan({"t": specs}, cache)
    line = plan.summary(jobs=1)
    assert "1 cached" in line and "2 to run" in line


# ----------------------------------------------------------------------
# Budget + checkpoint/resume
# ----------------------------------------------------------------------
def test_budget_zero_plans_everything_runs_nothing(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    plan = build_plan({"t": specs}, cache)
    cursor = tmp_path / "plan.json"
    report = run_plan(plan, cache, jobs=1, budget=0.0, plan_path=cursor)
    assert report.executed == 0
    assert report.remaining == len(specs)
    assert report.over_budget
    record = json.loads(cursor.read_text())
    assert len(record["remaining"]) == len(specs)
    assert record["completed"] == []


def test_interrupted_run_resumes_without_recompute(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    cursor = tmp_path / "plan.json"
    # Complete part of the plan (as a budget cut mid-sweep would).
    run_specs(specs[:2], jobs=1, cache=cache)
    done_before = len(cache)
    assert 0 < done_before < len(specs)

    # Resume = re-plan against the cache: completed specs are cached,
    # the remainder (and only the remainder) runs.
    plan2 = build_plan({"t": specs}, cache)
    assert len(plan2.cached_entries) == done_before
    report = run_plan(plan2, cache, jobs=1, plan_path=cursor)
    assert report.executed == len(specs) - done_before
    assert report.remaining == 0
    record = json.loads(cursor.read_text())
    assert record["remaining"] == []
    assert not build_plan({"t": specs}, cache).pending


def test_warm_figures_cli_reports_zero_to_run(tmp_path, capsys):
    from repro.harness.experiments import main as experiments_main
    argv = ["contended", "--scale", "tiny", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache")]
    assert experiments_main(argv) == 0
    cold = capsys.readouterr().out
    assert "18 to run" in cold
    assert experiments_main(argv) == 0
    warm = capsys.readouterr().out
    assert "0 to run" in warm and "nothing to do" in warm
    # Byte-identical figure output on the warm rebuild.
    assert cold.split("Contended", 1)[1] == warm.split("Contended", 1)[1]


# ----------------------------------------------------------------------
# Cache stats / prune (farm-host hygiene)
# ----------------------------------------------------------------------
def test_cache_stats_counts_entries_and_costs(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    run_specs(specs, jobs=1, cache=cache)
    stats = cache.stats()
    assert stats["entries"] == len(specs)
    assert stats["cost_entries"] == len(specs)
    assert stats["bytes"] > 0
    assert stats["oldest_age_s"] is not None


def test_prune_by_age_and_size(tmp_path):
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    run_specs(specs, jobs=1, cache=cache)

    # Dry run deletes nothing.
    removed, freed = cache.prune(max_bytes=0, dry_run=True)
    assert removed == len(specs) and freed > 0
    assert len(cache) == len(specs)

    # Size budget of one entry: the LRU survivor is the most recently
    # used one. Touch the first spec so it survives.
    time.sleep(0.02)
    assert cache.get(specs[0]) is not None
    keep_key = cache.key_for(specs[0])
    budget = cache._path_for(keep_key).stat().st_size
    cache.prune(max_bytes=budget)
    assert len(cache) == 1
    assert cache.contains_key(keep_key)

    # Age cutoff in the future drops everything, costs included.
    cache.prune(max_age_days=0.0, now=time.time() + 60)
    assert len(cache) == 0
    assert cache.stats()["cost_entries"] == 0


def test_plan_cursor_is_not_a_cache_record(tmp_path):
    """``plan.json`` in the cache root is never counted, pruned, or
    cleared — only 64-hex content-addressed files are records."""
    specs = list(_mini_universe())
    cache = ResultCache(tmp_path)
    run_specs(specs, jobs=1, cache=cache)
    cursor = Path(tmp_path) / PLAN_FILENAME
    cursor.write_text("{}", encoding="utf-8")

    assert cache.stats()["entries"] == len(specs)
    assert len(cache) == len(specs)
    cache.prune(max_bytes=0, max_age_days=0.0, now=time.time() + 60)
    assert len(cache) == 0
    assert cursor.is_file()
    assert cache.clear() == 0
    assert cursor.is_file()
