"""Tests for the op model and program builders."""

import pytest

from repro.workloads.base import (
    Op,
    OpKind,
    Program,
    barrier,
    compute,
    load,
    load_span,
    span_ops,
    store,
    store_span,
    txn_mark,
)


def test_op_constructors():
    op = load(0x1000, 16)
    assert op.kind is OpKind.LOAD and op.size == 16
    op = store(0x1000, 8, value="v")
    assert op.kind is OpKind.STORE and op.value == "v"
    assert barrier().kind is OpKind.BARRIER
    assert compute(10).cycles == 10
    assert txn_mark().kind is OpKind.TXN_MARK


def test_access_needs_positive_size():
    with pytest.raises(ValueError):
        Op(OpKind.LOAD, addr=0, size=0)
    with pytest.raises(ValueError):
        Op(OpKind.STORE, addr=0, size=-1)


def test_compute_needs_nonnegative_cycles():
    with pytest.raises(ValueError):
        Op(OpKind.COMPUTE, cycles=-1)
    assert Op(OpKind.COMPUTE, cycles=0).cycles == 0


def test_span_ops_split_on_line_boundaries():
    ops = list(span_ops(OpKind.STORE, 60, 16, 64))
    assert [(o.addr, o.size) for o in ops] == [(60, 4), (64, 12)]


def test_span_ops_aligned_object():
    ops = list(store_span(0x1000, 512, 64, value="x"))
    assert len(ops) == 8
    assert all(o.size == 64 and o.value == "x" for o in ops)
    assert [o.addr for o in ops] == [0x1000 + i * 64 for i in range(8)]


def test_load_span():
    ops = list(load_span(0x1000, 100, 64))
    assert [o.size for o in ops] == [64, 36]
    assert all(o.kind is OpKind.LOAD for o in ops)


def test_program_builder_chains():
    p = (Program().load(0x1000).store(0x2000, 8, value="v")
         .barrier().compute(5).txn_mark())
    kinds = [o.kind for o in p]
    assert kinds == [OpKind.LOAD, OpKind.STORE, OpKind.BARRIER,
                     OpKind.COMPUTE, OpKind.TXN_MARK]
    assert len(p) == 5


def test_program_extend():
    p = Program().extend(store_span(0, 128, 64))
    assert len(p) == 2


def test_ops_are_slot_bound():
    # Op trades enforced frozenness for construction speed (it sits on
    # the million-transaction lazy-generation path); the slots layout
    # still rejects stray attributes and per-instance dicts.
    op = load(0x1000)
    with pytest.raises(AttributeError):
        op.tag = "x"
    assert not hasattr(op, "__dict__")


def test_op_equality_and_repr():
    a = load(0x1000)
    b = load(0x1000)
    assert a == b and hash(a) == hash(b)
    assert a != load(0x2000)
    assert "LOAD" in repr(a).upper() or "load" in repr(a)
