"""Focused unit tests for the arbiter, undo log, and checkpoint engine,
driven through a small machine (their behaviour is defined by how they
coordinate with epochs, so fully isolated tests would re-implement the
machine)."""

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def bep_machine(**overrides):
    defaults = dict(
        barrier_design=BarrierDesign.LB,
        persistency=PersistencyModel.BEP,
    )
    defaults.update(overrides)
    return Multicore(MachineConfig.tiny(**defaults))


def bsp_machine(**overrides):
    defaults = dict(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BSP,
        bsp_epoch_stores=30,
    )
    defaults.update(overrides)
    return Multicore(MachineConfig.tiny(**defaults))


# ----------------------------------------------------------------------
# Arbiter
# ----------------------------------------------------------------------
def test_arbiter_flushes_nothing_without_demand():
    """Plain LB never flushes spontaneously: no conflicts, no flushes
    until the end-of-run drain."""
    m = bep_machine()
    p = Program()
    for i in range(5):
        p.store(0x1000 + i * 64, 8).barrier()
    result = m.run([p], drain=False)
    assert result.finished
    # All epochs still buffered: nothing persisted during the run.
    assert result.stats.total("epochs_persisted") == 0
    # Now drain explicitly.
    for arbiter in m.arbiters:
        arbiter.drain_all()
    m.engine.run()
    assert m.stats.total("epochs_persisted") == 5


def test_pf_flushes_epochs_without_demand():
    m = bep_machine(barrier_design=BarrierDesign.LB_PF)
    p = Program()
    for i in range(5):
        p.store(0x1000 + i * 64, 8).barrier()
    p.compute(20_000)
    result = m.run([p], drain=False)
    assert result.stats.total("epochs_persisted") == 5
    flushes = sum(
        result.stats.domain(f"arbiter{c}").get("flushes_offline")
        for c in range(m.config.num_cores)
    )
    assert flushes == 5


def test_online_flush_counted_separately():
    m = bep_machine()
    p = Program().store(0x1000, 8).barrier().store(0x1000, 8).barrier()
    result = m.run([p])
    online = sum(
        result.stats.domain(f"arbiter{c}").get("flushes_online")
        for c in range(m.config.num_cores)
    )
    assert online >= 1


def test_flush_order_follows_window_order():
    """Requesting a flush up to epoch N forces epochs 0..N in order."""
    m = bep_machine()
    p = Program()
    for i in range(4):
        p.store(0x1000 + i * 64, 8).barrier()
    # Conflict with the *last* epoch's line: all four must flush.
    p.store(0x1000 + 3 * 64, 8).barrier()
    m2 = Multicore(m.config, track_persist_order=True)
    m2.run([p])
    seqs = [r.epoch_seq for r in m2.image.history if r.kind == "data"]
    assert seqs == sorted(seqs)


# ----------------------------------------------------------------------
# Undo log
# ----------------------------------------------------------------------
def test_one_log_entry_per_line_per_epoch():
    m = bsp_machine()
    p = Program()
    for _ in range(10):                 # ten stores, same line, one epoch
        p.store(0x1000, 8)
    result = m.run([p])
    assert result.stats.domain("nvram").get("writes_log") == 1


def test_new_epoch_logs_line_again():
    m = bsp_machine(bsp_epoch_stores=5)
    p = Program()
    for _ in range(10):                 # spans two hardware epochs
        p.store(0x1000, 8)
    result = m.run([p])
    assert result.stats.domain("nvram").get("writes_log") == 2


def test_log_entries_capture_old_values():
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BSP, bsp_epoch_stores=5,
    )
    m = Multicore(config, track_values=True, track_persist_order=True)
    p = Program()
    p.store(0x1000, 8, value="v1")
    for i in range(5):
        p.store(0x2000 + i * 64, 8)     # force the epoch boundary
    p.store(0x1000, 8, value="v2")
    m.run([p])
    olds = [old.get(0) for _line, (data, old) in
            m.image.log_entries.items() if data == 0x1000]
    # First log: line was fresh (no prior value); second: "v1".
    assert None in olds or {} in olds or olds[0] is None
    assert "v1" in olds


def test_log_region_addresses_are_per_core():
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BSP, bsp_epoch_stores=10,
    )
    m = Multicore(config, track_persist_order=True)
    p0 = Program()
    p1 = Program()
    for i in range(5):
        p0.store(0x1000 + i * 64, 8)
        p1.store(0x9000 + i * 64, 8)
    m.run([p0, p1])
    log_lines = {r.core_id: set() for r in m.image.history
                 if r.kind == "log"}
    for r in m.image.history:
        if r.kind == "log":
            log_lines[r.core_id].add(r.line)
    if len(log_lines) == 2:
        assert not (log_lines[0] & log_lines[1])


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
def test_checkpoint_lines_match_configured_size():
    m = bsp_machine(checkpoint_bytes=832)   # 13 lines
    assert m.checkpoints[0].lines_per_checkpoint == 13
    p = Program()
    for _ in range(30):                      # exactly one hardware epoch
        p.store(0x1000, 8)
    result = m.run([p])
    hw_barriers = result.stats.total("hw_barriers")
    assert result.stats.domain("nvram").get("writes_checkpoint") == \
        13 * hw_barriers


def test_epoch_not_persisted_until_checkpoint_durable():
    m = bsp_machine(nvram_write_latency=5_000)
    p = Program()
    for _ in range(30):
        p.store(0x1000, 8)
    result = m.run([p], drain=True)
    # With the drain complete, checkpoints and epochs balance out.
    assert result.cycles_durable is not None
    assert result.stats.total("epochs_persisted") == \
        result.stats.total("epochs")


def test_bep_never_checkpoints():
    m = bep_machine()
    p = Program()
    for i in range(20):
        p.store(0x1000 + i * 64, 8).barrier()
    result = m.run([p])
    assert result.stats.domain("nvram").get("writes_checkpoint") == 0
    assert result.stats.domain("nvram").get("writes_log") == 0
