"""Tests for the experiment harness and report formatting."""

import pytest

from repro.harness.report import FigureTable, normalize_rows
from repro.harness.runner import (
    BSP_EPOCH_SIZES,
    Scale,
    default_bsp_epoch_size,
    run_bep,
    run_bsp,
)
from repro.sim.config import BarrierDesign, PersistencyModel


def test_figure_table_render_and_summary():
    table = FigureTable("Demo", ["A", "B"], summary="gmean")
    table.add_row("x", [1.0, 2.0])
    table.add_row("y", [1.0, 8.0])
    name, values = table.summary_row()
    assert name == "gmean"
    assert values == pytest.approx([1.0, 4.0])
    text = table.render()
    assert "Demo" in text and "gmean" in text and "8.000" in text


def test_figure_table_amean():
    table = FigureTable("Demo", ["A"], summary="amean")
    table.add_row("x", [10.0])
    table.add_row("y", [20.0])
    assert table.summary_row()[1] == [15.0]


def test_figure_table_row_arity_checked():
    table = FigureTable("Demo", ["A", "B"])
    with pytest.raises(ValueError):
        table.add_row("x", [1.0])


def test_figure_table_as_dict():
    table = FigureTable("Demo", ["A"], summary="none")
    table.add_row("x", [3.0])
    assert table.as_dict() == {"x": {"A": 3.0}}


def test_normalize_rows():
    raw = {"x": {"LB": 2.0, "LB++": 3.0}}
    out = normalize_rows(raw, "LB")
    assert out["x"] == {"LB": 1.0, "LB++": 1.5}
    with pytest.raises(ZeroDivisionError):
        normalize_rows({"x": {"LB": 0.0}}, "LB")


def test_epoch_sizes_scale_with_run_length():
    for scale in Scale:
        sizes = BSP_EPOCH_SIZES[scale]
        assert sizes == tuple(sorted(sizes))
        assert default_bsp_epoch_size(scale) == sizes[-1]
    assert BSP_EPOCH_SIZES[Scale.PAPER] == (300, 1000, 10000)


def test_run_bep_returns_result_with_throughput():
    result = run_bep("queue", BarrierDesign.LB, scale=Scale.TINY,
                     transactions=15)
    assert result.finished
    assert result.throughput > 0
    assert 0 <= result.conflict_epoch_pct <= 100


def test_run_bsp_np_baseline_has_no_epochs():
    result = run_bsp("cholesky", BarrierDesign.LB, scale=Scale.TINY,
                     persistency=PersistencyModel.NP, mem_ops=600)
    assert result.finished
    assert result.total_epochs == 0


def test_run_bsp_creates_hardware_epochs():
    result = run_bsp("cholesky", BarrierDesign.LB_PP, scale=Scale.TINY,
                     epoch_stores=30, mem_ops=600)
    assert result.total_epochs > 1
    assert result.cycles_durable is not None


@pytest.mark.slow
def test_fig11_reproduces_paper_ordering():
    """LB++ must beat LB on gmean, with PF the dominant optimization --
    the headline result of the paper."""
    from repro.harness.experiments import fig11, run_bep_sweep
    sweep = run_bep_sweep(Scale.TINY, seed=1, transactions=40)
    table = fig11(Scale.TINY, sweep=sweep)
    summary = dict(zip(table.columns, table.summary_row()[1]))
    assert summary["LB"] == pytest.approx(1.0)
    assert summary["LB++"] > 1.05          # paper: 1.22
    assert summary["LB+PF"] > summary["LB+IDT"]  # PF dominates on micros


@pytest.mark.slow
def test_fig12_conflicts_drop_with_pf():
    from repro.harness.experiments import fig12, run_bep_sweep
    sweep = run_bep_sweep(Scale.TINY, seed=1, transactions=40)
    table = fig12(Scale.TINY, sweep=sweep)
    summary = dict(zip(table.columns, table.summary_row()[1]))
    assert summary["LB"] > 60               # paper: ~90%
    assert summary["LB+PF"] < summary["LB"]
    assert summary["LB++"] <= summary["LB+PF"] + 5


@pytest.mark.slow
def test_fig13_epoch_size_shape():
    from repro.harness.experiments import fig13
    table = fig13(Scale.TINY, apps=["radix", "freqmine", "cholesky"])
    small, _medium, large = table.summary_row()[1]
    assert small > large        # small epochs cost more (paper: 1.9 vs 1.5)
    assert large > 1.0          # persistence is never free


@pytest.mark.slow
def test_fig14_design_ordering():
    from repro.harness.experiments import fig14
    table, inter_share = fig14(Scale.TINY, apps=["ssca2", "intruder"])
    rows = table.as_dict()
    for app in ("ssca2", "intruder"):
        assert rows[app]["LB"] >= rows[app]["LB+IDT"] - 0.02
        assert rows[app]["LB++NOLOG"] <= rows[app]["LB++"] + 0.02
    assert inter_share > 50  # paper: 86%
