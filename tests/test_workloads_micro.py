"""Tests for the Table 2 microbenchmarks."""

import pytest

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import OpKind
from repro.workloads.micro import (
    ENTRY_SIZE,
    HashTableWorkload,
    MICROBENCHMARKS,
    QueueWorkload,
    RBTreeWorkload,
    SDGWorkload,
    SPSWorkload,
    make_benchmark,
)

ALL_NAMES = ["hash", "queue", "rbtree", "sdg", "sps"]

# Simulator-only workloads: registered with the factory but not part of
# Table 2 (and so excluded from the paper's figure sweeps).  ``serving``
# and ``sharded_serving`` live in workloads.apps but register with the
# same factory.
EXTRA_NAMES = ["flushbound", "hotset", "pingpong", "serving",
               "sharded_serving"]


def test_registry_matches_table2():
    assert sorted(MICROBENCHMARKS) == sorted(ALL_NAMES + EXTRA_NAMES)


def test_figure_sweeps_pin_table2():
    from repro.harness.experiments import BEP_BENCHMARKS

    assert BEP_BENCHMARKS == sorted(ALL_NAMES)


def test_entry_size_matches_paper():
    assert ENTRY_SIZE == 512


def test_make_benchmark_unknown_name():
    with pytest.raises(KeyError):
        make_benchmark("btree")


@pytest.mark.parametrize("name", ALL_NAMES + EXTRA_NAMES)
def test_ops_are_well_formed(name):
    bench = make_benchmark(name, thread_id=0, seed=3)
    ops = list(bench.ops(30))
    assert ops, name
    kinds = {op.kind for op in ops}
    assert OpKind.STORE in kinds
    assert OpKind.BARRIER in kinds
    assert OpKind.TXN_MARK in kinds
    for op in ops:
        if op.kind in (OpKind.LOAD, OpKind.STORE):
            # Line-granular: accesses never straddle a cache line.
            assert (op.addr % 64) + op.size <= 64, op
    assert sum(1 for op in ops if op.kind is OpKind.TXN_MARK) == 30


@pytest.mark.parametrize("name", ALL_NAMES + EXTRA_NAMES)
def test_deterministic_given_seed(name):
    a = list(make_benchmark(name, thread_id=1, seed=7).ops(20))
    b = list(make_benchmark(name, thread_id=1, seed=7).ops(20))
    assert [(o.kind, o.addr, o.size) for o in a] == \
        [(o.kind, o.addr, o.size) for o in b]


@pytest.mark.parametrize("name", ALL_NAMES + EXTRA_NAMES)
def test_threads_use_disjoint_private_heaps(name):
    a = make_benchmark(name, thread_id=0, seed=1)
    b = make_benchmark(name, thread_id=1, seed=1)
    ops_a = {op.addr & ~63 for op in a.ops(15)
             if op.kind in (OpKind.LOAD, OpKind.STORE)}
    ops_b = {op.addr & ~63 for op in b.ops(15)
             if op.kind in (OpKind.LOAD, OpKind.STORE)}
    shared = ops_a & ops_b
    # Only the shared-statistics lines may overlap.
    assert all(addr < 0x1000_0000 for addr in shared)


@pytest.mark.parametrize("name", ALL_NAMES + EXTRA_NAMES)
def test_runs_to_completion_on_machine(name):
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    m = Multicore(config)
    programs = [make_benchmark(name, thread_id=t, seed=2).ops(15)
                for t in range(2)]
    result = m.run(programs)
    assert result.finished
    assert result.transactions == 30
    m.audit()


# ----------------------------------------------------------------------
# Structure-specific shadow-state oracles
# ----------------------------------------------------------------------
def drain(it):
    for _ in it:
        pass


def test_hash_table_shadow_tracks_membership():
    bench = HashTableWorkload(thread_id=0, seed=5, initial_entries=0)
    drain(bench._insert(42))
    assert bench.lookup_shadow(42)
    assert bench.size == 1
    drain(bench._delete(42))
    assert not bench.lookup_shadow(42)
    assert bench.size == 0


def test_hash_table_chains_in_one_bucket():
    bench = HashTableWorkload(thread_id=0, seed=5, num_buckets=1,
                              initial_entries=0)
    for key in (1, 2, 3):
        drain(bench._insert(key))
    assert bench.size == 3
    drain(bench._delete(2))
    assert bench.lookup_shadow(1) and bench.lookup_shadow(3)
    assert not bench.lookup_shadow(2)


def test_queue_insert_follows_figure10():
    bench = QueueWorkload(thread_id=0, seed=5)
    ops = list(bench._insert())
    kinds = [op.kind for op in ops]
    # barrier; 8 line stores (copy); barrier; head store; barrier
    assert kinds[0] is OpKind.BARRIER
    assert kinds[1:9] == [OpKind.STORE] * 8
    assert kinds[9] is OpKind.BARRIER
    assert kinds[10] is OpKind.STORE
    assert ops[10].addr == bench.head_addr
    assert kinds[11] is OpKind.BARRIER


def test_queue_occupancy_bounded():
    bench = QueueWorkload(thread_id=0, seed=5, capacity=8)
    drain(bench.ops(100))
    assert 0 <= bench.occupancy <= bench.capacity


def test_rbtree_invariants_after_heavy_churn():
    bench = RBTreeWorkload(thread_id=0, seed=11, initial_nodes=64,
                           key_space=256)
    drain(bench.ops(150))
    bench.validate_shadow()
    assert bench.size > 0


def test_rbtree_insert_then_delete_roundtrip():
    bench = RBTreeWorkload(thread_id=0, seed=1, initial_nodes=0)
    for key in [50, 25, 75, 10, 30, 60, 90, 5, 15]:
        drain(bench._insert(key))
    bench.validate_shadow()
    assert bench.contains_shadow(30)
    for key in [25, 50, 5]:
        drain(bench._delete(key))
        bench.validate_shadow()
    assert not bench.contains_shadow(25)
    assert bench.contains_shadow(90)
    assert bench.size == 6


def test_sdg_edges_tracked():
    bench = SDGWorkload(thread_id=0, seed=3, num_vertices=8,
                        initial_edges=0)
    drain(bench._insert_edge(0, 5))
    drain(bench._insert_edge(0, 6))
    assert bench.out_degree(0) == 2
    assert bench.has_edge_shadow(0, 5)
    drain(bench._delete_edge(0))
    assert bench.out_degree(0) == 1
    assert bench.num_edges == 1


def test_sps_shadow_is_always_a_permutation():
    bench = SPSWorkload(thread_id=0, seed=9, num_entries=32)
    drain(bench.ops(80))
    assert sorted(bench.shadow) == list(range(32))
    assert bench.swaps == 80


# ----------------------------------------------------------------------
# hotset: the cache-resident engine benchmark
# ----------------------------------------------------------------------
def test_hotset_is_read_mostly():
    bench = make_benchmark("hotset", thread_id=0, seed=3)
    ops = [op for op in bench.ops(32)]
    loads = sum(1 for op in ops if op.kind is OpKind.LOAD)
    stores = sum(1 for op in ops if op.kind is OpKind.STORE)
    barriers = sum(1 for op in ops if op.kind is OpKind.BARRIER)
    # 64 loads and 4 stores per transaction, plus the 8-line warm-up.
    assert loads == 32 * 64 + 8
    assert stores == 32 * 4
    # One barrier per 8 transactions plus the post-setup barrier; no
    # shared-statistics barriers.
    assert barriers == 32 // 8 + 1


def test_hotset_accesses_stay_in_hot_set():
    bench = make_benchmark("hotset", thread_id=0, seed=3)
    ops = list(bench.ops(20))
    lines = {op.addr & ~63 for op in ops
             if op.kind in (OpKind.LOAD, OpKind.STORE)}
    assert len(lines) == 8
    store_lines = {op.addr & ~63 for op in ops if op.kind is OpKind.STORE}
    assert len(store_lines) == 4
    assert store_lines < lines


def test_hotset_store_subset_validated():
    with pytest.raises(ValueError):
        make_benchmark("hotset", hot_lines=4, store_lines=8)


def test_hotset_is_hit_dominated_on_machine():
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_IDT,
        persistency=PersistencyModel.BEP,
        num_cores=1,
    )
    m = Multicore(config)
    programs = [make_benchmark("hotset", thread_id=0, seed=2,
                               line_size=config.line_size).ops(40)]
    result = m.run(programs)
    assert result.finished
    l1 = m.stats.domain("l1.0")
    # The working set is 8 lines: after the warm-up fills, everything
    # hits.  This is the property that makes hotset the headline
    # single-run benchmark.
    assert l1.get("fills") <= 8
    assert l1.get("hits") >= 100 * l1.get("fills")
    m.audit()
