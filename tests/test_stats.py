"""Tests for the statistics registry."""

import pytest

from repro.sim.stats import StatDomain, Stats, arithmetic_mean, geometric_mean


def test_counter_bump_and_get():
    dom = StatDomain("x")
    dom.bump("hits")
    dom.bump("hits", 4)
    assert dom.get("hits") == 5
    assert dom.get("misses") == 0


def test_record_accumulates_mean_total_max():
    dom = StatDomain("x")
    for v in (10, 20, 60):
        dom.record("lat", v)
    assert dom.mean("lat") == 30
    assert dom.total("lat") == 90
    assert dom.count("lat") == 3
    assert dom.maximum("lat") == 60


def test_mean_of_unrecorded_key_is_zero():
    dom = StatDomain("x")
    assert dom.mean("nothing") == 0.0


def test_stats_domain_registry_reuses_instances():
    stats = Stats()
    a = stats.domain("core0")
    b = stats.domain("core0")
    assert a is b


def test_stats_total_sums_across_domains():
    stats = Stats()
    stats.domain("core0").bump("txns", 3)
    stats.domain("core1").bump("txns", 4)
    assert stats.total("txns") == 7


def test_flatten_namespaces_keys():
    stats = Stats()
    stats.domain("llc").bump("hits", 2)
    stats.domain("llc").record("wait", 10)
    flat = stats.flatten()
    assert flat["llc.hits"] == 2
    assert flat["llc.wait.mean"] == 10


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_arithmetic_mean():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        arithmetic_mean([])
