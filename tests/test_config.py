"""Tests for machine configuration and derived geometry."""

import pytest

from repro.sim.config import (
    BarrierDesign,
    FlushMode,
    MachineConfig,
    PersistencyModel,
)


def test_paper_config_matches_table1():
    config = MachineConfig.paper()
    assert config.num_cores == 32
    assert config.write_buffer_entries == 32
    assert config.l1_size == 32 * 1024
    assert config.l1_assoc == 4
    assert config.l1_latency == 3
    assert config.llc_bank_size == 1024 * 1024
    assert config.llc_banks == 32
    assert config.llc_assoc == 16
    assert config.llc_latency == 30
    assert config.num_memory_controllers == 4
    assert config.nvram_read_latency == 240
    assert config.nvram_write_latency == 360
    assert config.mesh_rows == 4
    assert config.line_size == 64
    assert config.max_inflight_epochs == 8   # 3-bit epoch IDs
    assert config.idt_registers_per_epoch == 4


def test_derived_cache_geometry():
    config = MachineConfig.paper()
    # 32KB / (64B * 4 ways) = 128 sets
    assert config.l1_sets == 128
    # 1MB / (64B * 16 ways) = 1024 sets
    assert config.llc_bank_sets == 1024
    assert config.offset_bits == 6


def test_line_of_alignment():
    config = MachineConfig.tiny()
    assert config.line_of(0) == 0
    assert config.line_of(63) == 0
    assert config.line_of(64) == 64
    assert config.line_of(0x12345) == 0x12340


def test_lines_in_spanning_access():
    config = MachineConfig.tiny()
    assert config.lines_in(0, 8) == [0]
    assert config.lines_in(60, 8) == [0, 64]
    assert config.lines_in(0, 512) == [i * 64 for i in range(8)]


def test_with_override():
    config = MachineConfig.small()
    other = config.with_(num_cores=4)
    assert other.num_cores == 4
    assert config.num_cores == 8  # original untouched


@pytest.mark.parametrize("field,value", [
    ("num_cores", 0),
    ("line_size", 48),
    ("llc_banks", 0),
    ("num_memory_controllers", 0),
    ("mesh_rows", 0),
    ("max_inflight_epochs", 1),
])
def test_invalid_configs_rejected(field, value):
    with pytest.raises(ValueError):
        MachineConfig.tiny(**{field: value})


def test_barrier_design_feature_flags():
    assert not BarrierDesign.LB.uses_idt
    assert not BarrierDesign.LB.uses_pf
    assert BarrierDesign.LB_IDT.uses_idt
    assert not BarrierDesign.LB_IDT.uses_pf
    assert not BarrierDesign.LB_PF.uses_idt
    assert BarrierDesign.LB_PF.uses_pf
    assert BarrierDesign.LB_PP.uses_idt
    assert BarrierDesign.LB_PP.uses_pf


def test_persistency_model_flags():
    assert PersistencyModel.BEP.buffered
    assert PersistencyModel.BSP.buffered
    assert not PersistencyModel.EP.buffered
    assert PersistencyModel.BSP.hardware_epochs
    assert PersistencyModel.BSP_WT.hardware_epochs
    assert not PersistencyModel.BEP.hardware_epochs


def test_flush_modes_distinct():
    assert FlushMode.CLWB.value != FlushMode.CLFLUSH.value
