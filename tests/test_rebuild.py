"""Tests for recovery execution (rollback + reconstruction)."""

import pytest

from repro.recovery import (
    ConsistencyViolation,
    recover_bsp,
    recover_queue,
    run_with_crash,
)
from repro.recovery.crash import CrashOutcome, EpochRecord
from repro.mem.nvram import NVRAMImage, PersistRecord
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.apps import app_programs
from repro.workloads.micro import QueueWorkload


def bsp_machine(**overrides):
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BSP,
        bsp_epoch_stores=overrides.pop("bsp_epoch_stores", 40),
        **overrides,
    )
    return Multicore(config, track_values=True, track_persist_order=True,
                     keep_epoch_log=True)


# ----------------------------------------------------------------------
# End-to-end: crash a BSP run and recover
# ----------------------------------------------------------------------
@pytest.mark.parametrize("crash_cycle", [5_000, 25_000, 70_000])
def test_recovered_state_has_no_torn_epochs(crash_cycle):
    m = bsp_machine()
    outcome = run_with_crash(
        m, app_programs("intruder", 2, 800, seed=9), crash_cycle
    )
    state = recover_bsp(outcome)
    # After rollback, every surviving epoch's lines carry values and no
    # rolled-back epoch's value remains visible.
    for key in state.rolled_back:
        record = outcome.epochs[key]
        assert not record.persisted
    for core_id, seq in state.survivor_epoch.items():
        assert (core_id, seq) not in state.rolled_back


def test_rollback_restores_pre_epoch_values():
    """Hand-built scenario: epoch 1 tore; its line must read the value
    epoch 0 wrote after recovery."""
    image = NVRAMImage(track_order=True)
    line = 0x1000
    log_line = 0xF000_0000
    history = [
        PersistRecord(0, 10, line, 0, 0, "data"),
        PersistRecord(1, 15, log_line, 0, 1, "log"),
        PersistRecord(2, 20, line, 0, 1, "data"),
    ]
    image.history = history
    for r in history:
        image.last_persist[r.line] = r
    image.values = {line: {0: "epoch1-value"}}
    image.log_entries = {log_line: (line, {0: "epoch0-value"})}
    epochs = {
        (0, 0): EpochRecord(0, 0, frozenset({line}), frozenset(), True),
        (0, 1): EpochRecord(0, 1, frozenset({line, 0x2000}),
                            frozenset(), False),  # 0x2000 never persisted
    }
    outcome = CrashOutcome(100, image, epochs)
    state = recover_bsp(outcome)
    assert (0, 1) in state.rolled_back
    assert state.values[line] == {0: "epoch0-value"}
    assert state.read(line) == "epoch0-value"
    assert state.survivor_epoch[0] == 0


def test_rollback_cascades_to_dependents():
    """An epoch whose IDT source tore must be rolled back too, even if
    it persisted completely."""
    image = NVRAMImage(track_order=True)
    lineA, lineB = 0x1000, 0x2000
    logA, logB = 0xF000_0000, 0xF000_0040
    history = [
        PersistRecord(0, 5, logA, 0, 0, "log"),
        PersistRecord(1, 10, lineA, 0, 0, "data"),
        PersistRecord(2, 15, logB, 1, 0, "log"),
        PersistRecord(3, 20, lineB, 1, 0, "data"),
    ]
    image.history = history
    for r in history:
        image.last_persist[r.line] = r
    image.values = {lineA: {0: "new-A"}, lineB: {0: "new-B"}}
    image.log_entries = {
        logA: (lineA, {0: "old-A"}),
        logB: (lineB, {0: "old-B"}),
    }
    epochs = {
        # Epoch (0,0) tore (one line never persisted).
        (0, 0): EpochRecord(0, 0, frozenset({lineA, 0x3000}),
                            frozenset(), False),
        # Epoch (1,0) fully persisted but depends on (0,0).
        (1, 0): EpochRecord(1, 0, frozenset({lineB}),
                            frozenset({(0, 0)}), False),
    }
    outcome = CrashOutcome(100, image, epochs)
    state = recover_bsp(outcome)
    assert (0, 0) in state.rolled_back
    assert (1, 0) in state.rolled_back
    assert state.values[lineA] == {0: "old-A"}
    assert state.values[lineB] == {0: "old-B"}


def test_rollback_without_log_entry_fails():
    image = NVRAMImage(track_order=True)
    line = 0x1000
    history = [PersistRecord(0, 10, line, 0, 0, "data")]
    image.history = history
    image.last_persist[line] = history[0]
    image.values = {line: {0: "torn"}}
    epochs = {
        (0, 0): EpochRecord(0, 0, frozenset({line, 0x2000}),
                            frozenset(), False),
    }
    with pytest.raises(ConsistencyViolation):
        recover_bsp(CrashOutcome(100, image, epochs))


def test_recover_bsp_requires_order_tracking():
    image = NVRAMImage(track_order=False)
    with pytest.raises(ValueError):
        recover_bsp(CrashOutcome(0, image, {}))


# ----------------------------------------------------------------------
# Queue reconstruction
# ----------------------------------------------------------------------
def queue_machine():
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    return Multicore(config, track_values=True, track_persist_order=True,
                     keep_epoch_log=True)


@pytest.mark.parametrize("crash_cycle", [3_000, 20_000, 90_000])
def test_recovered_queue_entries_are_contiguous_and_intact(crash_cycle):
    m = queue_machine()
    queue = QueueWorkload(thread_id=0, seed=21)
    outcome = run_with_crash(m, [queue.ops(70)], crash_cycle)
    recovered = recover_queue(outcome, queue)
    assert recovered.length == len(recovered.entries)
    for token in recovered.entries:
        assert token[0] == "entry"
    # Sequence numbers between tail and head are contiguous.
    seqs = [token[2] for token in recovered.entries]
    assert seqs == list(range(recovered.tail, recovered.head))


def test_recovered_queue_never_exceeds_shadow_state():
    """Recovery can lag execution (buffered persists) but never run
    ahead of it."""
    m = queue_machine()
    queue = QueueWorkload(thread_id=0, seed=22)
    outcome = run_with_crash(m, [queue.ops(60)], 50_000)
    recovered = recover_queue(outcome, queue)
    assert recovered.head <= queue._inserted
    assert recovered.tail <= queue._tail
