"""Tests for the parallel sweep executor and the result cache."""

import json

import pytest

from repro.harness.cache import ResultCache, spec_key
from repro.harness.executor import RunSpec, RunSummary, execute, run_specs
from repro.harness.runner import Scale
from repro.sim.config import BarrierDesign, FlushMode, PersistencyModel


def _bep_specs(transactions=8):
    return [
        RunSpec.bep("queue", design, Scale.TINY, seed=1,
                    transactions=transactions)
        for design in (BarrierDesign.LB, BarrierDesign.LB_PP)
    ] + [
        RunSpec.bep("sps", BarrierDesign.LB, Scale.TINY, seed=2,
                    transactions=transactions),
    ]


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
def test_spec_is_hashable_and_order_insensitive_overrides():
    a = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                    l1_latency=4, llc_latency=20)
    b = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                    llc_latency=20, l1_latency=4)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_spec_resolves_overrides_into_config():
    spec = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY, l1_latency=7)
    config = spec.resolved_config()
    assert config.l1_latency == 7
    assert config.barrier_design is BarrierDesign.LB
    assert config.persistency is PersistencyModel.BEP


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        RunSpec(kind="nope", workload="queue", design=BarrierDesign.LB,
                scale=Scale.TINY)


def test_workload_params_resolve_scale_defaults():
    spec = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY)
    assert spec.workload_params()["transactions"] == 40  # tiny default
    spec = RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY)
    assert spec.workload_params()["mem_ops"] == 4000


# ----------------------------------------------------------------------
# RunSummary
# ----------------------------------------------------------------------
def test_summary_json_roundtrip_is_lossless():
    spec = RunSpec.bep("queue", BarrierDesign.LB_PP, Scale.TINY,
                       transactions=8)
    summary = execute(spec)
    clone = RunSummary.from_dict(
        json.loads(json.dumps(summary.to_dict()))
    )
    assert clone == summary
    assert clone.throughput == summary.throughput
    assert clone.conflict_epoch_pct == summary.conflict_epoch_pct


def test_summary_metrics_match_run_result():
    from repro.harness.runner import run_bep
    spec = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                       transactions=8)
    summary = execute(spec)
    result = run_bep("queue", BarrierDesign.LB, scale=Scale.TINY, seed=1,
                     transactions=8)
    assert summary.throughput == result.throughput
    assert summary.conflict_epoch_pct == result.conflict_epoch_pct
    assert summary.cycles_durable == result.cycles_durable
    assert summary.inter_conflicts == result.inter_conflicts


# ----------------------------------------------------------------------
# Executor: determinism and ordering (tier-1 parallel sweep smoke test)
# ----------------------------------------------------------------------
@pytest.mark.sweep_smoke
def test_parallel_executor_matches_serial_bit_for_bit():
    specs = _bep_specs()
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    assert serial == parallel  # dataclass equality over all-int fields
    # Results come back in spec order regardless of completion order.
    assert [s.workload for s in parallel] == [s.workload for s in specs]
    assert [s.design for s in parallel] == [s.design.value for s in specs]


@pytest.mark.sweep_smoke
def test_parallel_bsp_matches_serial():
    specs = [
        RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY, seed=1,
                    epoch_stores=30, mem_ops=400),
        RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY, seed=1,
                    model=PersistencyModel.NP, mem_ops=400),
    ]
    assert run_specs(specs, jobs=1) == run_specs(specs, jobs=2)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_cache_hit_returns_identical_summary(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _bep_specs()
    cold = run_specs(specs, jobs=1, cache=cache)
    assert cache.hits == 0 and cache.misses == len(specs)
    assert len(cache) == len(specs)
    warm = run_specs(specs, jobs=1, cache=cache)
    assert warm == cold
    assert cache.hits == len(specs)


def test_cache_hit_preserves_figures(tmp_path):
    from repro.harness.experiments import fig11
    cache = ResultCache(tmp_path)
    cold = fig11(Scale.TINY, transactions=8, jobs=1, cache=cache)
    hits_before = cache.hits
    warm = fig11(Scale.TINY, transactions=8, jobs=1, cache=cache)
    assert warm.as_dict() == cold.as_dict()
    assert cache.hits == hits_before + len(cache)


def test_refresh_recomputes_and_rewrites(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _bep_specs()[:1]
    first = run_specs(specs, jobs=1, cache=cache)
    refreshed = run_specs(specs, jobs=1, cache=cache, refresh=True)
    assert refreshed == first
    assert cache.hits == 0  # refresh never reads


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _bep_specs()[0]
    path = cache.put(spec, execute(spec))
    path.write_text("{ truncated", encoding="utf-8")
    assert cache.get(spec) is None
    assert cache.misses == 1


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    run_specs(_bep_specs()[:1], jobs=1, cache=cache)
    assert len(cache) == 1
    # clear drops the result entry and its wall-clock cost record
    assert cache.clear() == 2
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def test_key_changes_with_config_field_seed_and_version():
    base = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY)
    keys = {
        spec_key(base),
        spec_key(RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                             l1_latency=4)),            # config override
        spec_key(RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                             seed=2)),                   # seed
        spec_key(RunSpec.bep("queue", BarrierDesign.LB_PP, Scale.TINY)),
        spec_key(RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY,
                             transactions=7)),           # run length
        spec_key(RunSpec.bep("sps", BarrierDesign.LB, Scale.TINY)),
        spec_key(base, versions={"engine": 999}),        # subsystem bump
    }
    assert len(keys) == 7


def test_key_is_stable_for_equal_specs():
    a = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY, l1_latency=4)
    b = RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY, l1_latency=4)
    assert spec_key(a) == spec_key(b)
    # An overlay that restates the current versions is a no-op.
    from repro.harness.cache import SUBSYSTEM_VERSIONS
    assert spec_key(a, versions=dict(SUBSYSTEM_VERSIONS)) == spec_key(a)


def test_bsp_key_distinguishes_epoch_stores_and_logging():
    base = RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY)
    keys = {
        spec_key(base),
        spec_key(RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY,
                             epoch_stores=30)),
        spec_key(RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY,
                             undo_logging=False)),
        spec_key(RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY,
                             model=PersistencyModel.NP)),
        spec_key(RunSpec.bsp("radix", BarrierDesign.LB, Scale.TINY,
                             mem_ops=123)),
    }
    assert len(keys) == 5


def test_flush_mode_reaches_key():
    clwb = RunSpec.bep("queue", BarrierDesign.LB_PP, Scale.TINY)
    clflush = RunSpec.bep("queue", BarrierDesign.LB_PP, Scale.TINY,
                          flush_mode=FlushMode.CLFLUSH)
    assert spec_key(clwb) != spec_key(clflush)
