"""Hierarchical fanout, handshake message accounting, and the
scaling-sweep plumbing.

The 64-core scale-out work has three seams worth pinning:

* the tree fanout (``FanoutTopology.TREE``) must degenerate to the flat
  star at ``llc_banks <= fanout_degree`` -- identical schedules, hence
  identical digests -- and obey its latency-model invariants at scale;
* the per-flush message accounting must be exact: a pinned count for a
  hand-built single-line epoch on 8 banks, the quadratic all-to-all
  contrast, and fast-vs-reference parity (the counters are
  digest-invisible, so the digest alone cannot catch a miscount);
* the engine's batched fanout APIs (``schedule_fanout`` /
  ``schedule_fanout_groups``) must deliver reference-identical
  orderings -- every production broadcast leg is virtual now, so these
  tests are the APIs' exercisers;
* the ``--cores`` CLI validation must reject non-powers-of-two with a
  usable message.
"""

import argparse
import types

import pytest

from repro.core.flush import _ACKED
from repro.harness.bench import (
    _multicore_setup,
    handshake_parity,
    parse_cores,
    reference_mode,
)
from repro.sim.config import (
    BarrierDesign,
    FanoutTopology,
    HandshakeProtocol,
    MachineConfig,
    PersistencyModel,
)
from repro.sim.digest import run_digest
from repro.sim.engine import Engine
from repro.system import Multicore
from repro.workloads.base import Program


def make_machine(num_cores=1, **overrides):
    config = MachineConfig.tiny(
        num_cores=num_cores,
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
        **overrides,
    )
    return Multicore(config, track_persist_order=True)


# ----------------------------------------------------------------------
# Tree fanout
# ----------------------------------------------------------------------
def test_tree_degenerates_to_flat_at_4_cores():
    """At ``llc_banks <= fanout_degree`` (4 <= 4) every bank is a root
    child, so tree and flat mode produce the same delivery offsets and
    therefore identical (time, priority, seq) event orderings -- checked
    end to end via the digest of a contended run."""
    digests = {}
    for topo in (FanoutTopology.FLAT, FanoutTopology.TREE):
        config, programs = _multicore_setup(seed=3, transactions=12)
        config = config.with_(fanout_topology=topo)
        digests[topo] = run_digest(config, programs)
    assert digests[FanoutTopology.FLAT] == digests[FanoutTopology.TREE]


def test_flush_tree_invariants_at_64_banks():
    config = MachineConfig.tiny(num_cores=64, llc_banks=64, mesh_rows=4)
    mesh = Multicore(config).mesh
    for core in (0, 17, 63):
        tree = mesh.flush_tree(core)
        row = mesh.c2b[core]
        # Full coverage: the order is a permutation of the banks.
        assert sorted(tree.order) == list(range(64))
        # A routed delivery can never beat the direct mesh distance
        # (triangle inequality of the hop metric), and root children
        # pay exactly the direct distance.
        for bank in range(64):
            assert tree.delivery[bank] >= row[bank]
        for bank in tree.order[:config.fanout_degree]:
            assert tree.delivery[bank] == row[bank]
        assert tree.bcast == max(tree.delivery)
        # Deeper positions hang off earlier ones: parent delivered
        # before child.
        for pos, bank in enumerate(tree.order):
            if pos >= config.fanout_degree:
                parent = tree.order[pos // config.fanout_degree - 1]
                assert tree.delivery[bank] > tree.delivery[parent]


def test_small_tree_equals_direct_row():
    config = MachineConfig.tiny(num_cores=4, llc_banks=4, mesh_rows=2)
    mesh = Multicore(config).mesh
    tree = mesh.flush_tree(2)
    assert tuple(tree.delivery) == tuple(mesh.c2b[2])


def test_tree_fanout_digest_matches_reference_at_16_cores():
    """Above the degree the tree genuinely reroutes (different arrival
    times than flat); both engine modes must still agree on it."""
    config, programs = _multicore_setup(seed=3, transactions=8,
                                        num_cores=16)
    config = config.with_(fanout_topology=FanoutTopology.TREE)
    fast = run_digest(config, programs)
    with reference_mode():
        ref = run_digest(config, programs)
    assert fast == ref


def test_double_ack_still_raises_under_tree_fanout():
    """The single-BankAck-per-bank invariant survives the tree rework."""
    m = make_machine(num_cores=4, llc_banks=4, mesh_rows=2,
                     fanout_topology=FanoutTopology.TREE)
    op = m.arbiters[0]._flush_op
    op._epoch = types.SimpleNamespace(core_id=0)
    op._bank_state[0] = _ACKED
    with pytest.raises(RuntimeError, match="second BankAck"):
        op._bank_ack(0)


# ----------------------------------------------------------------------
# Message accounting
# ----------------------------------------------------------------------
def _single_line_flush(protocol: HandshakeProtocol):
    """8-core / 8-bank machine; core 0 flushes exactly one line."""
    m = make_machine(num_cores=8, llc_banks=8, mesh_rows=2,
                     handshake_protocol=protocol)
    programs = [Program() for _ in range(8)]
    programs[0].store(0x1000, 8).barrier()
    m.run(programs)
    return m.handshake_counters()


def test_pinned_messages_per_flush_8_cores():
    """The hand-built epoch: one dirty line, eight banks, arbiter
    protocol.  Figure 8 costs exactly: 8 FlushEpoch legs, 8 BankAcks
    (7 degenerate + 1 data-bearing), 1 PersistAck for the line, and 8
    PersistCMP legs -- 25 messages."""
    hs = _single_line_flush(HandshakeProtocol.ARBITER)
    assert hs["flushes"] == 1
    assert hs["flush_epoch_msgs"] == 8
    assert hs["bank_ack_msgs"] == 8
    assert hs["persist_ack_msgs"] == 1
    assert hs["persist_cmp_msgs"] == 8
    assert hs["total_msgs"] == 25
    assert hs["last_flush_msgs"] == 25
    assert hs["max_flush_msgs"] == 25
    assert hs["mean_flush_msgs"] == 25.0


def test_all_to_all_accounting_is_quadratic():
    """Same epoch under the strawman protocol: every one of the 8 acks
    is announced to all 8 participants (n^2 = 64 messages) and there is
    no PersistCMP broadcast.  8 + 64 + 1 = 73."""
    hs = _single_line_flush(HandshakeProtocol.ALL_TO_ALL)
    n = 8
    assert hs["flushes"] == 1
    assert hs["flush_epoch_msgs"] == n
    assert hs["bank_ack_msgs"] == n * n
    assert hs["persist_cmp_msgs"] == 0
    assert hs["persist_ack_msgs"] == 1
    assert hs["total_msgs"] == n + n * n + 1


def test_all_to_all_timing_identical_to_arbiter():
    """The protocol knob is accounting-only: completion is known the
    cycle the last ack lands either way, so the digests must agree."""
    config, programs = _multicore_setup(seed=3, transactions=10)
    base = run_digest(config, programs)
    a2a = run_digest(
        config.with_(handshake_protocol=HandshakeProtocol.ALL_TO_ALL),
        programs,
    )
    assert base == a2a


def test_handshake_counters_match_reference_at_16_cores():
    """The explicit counter-parity check the bench runs at 64 cores,
    here at a unit-test-sized 16."""
    config, programs = _multicore_setup(seed=3, transactions=8,
                                        num_cores=16)
    parity = handshake_parity(config, programs)
    assert parity["digest_match"]
    assert parity["counters_match"]
    assert parity["counters"]["flushes"] > 0


def test_scaling_table_renders_per_core_rows():
    """The report helper turns a scaling record into one row per core
    count with no summary row (means across a scaling curve would be
    meaningless)."""
    from repro.harness.report import scaling_table

    def point(msgs, ops):
        return {"handshake": {"mean_flush_msgs": msgs}, "ops_per_sec": ops}

    record = {
        "cores": [4, 8],
        "pingpong": {"LB++": {"4": point(19.6, 100.0),
                              "8": point(31.7, 90.0)}},
        "sharded_serving": {"LB++": {"4": point(20.2, 80.0),
                                     "8": point(31.9, 70.0)}},
        "all_to_all": {"LB++": {"4": point(27.6, 100.0),
                                "8": point(79.7, 90.0)}},
    }
    table = scaling_table(record)
    assert table.summary_row() is None
    data = table.as_dict()
    assert data["8 cores"]["all-to-all"] == 79.7
    assert data["4 cores"]["arbiter"] == 19.6
    text = table.render(precision=1)
    assert "4 cores" in text and "8 cores" in text


# ----------------------------------------------------------------------
# Engine fanout APIs: reference-identical orderings
# ----------------------------------------------------------------------
def _fanout_groups_trace(slow: bool):
    with reference_mode(slow):
        engine = Engine()
    trace = []

    def deliver(item):
        trace.append(("deliver", engine.now, item))

    def tick(label):
        trace.append(("tick", engine.now, label))

    # A broadcast spread over three latency rings, interleaved with
    # ordinary events at the same cycles -- the ordering-sensitive
    # shape: foreign events must never land between two items of one
    # group, and group keys must sort exactly like their first item.
    engine.schedule_call(1, tick, "before")
    engine.schedule_fanout_groups(
        [(1, ["a", "b"]), (3, ["c"]), (5, ["d", "e", "f"])], deliver
    )
    engine.schedule_call(1, tick, "after")
    engine.schedule_call(3, tick, "mid")
    engine.schedule_call(5, tick, "late")
    engine.schedule_fanout(5, deliver, ["g", "h"])
    engine.run()
    return trace


def test_fanout_groups_order_matches_reference_engine():
    assert _fanout_groups_trace(False) == _fanout_groups_trace(True)


def test_fanout_groups_rejects_descending_delays():
    for slow in (False, True):
        with reference_mode(slow):
            engine = Engine()
        with pytest.raises(ValueError, match="ascend"):
            engine.schedule_fanout_groups(
                [(5, ["a"]), (1, ["b"])], lambda item: None
            )


# ----------------------------------------------------------------------
# --only plumbing: restricted runs must not wipe other families
# ----------------------------------------------------------------------
def test_only_scaling_carries_other_families_forward(tmp_path):
    import json

    from repro.harness.bench import run_bench

    out = tmp_path / "BENCH_sweep.json"
    old_single = {
        "benchmark": "hotset",
        "transactions": 5,
        "ops_per_sec": {"fast": 123.0, "reference": 61.5},
        "speedup": 2.0,
        "digest_match": True,
    }
    out.write_text(json.dumps({
        "machine": {"cpu_count": 1},
        "single_run": old_single,
        "trajectory": [],
    }))
    record = run_bench(seed=1, output=str(out), sweep=False, million=False,
                       only="scaling", cores=(4,))
    data = json.loads(out.read_text())
    # The scaling family was generated...
    assert data["scaling"]["parity"]["digest_match"]
    assert data["scaling"]["parity"]["counters_match"]
    assert record["scaling"]["cores"] == [4]
    # ...and the pre-existing family survived, value for value.
    assert data["single_run"] == old_single
    # The old file's headline entered the trajectory.
    assert any("single_run" in e for e in data["trajectory"])


def test_retain_trajectory_keeps_old_families():
    """A newly introduced family must not age established families out:
    retention is per family, not a global tail slice."""
    from repro.harness.bench import _retain_trajectory

    old = [{"single_run": {"n": i}} for i in range(5)]
    new = [{"single_run": {"n": 100 + i}, "scaling": {"n": i}}
           for i in range(30)]
    kept = _retain_trajectory(old + new, keep=20)
    # The 5 old entries are still among the newest 20 that mention
    # single_run?  No -- 30 newer ones mention it too, so they age out
    # by the per-family rule; but entries are never dropped merely
    # because a *new* family appeared.  Pin both directions:
    assert [e for e in kept if "scaling" not in e] == old[:0]  # aged out
    only_old_family = [{"million_run": {"n": i}} for i in range(3)]
    kept = _retain_trajectory(only_old_family + new, keep=20)
    # million_run entries are the newest (only) 3 of their family and
    # survive even though 30 newer combined entries follow.
    assert [e for e in kept if "million_run" in e] == only_old_family


# ----------------------------------------------------------------------
# --cores validation
# ----------------------------------------------------------------------
def test_parse_cores_accepts_powers_of_two():
    assert parse_cores("4,8,16,32,64") == (4, 8, 16, 32, 64)
    assert parse_cores("16") == (16,)
    # Normalised: sorted, deduplicated.
    assert parse_cores("32,4,4") == (4, 32)


@pytest.mark.parametrize("bad", ["3", "0", "128", "4,12", "-8", "four", ""])
def test_parse_cores_rejects_bad_values(bad):
    with pytest.raises(argparse.ArgumentTypeError,
                       match="powers of two|comma-separated"):
        parse_cores(bad)
