"""Tests for inter-thread dependence tracking (IDT registers)."""

import pytest

from repro.core.epoch import EpochManager
from repro.core.idt import IDTracker
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain


def make_world(registers=4):
    engine = Engine()
    managers = [
        EpochManager(core, engine, StatDomain(f"core{core}"), 8)
        for core in range(4)
    ]
    tracker = IDTracker(registers, StatDomain("idt"))
    return managers, tracker


def new_epoch(mgr):
    epoch = mgr.tag_store()
    mgr.store_drained(epoch)
    mgr.close_current()
    return epoch


def test_edge_recorded_both_sides():
    managers, tracker = make_world()
    src = new_epoch(managers[0])
    dep = managers[1].current_or_new()
    assert tracker.try_record(src, dep)
    assert src in dep.idt_sources
    assert dep in src.idt_dependents
    assert (0, src.seq) in dep.all_sources


def test_duplicate_edge_is_free():
    managers, tracker = make_world(registers=1)
    src = new_epoch(managers[0])
    dep = managers[1].current_or_new()
    assert tracker.try_record(src, dep)
    assert tracker.try_record(src, dep)
    assert len(dep.idt_sources) == 1


def test_persisted_source_needs_no_edge():
    managers, tracker = make_world()
    src = new_epoch(managers[0])
    managers[0].mark_persisted(src)
    dep = managers[1].current_or_new()
    assert tracker.try_record(src, dep)
    assert dep.idt_sources == set()


def test_same_core_edge_rejected():
    managers, tracker = make_world()
    src = new_epoch(managers[0])
    dep = managers[0].current_or_new()
    with pytest.raises(ValueError):
        tracker.try_record(src, dep)


def test_newer_epoch_of_same_core_subsumes_older():
    managers, tracker = make_world()
    old = new_epoch(managers[0])
    newer = new_epoch(managers[0])
    dep = managers[1].current_or_new()
    assert tracker.try_record(newer, dep)
    # An edge to an older epoch of the same core is implied.
    assert tracker.try_record(old, dep)
    assert dep.idt_sources == {newer}


def test_older_edge_upgraded_in_place():
    managers, tracker = make_world(registers=1)
    old = new_epoch(managers[0])
    newer = new_epoch(managers[0])
    dep = managers[1].current_or_new()
    assert tracker.try_record(old, dep)
    # Upgrading must succeed even at the register limit: it frees the
    # old register.
    assert tracker.try_record(newer, dep)
    assert dep.idt_sources == {newer}
    assert dep not in old.idt_dependents


def test_dependence_register_overflow():
    managers, tracker = make_world(registers=2)
    dep = managers[3].current_or_new()
    sources = [new_epoch(managers[core]) for core in (0, 1, 2)]
    assert tracker.try_record(sources[0], dep)
    assert tracker.try_record(sources[1], dep)
    assert not tracker.try_record(sources[2], dep)  # registers full
    assert len(dep.idt_sources) == 2


def test_inform_register_overflow():
    managers, tracker = make_world(registers=2)
    src = new_epoch(managers[0])
    deps = [managers[core].current_or_new() for core in (1, 2, 3)]
    assert tracker.try_record(src, deps[0])
    assert tracker.try_record(src, deps[1])
    assert not tracker.try_record(src, deps[2])
    assert len(src.idt_dependents) == 2


def test_overflow_restores_superseded_edge():
    managers, tracker = make_world(registers=1)
    old = new_epoch(managers[0])
    newer = new_epoch(managers[0])
    dep = managers[1].current_or_new()
    # Fill the source's inform register with another dependent so the
    # upgrade attempt fails on the source side.
    other_dep = managers[2].current_or_new()
    assert tracker.try_record(old, dep)
    newer.idt_dependents.add(other_dep)
    assert not tracker.try_record(newer, dep)
    # The original (older) edge must still be intact.
    assert dep.idt_sources == {old}
    assert dep in old.idt_dependents


def test_register_count_validation():
    with pytest.raises(ValueError):
        IDTracker(0, StatDomain("idt"))


# ----------------------------------------------------------------------
# Deadlock avoidance (section 3.3): an edge wanted on a still-ongoing
# source must split the source first, so the dependence lands on a
# completed prefix and the graph stays acyclic.
# ----------------------------------------------------------------------
def test_edge_on_ongoing_source_lands_on_split_prefix():
    managers, tracker = make_world()
    src_mgr = managers[0]
    ongoing = src_mgr.tag_store()
    src_mgr.store_drained(ongoing)  # drained but never closed: ongoing
    assert ongoing.ongoing

    prefix = src_mgr.split_epoch(ongoing)
    assert prefix is ongoing
    assert prefix.complete  # the prefix is immediately completable

    dep = managers[1].current_or_new()
    assert tracker.try_record(prefix, dep)
    assert prefix in dep.idt_sources
    assert dep in prefix.idt_dependents

    remainder = src_mgr.current
    assert remainder is not None and remainder.ongoing
    assert remainder.split_from == prefix.seq
    src_mgr.audit()
    managers[1].audit()


def test_split_prefix_persists_while_remainder_runs():
    """The acyclicity payoff: the prefix carrying the IDT edge can
    persist (releasing the dependent) while the remainder epoch is
    still accumulating stores."""
    managers, tracker = make_world()
    src_mgr = managers[0]
    ongoing = src_mgr.tag_store()
    src_mgr.store_drained(ongoing)
    prefix = src_mgr.split_epoch(ongoing)

    dep = managers[1].current_or_new()
    assert tracker.try_record(prefix, dep)

    assert src_mgr.deps_persisted(prefix)  # window head, no sources
    src_mgr.mark_persisted(prefix)
    assert prefix.persisted
    assert dep.idt_sources == set()  # edge cleared on persist
    assert src_mgr.current is not None and src_mgr.current.ongoing
    src_mgr.audit()
