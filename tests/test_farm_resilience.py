"""Self-healing farm tests: worker death and hung specs heal through
pool respawn / timeout-quarantine without changing results, and torn
cache entries are detected, discarded, and recomputed."""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.executor import (
    FarmError,
    FarmHealth,
    RunSpec,
    execute,
    execute_resilient,
    execute_timed,
    run_specs,
)
from repro.harness import executor as executor_module
from repro.harness.runner import Scale
from repro.sim.config import BarrierDesign


def _specs():
    """One crashable/hangable queue spec plus two bystanders."""
    return [
        RunSpec.bep("queue", BarrierDesign.LB, Scale.TINY, seed=1,
                    transactions=6),
        RunSpec.bep("sps", BarrierDesign.LB, Scale.TINY, seed=2,
                    transactions=6),
        RunSpec.bep("sps", BarrierDesign.LB_PP, Scale.TINY, seed=3,
                    transactions=6),
    ]


def _clean_summaries(specs):
    return {index: execute(spec) for index, spec in enumerate(specs)}


# ----------------------------------------------------------------------
# Worker crash -> pool respawn, bit-identical results
# ----------------------------------------------------------------------
def test_crash_once_respawns_and_results_match_clean_run(
        monkeypatch, tmp_path):
    specs = _specs()
    sentinel = tmp_path / "crashed"
    monkeypatch.setenv("REPRO_FARM_FAULT", f"crash-once:queue:{sentinel}")
    health = FarmHealth()
    results = execute_resilient(
        dict(enumerate(specs)), jobs=2, force_pool=True, health=health)
    assert sentinel.exists()
    assert health.respawns >= 1
    assert not health.quarantined
    clean = _clean_summaries(specs)
    assert set(results) == set(clean)
    for index, (summary, _wall) in results.items():
        assert summary == clean[index]


def test_fault_hook_is_inert_outside_pool_workers(monkeypatch, tmp_path):
    # In the serial in-process path the hook must never fire: crashing
    # there would take the whole harness down with no pool to heal it.
    sentinel = tmp_path / "crashed"
    monkeypatch.setenv("REPRO_FARM_FAULT", f"crash-once:queue:{sentinel}")
    summary, wall = execute_timed(_specs()[0])
    assert summary.finished
    assert not sentinel.exists()


# ----------------------------------------------------------------------
# Hung spec -> timeout kill, quarantine, survivors complete
# ----------------------------------------------------------------------
def test_hung_spec_is_quarantined_and_survivors_complete(monkeypatch):
    specs = _specs()
    monkeypatch.setenv("REPRO_FARM_FAULT", "hang:queue")
    health = FarmHealth()
    results = execute_resilient(
        dict(enumerate(specs)), jobs=2, force_pool=True,
        timeout=1.0, health=health)
    assert health.timeouts >= 1
    assert len(health.quarantined) == 1
    assert "queue" in health.quarantined[0]
    assert not health.clean
    assert "quarantined" in health.describe()
    # The hanging spec is absent; the bystanders completed intact.
    assert set(results) == {1, 2}
    clean = _clean_summaries(specs)
    for index in (1, 2):
        assert results[index][0] == clean[index]


def test_run_specs_raises_farm_error_on_quarantine(monkeypatch):
    specs = _specs()
    monkeypatch.setenv("REPRO_FARM_FAULT", "hang:queue")
    monkeypatch.setattr(executor_module, "resolve_jobs", lambda jobs: 2)
    with pytest.raises(FarmError, match="quarantined"):
        run_specs(specs, jobs=2, timeout=1.0)


def test_run_specs_health_sink_reports_instead_of_raising(monkeypatch):
    specs = _specs()
    monkeypatch.setenv("REPRO_FARM_FAULT", "hang:queue")
    monkeypatch.setattr(executor_module, "resolve_jobs", lambda jobs: 2)
    health = FarmHealth()
    summaries = run_specs(specs, jobs=2, timeout=1.0, health=health)
    assert summaries[0] is None
    assert summaries[1] is not None and summaries[2] is not None
    assert len(health.quarantined) == 1


# ----------------------------------------------------------------------
# Torn cache entries: detected on read, healed by recompute
# ----------------------------------------------------------------------
def test_cache_put_embeds_payload_checksum(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _specs()[0]
    path = cache.put(spec, execute(spec))
    record = json.loads(path.read_text())
    assert "checksum" in record
    assert cache.verify_entry(path)


def test_tampered_cache_entry_is_discarded_and_recomputed(
        tmp_path, capsys):
    cache = ResultCache(tmp_path)
    spec = _specs()[0]
    summary = execute(spec)
    path = cache.put(spec, summary)
    record = json.loads(path.read_text())
    record["summary"]["nvram_writes"] += 1  # torn write to the payload
    path.write_text(json.dumps(record))
    assert not cache.verify_entry(path)

    assert cache.get(spec) is None
    assert cache.corrupt == 1
    assert not path.exists()
    assert "corrupt entry" in capsys.readouterr().err

    # The healed path: recompute and re-cache, reads work again.
    cache.put(spec, summary)
    assert cache.get(spec) == summary


def test_legacy_entry_without_checksum_still_reads(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _specs()[0]
    summary = execute(spec)
    path = cache.put(spec, summary)
    record = json.loads(path.read_text())
    del record["checksum"]
    path.write_text(json.dumps(record))
    assert cache.get(spec) == summary
    assert cache.corrupt == 0


def test_cache_stats_count_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _specs()[:2]
    paths = [cache.put(spec, execute(spec)) for spec in specs]
    record = json.loads(paths[0].read_text())
    record["summary"]["cycles_visible"] = 0
    paths[0].write_text(json.dumps(record))
    stats = cache.stats()
    assert stats["corrupt_entries"] == 1


def test_corrupted_entry_plus_rerun_yields_identical_summaries(tmp_path):
    # The acceptance scenario end-to-end in miniature: a sweep whose
    # cache holds a torn entry recomputes it and lands byte-identical
    # with a clean-cache sweep.
    specs = _specs()
    clean = run_specs(specs, jobs=1, cache=ResultCache(tmp_path / "a"))
    cache = ResultCache(tmp_path / "b")
    run_specs(specs, jobs=1, cache=cache)
    path = cache.put(specs[0], clean[0])
    record = json.loads(path.read_text())
    record["summary"]["transactions"] += 5
    path.write_text(json.dumps(record))
    healed = run_specs(specs, jobs=1, cache=cache)
    assert healed == clean
    assert cache.corrupt == 1
