"""Tests for the core model: write buffer, forwarding, barriers."""

from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.base import Program


def machine(**overrides):
    defaults = dict(
        barrier_design=BarrierDesign.LB_PP,
        persistency=PersistencyModel.BEP,
    )
    defaults.update(overrides)
    return Multicore(MachineConfig.tiny(**defaults))


def test_store_to_load_forwarding():
    m = machine()
    p = Program().store(0x1000, 8).load(0x1000)
    result = m.run([p])
    assert result.stats.domain("core0").get("wb_forwards") == 1


def test_no_forwarding_for_different_line():
    m = machine()
    p = Program().store(0x1000, 8).load(0x2000)
    result = m.run([p])
    assert result.stats.domain("core0").get("wb_forwards") == 0


def test_write_buffer_capacity_stalls_issue():
    m = machine(write_buffer_entries=4, nvram_read_latency=2000)
    p = Program()
    # A long-latency load at the head of the drain is impossible; instead
    # fill the buffer faster than the L1 can drain it.
    for i in range(64):
        p.store(0x1000 + i * 64, 8)
    result = m.run([p])
    assert result.stats.domain("core0").get("wb_full_stalls") > 0


def test_transactions_counted():
    m = machine()
    p = Program()
    for _ in range(5):
        p.store(0x1000, 8).txn_mark()
    result = m.run([p])
    assert result.transactions == 5


def test_compute_advances_time_without_memory_traffic():
    m = machine()
    p = Program().compute(12345)
    result = m.run([p])
    assert result.cycles_visible >= 12345
    assert result.stats.total("loads") == 0


def test_epoch_window_limit_stalls_stores():
    m = machine(max_inflight_epochs=2, nvram_write_latency=5000,
                mc_write_occupancy=500)
    p = Program()
    for i in range(8):
        p.store(0x1000 + i * 64, 8).barrier()
    result = m.run([p])
    assert result.stats.total("epoch_window_stalls") > 0
    assert result.finished


def test_consecutive_barriers_collapse():
    m = machine()
    p = Program().store(0x1000, 8).barrier().barrier().barrier()
    result = m.run([p])
    assert result.stats.total("epochs_persisted") == 1


def test_empty_program_finishes_immediately():
    m = machine()
    result = m.run([Program()])
    assert result.finished
    assert result.cycles_visible == 0


def test_programs_fewer_than_cores_allowed():
    m = machine(num_cores=2)
    result = m.run([Program().store(0x1000, 8)])
    assert result.finished


def test_too_many_programs_rejected():
    m = machine(num_cores=2)
    import pytest
    with pytest.raises(ValueError):
        m.run([Program(), Program(), Program()])


def test_machine_cannot_run_twice():
    m = machine()
    m.run([Program()])
    import pytest
    with pytest.raises(RuntimeError):
        m.run([Program()])


def test_stores_drain_in_fifo_order():
    m = machine()
    m2 = Multicore(m.config, track_persist_order=True)
    p = Program()
    for i in range(6):
        p.store(0x1000 + i * 64, 8).barrier()
    m2.run([p])
    data = [r.line for r in m2.image.history if r.kind == "data"]
    assert data == sorted(data)
