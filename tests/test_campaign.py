"""Campaign driver tests: triage verdicts, coordinate purity across
engines and core counts, the 1-minimizer, and the reorder-window
self-test that proves the oracle still catches unsound faults."""

import shlex

import pytest

from repro.harness.bench import reference_mode
from repro.recovery.campaign import (
    ABORTED_CLEAN,
    SURVIVED,
    VIOLATION,
    CampaignSpec,
    campaign_selftest,
    enumerate_points,
    minimize_inject,
    repro_command,
    run_baseline,
    run_campaign,
    triage,
)
from repro.sim.faults import FaultInjector


SPEC = CampaignSpec(workload="pingpong", num_cores=2, transactions=3,
                    mc_stride=4)


# ----------------------------------------------------------------------
# Exhaustive campaign + coordinate purity
# ----------------------------------------------------------------------
def exhaustive(spec, **kwargs):
    return run_campaign(spec, exhaustive=True, random_rounds=2, **kwargs)


def test_single_fault_campaign_survives_and_is_engine_pure():
    fast = exhaustive(SPEC)
    assert fast.ok
    assert not fast.violations
    assert fast.survived + fast.aborted == len(fast.entries)
    with reference_mode():
        ref = exhaustive(SPEC)
    assert fast.verdict_map() == ref.verdict_map()


def test_campaign_verdicts_pure_across_core_counts():
    spec4 = CampaignSpec(workload="pingpong", num_cores=4, transactions=3,
                         mc_stride=4)
    fast = exhaustive(spec4, max_points=60)
    assert fast.ok
    with reference_mode():
        ref = exhaustive(spec4, max_points=60)
    assert fast.verdict_map() == ref.verdict_map()


def test_queue_campaign_checks_bytes_and_survives():
    spec = CampaignSpec(workload="queue", transactions=3, mc_stride=8)
    report = run_campaign(spec, exhaustive=True, random_rounds=1,
                          max_points=40)
    assert report.ok
    assert all(entry.verdict == SURVIVED for entry in report.entries)


def test_campaign_max_points_caps_enumeration():
    report = run_campaign(SPEC, exhaustive=True, max_points=10)
    assert len(report.entries) == 10


# ----------------------------------------------------------------------
# Triage verdicts
# ----------------------------------------------------------------------
def test_triage_watchdog_abort_is_aborted_clean(monkeypatch):
    # A retry chain past the bound trips the ProtocolError watchdog;
    # the partial image must still pass the crash sweep -> aborted-clean.
    monkeypatch.setattr(FaultInjector, "flush_epoch_resends",
                        lambda self, *args: 99)
    baseline = run_baseline(SPEC)
    point = next(p for p in enumerate_points(SPEC, baseline)
                 if p.leg == "flush_epoch_drop")
    entry = triage(SPEC, ((point.leg, point.coords),), None)
    assert entry.verdict == ABORTED_CLEAN
    assert "ProtocolError" in entry.detail or "retry chain" in entry.detail


def test_selftest_reorder_window_is_flagged_with_repro():
    entry = campaign_selftest(SPEC)
    assert entry.verdict == VIOLATION
    assert "--reorder-window" in entry.repro
    assert "python -m repro campaign" in entry.repro


def test_selftest_verdict_matches_in_reference_mode():
    fast = campaign_selftest(SPEC)
    with reference_mode():
        ref = campaign_selftest(SPEC)
    assert fast.verdict == ref.verdict == VIOLATION


# ----------------------------------------------------------------------
# Repro command round trip
# ----------------------------------------------------------------------
def test_repro_command_round_trips_through_cli():
    from repro.__main__ import main

    entry = campaign_selftest(SPEC)
    argv = shlex.split(entry.repro)
    assert argv[:3] == ["python", "-m", "repro"]
    # The reproduced run must flag the same violation: exit 0 only
    # because we pass --expect-violation.
    assert main(argv[3:] + ["--expect-violation", "--quiet"]) == 0
    assert main(argv[3:] + ["--quiet"]) == 1


def test_targeted_repro_command_mentions_each_fault():
    inject = (("bank_ack_drop", (0, 1, 2)), ("mc_stall", (1, 8)))
    cmd = repro_command(SPEC, inject)
    assert "--inject bank_ack_drop:0,1,2" in cmd
    assert "--inject mc_stall:1,8" in cmd
    assert f"--cores {SPEC.num_cores}" in cmd


# ----------------------------------------------------------------------
# Minimizer
# ----------------------------------------------------------------------
def test_minimize_keeps_only_necessary_faults():
    inject = (("leg_a", (0,)), ("leg_b", (1,)), ("leg_c", (2,)))

    def still_fails(trial):
        return any(leg == "leg_b" for leg, _ in trial)

    assert minimize_inject(inject, still_fails) == (("leg_b", (1,)),)


def test_minimize_keeps_interacting_pair():
    inject = (("leg_a", (0,)), ("leg_b", (1,)), ("leg_c", (2,)))

    def still_fails(trial):
        legs = {leg for leg, _ in trial}
        return {"leg_a", "leg_c"} <= legs

    assert minimize_inject(inject, still_fails) == \
        (("leg_a", (0,)), ("leg_c", (2,)))


def test_minimize_single_fault_is_identity():
    inject = (("leg_a", (0,)),)
    assert minimize_inject(inject, lambda trial: True) == inject
