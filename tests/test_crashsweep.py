"""Tests for the exhaustive crash-point sweep (recovery/crashsweep.py).

Positive direction: one captured run of each representative workload is
consistent at *every* truncation point of its persist history, and the
incremental sweep's verdict matches the brute-force truncate-and-recheck
oracle exactly.  Negative direction: hand-mutated histories -- a line
reordered across epochs, a deleted IDT-source persist, a torn BSP epoch
stripped of its undo-log entries -- must each make the sweep raise.
"""

import pytest

from repro.mem.nvram import NVRAMImage
from repro.recovery import (
    ConsistencyViolation,
    capture_run,
    sweep_crash_points,
    sweep_reference,
    truncate_outcome,
)
from repro.recovery.crash import CrashOutcome
from repro.sim.config import BarrierDesign, MachineConfig, PersistencyModel
from repro.system import Multicore
from repro.workloads.micro import QueueWorkload, make_benchmark


def tracking_machine(config):
    return Multicore(config, track_values=True, track_persist_order=True,
                     keep_epoch_log=True)


def queue_outcome(model=PersistencyModel.BEP, transactions=10, seed=1,
                  **overrides):
    # capacity=32 keeps the setup phase (capacity // 4 inserts) short:
    # the truncate-and-recheck oracle's per-point predecessor walk is
    # cubic in the single-core epoch-chain length, and the bench already
    # times full-size runs.
    config = MachineConfig.tiny(
        barrier_design=BarrierDesign.LB_PP, persistency=model, **overrides
    )
    queue = QueueWorkload(thread_id=0, seed=seed, capacity=32)
    outcome = capture_run(
        tracking_machine(config), [queue.ops(transactions)]
    )
    return outcome, queue


def pingpong_outcome(design, transactions=6, seed=3):
    config = MachineConfig.tiny(
        persistency=PersistencyModel.BEP, barrier_design=design,
        num_cores=4, llc_banks=4, mesh_rows=2,
    )
    programs = [
        list(make_benchmark("pingpong", thread_id=tid, seed=seed,
                            line_size=config.line_size,
                            conflict_rate=1.0).ops(transactions))
        for tid in range(4)
    ]
    return capture_run(tracking_machine(config), programs)


def mutated(outcome, history, history_values, history_log=None):
    """An outcome over a hand-edited history (same epoch ground truth)."""
    image = NVRAMImage(track_order=True)
    image.history = history
    image.history_values = history_values
    image.history_log = history_log if history_log is not None else {}
    return CrashOutcome(crash_cycle=outcome.crash_cycle, image=image,
                        epochs=outcome.epochs)


# ----------------------------------------------------------------------
# Positive: every truncation point of a real run is accepted, and the
# incremental sweep agrees with the truncate-and-recheck oracle
# ----------------------------------------------------------------------
def test_sweep_accepts_every_queue_crash_point():
    outcome, queue = queue_outcome()
    report = sweep_crash_points(outcome, queues=[queue])
    assert report.ok
    assert report.points == report.history_len + 1
    assert report.data_persists > 0
    assert report.queue_checks > 0
    oracle = sweep_reference(outcome, queues=[queue], stride=1)
    assert report.merge_key() == oracle.merge_key()
    assert report.data_persists == oracle.data_persists


@pytest.mark.parametrize(
    "design", [BarrierDesign.LB, BarrierDesign.LB_PP]
)
def test_sweep_accepts_contended_pingpong(design):
    """The ROADMAP item: the 4-core pingpong's IDT edges and
    deadlock-avoidance splits survive a crash at *every* persist."""
    outcome = pingpong_outcome(design)
    report = sweep_crash_points(outcome)
    assert report.ok
    assert report.history_len > 100
    oracle = sweep_reference(outcome, stride=1)
    assert report.merge_key() == oracle.merge_key()
    assert report.data_persists == oracle.data_persists


def test_sweep_bsp_undo_coverage_all_points():
    outcome, _ = queue_outcome(model=PersistencyModel.BSP,
                               bsp_epoch_stores=30, transactions=8)
    report = sweep_crash_points(outcome, bsp=True)
    assert report.ok and report.bsp_checked
    assert any(r.kind == "log" for r in outcome.image.history)
    oracle = sweep_reference(outcome, bsp=True, stride=1)
    assert report.merge_key() == oracle.merge_key()


def test_sweep_requires_replay_payloads():
    outcome, _ = queue_outcome(transactions=2)
    bare = mutated(outcome, list(outcome.image.history), [])
    with pytest.raises(ValueError):
        sweep_crash_points(bare)


# ----------------------------------------------------------------------
# truncate_outcome: the oracle's image reconstruction is exact
# ----------------------------------------------------------------------
def test_truncate_at_endpoints_matches_live_image():
    outcome, _ = queue_outcome(model=PersistencyModel.BSP,
                               bsp_epoch_stores=30, transactions=6)
    full = truncate_outcome(outcome, len(outcome.image.history))
    assert full.image.values == outcome.image.values
    assert full.image.last_persist == outcome.image.last_persist
    assert full.image.log_entries == outcome.image.log_entries
    assert full.image.persist_count == outcome.image.persist_count
    empty = truncate_outcome(outcome, 0)
    assert not empty.image.values
    assert not empty.image.log_entries
    assert empty.crash_cycle == 0
    with pytest.raises(ValueError):
        truncate_outcome(outcome, len(outcome.image.history) + 1)


def test_epochs_of_core_indexed_once_and_sorted():
    outcome = pingpong_outcome(BarrierDesign.LB, transactions=3)
    for core_id in range(4):
        records = outcome.epochs_of_core(core_id)
        assert records == sorted(records, key=lambda r: r.seq)
        assert all(r.core_id == core_id for r in records)
        assert records is outcome.epochs_of_core(core_id)  # cached
    assert outcome.epochs_of_core(99) == []


# ----------------------------------------------------------------------
# Negative: hand-mutated histories are rejected
# ----------------------------------------------------------------------
def test_sweep_rejects_line_reordered_across_epochs():
    """Swap a later epoch's first persist before an earlier epoch of
    the same core completes: the Figure 7 violation."""
    outcome, queue = queue_outcome()
    history = list(outcome.image.history)
    values = list(outcome.image.history_values)
    by_key = {}
    for pos, record in enumerate(history):
        if record.kind == "data" and record.epoch_seq >= 0:
            by_key.setdefault((record.core_id, record.epoch_seq),
                              []).append(pos)
    swap = None
    for (core, seq), positions in sorted(by_key.items()):
        nxt = by_key.get((core, seq + 1))
        if len(positions) >= 2 and nxt:
            swap = (positions[0], nxt[0])
            break
    assert swap is not None, "no multi-line epoch followed by another"
    i, j = swap
    history[i], history[j] = history[j], history[i]
    values[i], values[j] = values[j], values[i]
    bad = mutated(outcome, history, values)
    with pytest.raises(ConsistencyViolation, match="persisted before"):
        sweep_crash_points(bad, queues=[queue])
    report = sweep_crash_points(bad, queues=[queue],
                                raise_on_violation=False)
    oracle = sweep_reference(bad, queues=[queue], stride=1,
                             raise_on_violation=False)
    assert not report.ok
    assert report.first_violation == i + 1
    assert report.merge_key() == oracle.merge_key()


def test_sweep_rejects_missing_idt_source_persists():
    """Delete every persist of an IDT source epoch: its dependents now
    persist before it, which must trip the cross-core edge check."""
    outcome = pingpong_outcome(BarrierDesign.LB_PP)
    victim = None
    for record in outcome.epochs.values():
        for source in record.source_keys:
            source_record = outcome.epochs.get(source)
            if source_record is not None and source_record.all_lines:
                victim = source
                break
        if victim:
            break
    assert victim is not None, "contended pingpong grew no IDT edges"
    history, values = [], []
    for pos, record in enumerate(outcome.image.history):
        if ((record.core_id, record.epoch_seq) == victim
                and record.kind in ("data", "eviction")):
            continue
        history.append(record)
        values.append(outcome.image.history_values[pos])
    bad = mutated(outcome, history, values)
    with pytest.raises(ConsistencyViolation, match="persisted before"):
        sweep_crash_points(bad)


def test_sweep_rejects_torn_bsp_epoch_without_undo_entries():
    """Strip the undo-log persists from a BSP history: the first
    partially-durable multi-line epoch is now unrecoverable."""
    outcome, _ = queue_outcome(model=PersistencyModel.BSP,
                               bsp_epoch_stores=30, transactions=8)
    history, values = [], []
    for pos, record in enumerate(outcome.image.history):
        if record.kind == "log":
            continue
        history.append(record)
        values.append(outcome.image.history_values[pos])
    assert len(history) < len(outcome.image.history), "no log records"
    bad = mutated(outcome, history, values, history_log={})
    with pytest.raises(ConsistencyViolation, match="undo-log"):
        sweep_crash_points(bad, bsp=True)
    # The same history passes without the BSP check: tearing is an
    # undo-coverage property, not an ordering one.
    assert sweep_crash_points(bad).ok
