"""Edge cases of the pooled flush-handshake engine (core/flush.py).

The FlushOperation rework (pooled object, precomputed per-bank issue
schedules, batch MC writes) must preserve the Figure 8 handshake's
corner cases: degenerate empty banks, CLFLUSH invalidation, lines that
leave the caches mid-flush, and the single-BankAck-per-bank invariant.
"""

import types

import pytest

from repro.core.flush import _ACK_SENT, _ACKED, _ISSUE_DONE
from repro.harness.bench import reference_mode
from repro.sim.config import (
    BarrierDesign,
    FlushMode,
    MachineConfig,
    PersistencyModel,
)
from repro.sim.digest import state_digest
from repro.system import Multicore
from repro.workloads.base import Program


def make_machine(num_cores=1, barrier_design=BarrierDesign.LB_PP,
                 **overrides):
    config = MachineConfig.tiny(
        num_cores=num_cores,
        barrier_design=barrier_design,
        persistency=PersistencyModel.BEP,
        **overrides,
    )
    return Multicore(config, track_persist_order=True)


# ----------------------------------------------------------------------
# BankAck single-shot invariant (the _bank_ack double-count regression)
# ----------------------------------------------------------------------
def test_bank_never_acks_twice():
    """A second BankAck from one bank must raise, not corrupt the ack
    count (the pre-rework flag guard silently allowed a double count if
    a degenerate-bank ack raced a late outstanding-drained ack)."""
    m = make_machine()
    op = m.arbiters[0]._flush_op
    op._bank_state[0] = _ACKED
    with pytest.raises(RuntimeError, match="second BankAck"):
        op._bank_ack(0)


def test_schedule_bank_ack_is_idempotent():
    """Once a bank's ack is sent (virtually delivered, in the fault-free
    path), further schedule requests are no-ops: exactly one ack per
    bank, counted exactly once."""
    m = make_machine()
    op = m.arbiters[0]._flush_op
    op._engine = types.SimpleNamespace(now=0)
    op._epoch = types.SimpleNamespace(core_id=0)
    op._acks_received = 0
    op._ack_deadline = 0
    op._bank_state[1] = _ISSUE_DONE
    op._schedule_bank_ack(1)
    assert op._bank_state[1] == _ACKED
    assert op._acks_received == 1
    assert op._ack_deadline == m.mesh.c2b[0][1]
    op._schedule_bank_ack(1)  # late duplicate: outstanding hit zero again
    op._schedule_bank_ack(1)
    assert op._acks_received == 1


def test_begin_while_inflight_raises():
    """The pooled operation refuses to be recycled mid-flush."""
    m = make_machine()
    op = m.arbiters[0]._flush_op
    op._epoch = sentinel = types.SimpleNamespace(core_id=0)
    with pytest.raises(RuntimeError, match="still in flight"):
        op.begin(sentinel)


# ----------------------------------------------------------------------
# Degenerate empty banks
# ----------------------------------------------------------------------
def test_empty_bank_acks_and_epoch_persists():
    """A bank holding none of the epoch's lines still participates in
    the handshake (Figure 7: no bank may act on local knowledge), via
    the immediate-ack degenerate path."""
    m = make_machine(llc_banks=2)
    p = Program()
    # Stride 128 keeps every line in bank 0; bank 1 flushes nothing.
    lines = [0x1000 + i * 128 for i in range(6)]
    for line in lines:
        p.store(line, 8)
    p.barrier()
    result = m.run([p])
    assert result.cycles_durable is not None
    persisted = {r.line for r in m.image.history if r.kind == "data"}
    assert persisted == set(lines)
    m.audit()


def test_all_banks_empty_epoch_still_persists():
    """An epoch whose every line left the caches before the flush began
    (here: forced by removing them) completes through pure degenerate
    acks."""
    m = make_machine(barrier_design=BarrierDesign.LB_IDT)
    p = Program()
    lines = [0x1000 + i * 64 for i in range(4)]
    for line in lines:
        p.store(line, 8)
    m.run([p], max_cycles=30_000, drain=False)
    mgr = m.managers[0]
    epoch = next(e for e in mgr.window if e.lines)
    mgr.close_all_strands()
    for line in list(epoch.lines):
        m.l1s[0].remove(line)
        for bank in m.llc_banks:
            bank.remove(line)
    m.arbiters[0].request_flush_upto(epoch, online=False)
    m.engine.run()
    assert epoch.persisted
    flush = m.stats.domain("flush")
    assert flush.get("flush_lines_already_inflight") == len(lines)


# ----------------------------------------------------------------------
# Line evicted mid-flush
# ----------------------------------------------------------------------
def test_line_evicted_midflush_is_discarded_not_reflushed():
    """A line that leaves both cache levels between the epoch recording
    it and the bank walker reaching it is skipped (its NVRAM write is
    in flight on the eviction path); the flush still completes and the
    remaining lines persist."""
    m = make_machine(barrier_design=BarrierDesign.LB_IDT)
    p = Program()
    lines = [0x1000 + i * 64 for i in range(6)]
    for line in lines:
        p.store(line, 8)
    m.run([p], max_cycles=30_000, drain=False)
    mgr = m.managers[0]
    epoch = next(e for e in mgr.window if e.lines)
    mgr.close_all_strands()
    victim = lines[3]
    m.l1s[0].remove(victim)
    for bank in m.llc_banks:
        bank.remove(victim)
    m.arbiters[0].request_flush_upto(epoch, online=False)
    m.engine.run()
    assert epoch.persisted
    assert m.stats.domain("flush").get("flush_lines_already_inflight") == 1
    persisted = {r.line for r in m.image.history if r.kind == "data"}
    assert persisted == set(lines) - {victim}


# ----------------------------------------------------------------------
# CLFLUSH-mode invalidating flush
# ----------------------------------------------------------------------
def test_clflush_invalidates_all_cached_copies():
    m = make_machine(flush_mode=FlushMode.CLFLUSH)
    p = Program()
    lines = [0x1000 + i * 64 for i in range(4)]
    for line in lines:
        p.store(line, 8)
    p.barrier().compute(5000)
    m.run([p])
    for line in lines:
        assert m.l1s[0].lookup(line) is None
        for bank in m.llc_banks:
            assert bank.lookup(line) is None
    m.audit()


@pytest.mark.parametrize("track_values", [False, True])
@pytest.mark.parametrize("mode", [FlushMode.CLWB, FlushMode.CLFLUSH])
def test_flush_mode_digest_matches_reference(mode, track_values):
    """The batch flush path must be observationally identical to the
    reference engine in both flush modes, with and without value
    tracking (the two arms of flush_line_transition)."""

    def run():
        config = MachineConfig.tiny(
            num_cores=1,
            barrier_design=BarrierDesign.LB_PP,
            persistency=PersistencyModel.BEP,
            flush_mode=mode,
        )
        machine = Multicore(config, track_values=track_values)
        p = Program()
        for rnd in range(6):
            for i in range(8):
                p.store(0x1000 + i * 64, 8, value=("r", rnd, i))
            p.barrier()
            for i in range(8):
                p.load(0x1000 + i * 64)
        result = machine.run([p])
        return state_digest(machine, result)

    fast = run()
    with reference_mode():
        ref = run()
    assert fast == ref


# ----------------------------------------------------------------------
# Pooled-operation reuse
# ----------------------------------------------------------------------
def test_one_pooled_operation_serves_many_flushes():
    m = make_machine()
    op_before = m.arbiters[0]._flush_op
    p = Program()
    for epoch in range(5):
        for i in range(4):
            p.store(0x1000 + (epoch * 4 + i) * 64, 8)
        p.barrier()
    m.run([p])
    arb = m.arbiters[0]
    assert arb._flush_op is op_before  # never replaced
    assert arb.active is None and op_before.epoch is None  # fully recycled
    stats = m.stats.domain("arbiter0")
    flushes = stats.get("flushes_online") + stats.get("flushes_offline")
    assert flushes >= 5
    seqs = [r.epoch_seq for r in m.image.history if r.kind == "data"]
    assert seqs == sorted(seqs)  # reuse never reordered epochs
    m.audit()
